//! Machine-readable baseline for the resilience layer: what deadline
//! checkpoints cost, and what a deadline buys.
//!
//! Two measurements per dataset, written to `BENCH_resilience.json`:
//!
//! * **warm_batch** — the `BENCH_batch` warm path (served engine, cold
//!   result cache) with and without a loose, never-firing deadline
//!   armed on every query. The batch holds only queries whose armed and
//!   unarmed routes run the same solver (exact/ε TIC, local search) so
//!   the difference is the cooperative checkpoints, not a route change
//!   (armed min/max deliberately bypass the extremum forest, which
//!   would measure the bypass, not the checkpoint). This is the number
//!   the CI no-op assertion gates (`--assert-overhead <pct>`, with a
//!   small absolute noise floor so micro-runs cannot flake).
//! * **solver_overhead** — the same pair one layer down, per solver:
//!   the stamped min-peel ([`MinMaxEmission`]) and the exact TIC drain
//!   ([`TicEmission`]) with and without a live budget. Supplementary
//!   detail (sub-millisecond on quick graphs, so noisy); not gated.
//! * **degraded** — latency and yield of a deadline-armed exact sum
//!   query at deadlines set to fractions of its full latency: how fast
//!   a degraded (certified-prefix) answer comes back versus the full
//!   one, and how much of the ranking each deadline buys.
//!
//! ```text
//! cargo run -p ic-bench --release --bin resilience_baseline -- \
//!     --datasets email --runs 5 --assert-overhead 2 --out BENCH_resilience.json
//! ```
//!
//! Built without the `failpoints` feature (the default), every
//! `fail_point!` site in these hot loops expands to nothing — the
//! overhead measured here is purely the deadline checkpoint.

use ic_bench::runner::time_once;
use ic_core::algo::{MinMaxEmission, TicEmission};
use ic_core::Aggregation;
use ic_engine::{AnswerStatus, BatchOptions, Engine, Query};
use ic_gen::datasets::{by_name, Profile};
use ic_kcore::{Budget, GraphSnapshot, PeelArena};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Absolute noise floor for the overhead assertion: medians closer than
/// this are timing noise on a quick-profile graph, not checkpoint cost.
const NOISE_FLOOR_SECS: f64 = 0.002;

/// A loose budget that never fires but keeps every checkpoint live.
fn loose_budget() -> Arc<Budget> {
    Arc::new(Budget::within(Duration::from_secs(3600)))
}

struct OverheadPair {
    plain_secs: f64,
    armed_secs: f64,
}

impl OverheadPair {
    fn overhead_pct(&self) -> f64 {
        if self.plain_secs <= 0.0 {
            return 0.0;
        }
        (self.armed_secs / self.plain_secs - 1.0) * 100.0
    }

    /// Whether the armed run is within `pct` percent of the plain run
    /// (or inside the absolute noise floor).
    fn within(&self, pct: f64) -> bool {
        self.armed_secs - self.plain_secs <= NOISE_FLOOR_SECS || self.overhead_pct() <= pct
    }
}

struct DegradedPoint {
    deadline_frac: f64,
    deadline_secs: f64,
    latency_secs: f64,
    status: String,
    communities: usize,
    proven_prefix_len: usize,
}

struct Block {
    dataset: String,
    n: usize,
    m: usize,
    k: usize,
    r: usize,
    warm_batch: OverheadPair,
    peel: OverheadPair,
    tic: OverheadPair,
    full_secs: f64,
    degraded: Vec<DegradedPoint>,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median time of `runs` samples of `f` (each sample re-runs the full
/// solver; results are consumed to keep the work observable).
fn sample<F: FnMut() -> usize>(runs: usize, mut f: F) -> f64 {
    let mut times = Vec::with_capacity(runs);
    let mut sink = 0usize;
    for _ in 0..runs {
        let (t, n) = time_once(&mut f);
        sink = sink.wrapping_add(n);
        times.push(t);
    }
    std::hint::black_box(sink);
    median(&mut times)
}

/// Stamped min-peel + full drain, with and without a live budget.
fn peel_overhead(snap: &GraphSnapshot, k: usize, r: usize, runs: usize) -> OverheadPair {
    let mut arena = PeelArena::for_graph(snap.graph());
    let plain_secs = sample(runs, || {
        let em = MinMaxEmission::start_min(snap, k, r, &mut arena).expect("bench query valid");
        let mut n = 0usize;
        let mut em = em;
        while em.next_community(snap.weighted()).is_some() {
            n += 1;
        }
        n
    });
    let armed_secs = sample(runs, || {
        let budget = loose_budget();
        let em = MinMaxEmission::start_min_budgeted(snap, k, r, &mut arena, &budget)
            .expect("bench query valid")
            .expect("a one-hour budget never expires");
        let mut n = 0usize;
        let mut em = em;
        while em.next_community(snap.weighted()).is_some() {
            n += 1;
        }
        n
    });
    OverheadPair {
        plain_secs,
        armed_secs,
    }
}

/// Exact TIC emission drain, with and without a live budget.
fn tic_overhead(snap: &GraphSnapshot, k: usize, r: usize, runs: usize) -> OverheadPair {
    let mut arena = PeelArena::for_graph(snap.graph());
    let run = |armed: bool, arena: &mut PeelArena| {
        let mut em =
            TicEmission::start_on(snap, k, r, Aggregation::Sum, 0.0).expect("bench query valid");
        if armed {
            em.set_budget(Some(loose_budget()));
        }
        let mut n = 0usize;
        while em.next_community(snap.weighted(), arena).is_some() {
            n += 1;
        }
        arena.set_budget(None);
        n
    };
    let plain_secs = sample(runs, || run(false, &mut arena));
    let armed_secs = sample(runs, || run(true, &mut arena));
    OverheadPair {
        plain_secs,
        armed_secs,
    }
}

/// The deadline-comparable warm traffic: only queries whose armed and
/// unarmed plans run the same solver, so arming changes nothing but the
/// checkpoints. Min/max stay out — unarmed they are forest-served,
/// armed they peel, and that route change is not checkpoint cost.
fn warm_queries(k: usize, r: usize) -> Vec<Query> {
    vec![
        Query::new(k, r, Aggregation::Sum),
        Query::new(k + 1, r, Aggregation::Sum),
        Query::new(k, r, Aggregation::Sum).approx(0.2),
        Query::new(k, r.min(5), Aggregation::Average).size_bound(k + 3, true),
    ]
}

/// The warm `BENCH_batch` path with and without deadlines armed: a
/// served engine, result cache cleared before every sample so each
/// batch pays full solve cost, and the armed variant attaching a loose
/// (never-firing) one-hour deadline to every query.
fn warm_batch_overhead(eng: &Engine, k: usize, r: usize, runs: usize) -> OverheadPair {
    let plain = warm_queries(k, r);
    let armed: Vec<Query> = plain
        .iter()
        .map(|q| q.deadline(Duration::from_secs(3600)))
        .collect();
    let opts = BatchOptions::new();
    // Prime once so snapshot levels and thread pools are warm for both.
    for res in eng.run_batch_with(&plain, &opts) {
        assert!(res.is_ok(), "warm bench queries must be valid");
    }
    let measure = |batch: &[Query]| {
        sample(runs, || {
            eng.clear_result_cache();
            let answers = eng.run_batch_with(batch, &opts);
            answers
                .iter()
                .map(|res| {
                    res.as_ref()
                        .expect("loose deadline never fires")
                        .communities
                        .len()
                })
                .sum()
        })
    };
    let plain_secs = measure(&plain);
    let armed_secs = measure(&armed);
    OverheadPair {
        plain_secs,
        armed_secs,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(blocks: &[Block], runs: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ic-bench/resilience-baseline/v1\",");
    let _ = writeln!(out, "  \"profile\": \"quick\",");
    let _ = writeln!(out, "  \"runs\": {runs},");
    let _ = writeln!(
        out,
        "  \"warm_batch\": \"the warm BENCH_batch path (served engine, cold result cache) with a loose (never-firing) one-hour deadline armed on every query vs unarmed: the cost of the cooperative checkpoints in the solver hot loops\","
    );
    let _ = writeln!(
        out,
        "  \"solver_overhead\": \"the same pair one solver down (stamped min-peel and exact TIC drain, budgeted vs not); sub-millisecond on quick graphs, so informational only\","
    );
    let _ = writeln!(
        out,
        "  \"degraded\": \"deadline-armed exact sum query at deadlines set to fractions of its full latency: latency, completeness status, and certified-prefix yield\","
    );
    out.push_str("  \"datasets\": [\n");
    let mut worst = 0.0f64;
    for (bi, b) in blocks.iter().enumerate() {
        worst = worst.max(b.warm_batch.overhead_pct());
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", json_escape(&b.dataset));
        let _ = writeln!(out, "      \"n\": {},", b.n);
        let _ = writeln!(out, "      \"m\": {},", b.m);
        let _ = writeln!(out, "      \"k\": {},", b.k);
        let _ = writeln!(out, "      \"r\": {},", b.r);
        let _ = writeln!(
            out,
            "      \"warm_batch\": {{\"plain_secs\": {:.6}, \"armed_secs\": {:.6}, \"overhead_pct\": {:.2}}},",
            b.warm_batch.plain_secs,
            b.warm_batch.armed_secs,
            b.warm_batch.overhead_pct()
        );
        let _ = writeln!(
            out,
            "      \"solver_overhead\": {{\"peel\": {{\"plain_secs\": {:.6}, \"armed_secs\": {:.6}, \"overhead_pct\": {:.2}}}, \"tic\": {{\"plain_secs\": {:.6}, \"armed_secs\": {:.6}, \"overhead_pct\": {:.2}}}}},",
            b.peel.plain_secs,
            b.peel.armed_secs,
            b.peel.overhead_pct(),
            b.tic.plain_secs,
            b.tic.armed_secs,
            b.tic.overhead_pct()
        );
        let _ = writeln!(out, "      \"full_secs\": {:.6},", b.full_secs);
        out.push_str("      \"degraded\": [\n");
        for (di, d) in b.degraded.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"deadline_frac\": {:.3}, \"deadline_secs\": {:.6}, \"latency_secs\": {:.6}, \"status\": \"{}\", \"communities\": {}, \"proven_prefix_len\": {}}}{}",
                d.deadline_frac,
                d.deadline_secs,
                d.latency_secs,
                json_escape(&d.status),
                d.communities,
                d.proven_prefix_len,
                if di + 1 == b.degraded.len() { "" } else { "," }
            );
        }
        out.push_str("      ]\n");
        out.push_str(if bi + 1 == blocks.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"summary\": {\n");
    let _ = writeln!(out, "    \"max_warm_batch_overhead_pct\": {worst:.2}");
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut datasets = vec!["email".to_string()];
    let mut out_path = "BENCH_resilience.json".to_string();
    let mut runs = 5usize;
    let mut assert_overhead: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--datasets" => {
                i += 1;
                datasets = args[i].split(',').map(|s| s.trim().to_string()).collect();
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs takes an integer");
            }
            "--assert-overhead" => {
                i += 1;
                assert_overhead = Some(args[i].parse().expect("--assert-overhead takes a percent"));
            }
            other => panic!(
                "unknown argument {other:?} (expected --datasets/--out/--runs/--assert-overhead)"
            ),
        }
        i += 1;
    }

    let mut blocks: Vec<Block> = Vec::new();
    for name in &datasets {
        let spec =
            by_name(Profile::Quick, name).unwrap_or_else(|| panic!("unknown dataset {name:?}"));
        eprintln!("[resilience_baseline] generating {name} ...");
        let wg = spec.generate_weighted();
        let (n, m) = (wg.num_vertices(), wg.num_edges());
        let k = spec.k_grid[0];
        let r = 20usize;
        let snap = GraphSnapshot::new(wg.clone());
        snap.level(k); // warm the level so neither variant pays it

        eprintln!("[resilience_baseline] {name}: checkpoint overhead over {runs} runs");
        let eng = Engine::with_threads(wg.clone(), 2);
        let warm_batch = warm_batch_overhead(&eng, k, r, runs);
        eprintln!(
            "  warm batch {:.4}s -> {:.4}s ({:+.2}%)",
            warm_batch.plain_secs,
            warm_batch.armed_secs,
            warm_batch.overhead_pct()
        );
        let peel = peel_overhead(&snap, k, r, runs);
        let tic = tic_overhead(&snap, k, r, runs);
        eprintln!(
            "  peel {:.4}s -> {:.4}s ({:+.2}%), tic {:.4}s -> {:.4}s ({:+.2}%)",
            peel.plain_secs,
            peel.armed_secs,
            peel.overhead_pct(),
            tic.plain_secs,
            tic.armed_secs,
            tic.overhead_pct()
        );

        // Degraded vs full latency: the engine-served armed sum query at
        // tightening deadlines.
        let q = Query::new(k, r, Aggregation::Sum);
        let mut full_samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            eng.clear_result_cache();
            let (t, res) = time_once(|| eng.run_batch(&[q]));
            assert!(res[0].is_ok(), "bench query must be valid");
            full_samples.push(t);
        }
        let full_secs = median(&mut full_samples);

        let mut degraded = Vec::new();
        for frac in [0.125f64, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let deadline = Duration::from_secs_f64((full_secs * frac).max(1e-6));
            eng.clear_result_cache();
            let armed = [q.deadline(deadline)];
            let (latency_secs, got) =
                time_once(|| eng.run_batch_with(&armed, &BatchOptions::default()));
            let (status, communities, proven) = match &got[0] {
                Ok(ans) => match ans.status {
                    AnswerStatus::Complete => {
                        ("complete", ans.communities.len(), ans.communities.len())
                    }
                    AnswerStatus::Degraded {
                        proven_prefix_len, ..
                    } => ("degraded", ans.communities.len(), proven_prefix_len),
                    _ => ("unknown", ans.communities.len(), 0),
                },
                Err(e) => {
                    eprintln!("  deadline {deadline:?}: {e}");
                    ("deadline_exceeded", 0, 0)
                }
            };
            eprintln!(
                "  deadline {:.4}s ({}%): {} in {:.4}s, {} communities ({} proven)",
                deadline.as_secs_f64(),
                (frac * 100.0) as u32,
                status,
                latency_secs,
                communities,
                proven
            );
            degraded.push(DegradedPoint {
                deadline_frac: frac,
                deadline_secs: deadline.as_secs_f64(),
                latency_secs,
                status: status.to_string(),
                communities,
                proven_prefix_len: proven,
            });
        }

        blocks.push(Block {
            dataset: name.clone(),
            n,
            m,
            k,
            r,
            warm_batch,
            peel,
            tic,
            full_secs,
            degraded,
        });
    }

    let json = render(&blocks, runs);
    std::fs::write(&out_path, &json).expect("write BENCH_resilience.json");
    println!("{json}");
    eprintln!("[resilience_baseline] wrote {out_path}");

    if let Some(pct) = assert_overhead {
        for b in &blocks {
            let pair = &b.warm_batch;
            assert!(
                pair.within(pct),
                "{}: warm-batch checkpoint overhead {:.2}% exceeds the {pct}% budget \
                 (plain {:.6}s vs armed {:.6}s)",
                b.dataset,
                pair.overhead_pct(),
                pair.plain_secs,
                pair.armed_secs
            );
        }
        eprintln!(
            "[resilience_baseline] warm-batch checkpoint overhead within {pct}% on every dataset"
        );
    }
}
