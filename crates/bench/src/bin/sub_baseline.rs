//! Machine-readable baseline for standing-query subscriptions: journal-
//! pruned incremental maintenance (`ic_sub::SubscriptionManager`) vs.
//! the strawman that re-solves every subscription on every update.
//!
//! One deterministic dataset analog is built twice. The incremental
//! side registers N standing queries and drives a remove/insert update
//! script through `SubscriptionManager::apply` — cascade-journal
//! pruning skips provably-unaffected subscriptions and the extremum
//! index repairs in place. The strawman side applies the same script
//! to its own engine and re-runs all N queries after every batch,
//! diffing answers by hand. Before any number is reported, the final
//! answers of both sides are asserted bit-identical — a fast
//! notification pipeline that drifts from the re-solve oracle would be
//! worthless.
//!
//! Measured per subscription count: per-update latency (p50/mean —
//! for the incremental side this *is* notification latency, since
//! `apply` returns with every notification materialized), update
//! throughput, and the journal's skip rate.
//!
//! ```text
//! cargo run -p ic-bench --release --bin sub_baseline -- \
//!     --dataset email --sub-counts 1,8,64 --updates 32 \
//!     --out BENCH_sub.json --assert-incremental-wins
//! ```
//!
//! `--assert-incremental-wins` gates (for the largest subscription
//! count) incremental update throughput strictly beating the
//! re-solve-everything strawman.

use ic_core::{Aggregation, Community, Query};
use ic_engine::{EdgeUpdate, Engine};
use ic_sub::SubscriptionManager;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    dataset: String,
    sub_counts: Vec<usize>,
    updates: usize,
    batch: usize,
    threads: usize,
    out: String,
    assert_incremental_wins: bool,
}

/// One side's timings over the whole script.
struct Timings {
    per_update_ms: Vec<f64>,
    total_secs: f64,
}

impl Timings {
    fn p50_ms(&self) -> f64 {
        let mut sorted = self.per_update_ms.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }
    fn mean_ms(&self) -> f64 {
        self.per_update_ms.iter().sum::<f64>() / self.per_update_ms.len().max(1) as f64
    }
    fn updates_per_sec(&self) -> f64 {
        self.per_update_ms.len() as f64 / self.total_secs.max(1e-12)
    }
}

struct CountNumbers {
    subscriptions: usize,
    incremental: Timings,
    full: Timings,
    skipped_total: u64,
    refreshed_total: u64,
    notifications_total: u64,
}

/// The standing-query mix: index-served extremal families across a
/// small k/r grid, with a solver-served sum every fourth slot so the
/// strawman is not paying only for cheap index lookups.
fn subscription_mix(count: usize) -> Vec<Query> {
    let ks = [3usize, 4, 5];
    (0..count)
        .map(|i| {
            let k = ks[i % ks.len()];
            let r = 1 + i % 8;
            match i % 4 {
                0 => Query::new(k, r, Aggregation::Min),
                1 => Query::new(k, r, Aggregation::Max),
                2 => Query::new(k, r, Aggregation::Min),
                _ => Query::new(k, 1 + i % 3, Aggregation::Sum),
            }
        })
        .collect()
}

/// A deterministic update script over the generated graph: chunks of
/// existing edges, each removed by one batch and restored by the next,
/// so every batch is live (the epoch advances) and the script can run
/// arbitrarily long without degenerating the k-cores.
///
/// The edge mix models real evolving-graph churn: most batches touch
/// only the **periphery** (both endpoints below the smallest
/// subscribed `k`-core — the cascade journal proves every subscription
/// unaffected and the refresh is skipped outright), while every
/// `core_every`-th chunk deliberately cuts into the dense core so
/// notifications actually flow and the incremental repair path is
/// exercised, not just the prune.
fn update_script(
    engine: &Engine,
    updates: usize,
    batch: usize,
    min_k: u32,
    core_every: usize,
) -> Vec<Vec<EdgeUpdate>> {
    let snapshot = engine.snapshot();
    let graph = snapshot.weighted().graph();
    let cores = &snapshot.decomposition().core_numbers;
    let mut periphery: Vec<(u32, u32)> = Vec::new();
    let mut core: Vec<(u32, u32)> = Vec::new();
    for (u, v) in graph.edges() {
        if cores[u as usize] < min_k && cores[v as usize] < min_k {
            periphery.push((u, v));
        } else {
            core.push((u, v));
        }
    }
    let chunks = updates.div_ceil(2).max(1);
    let mut script = Vec::with_capacity(updates);
    let (mut pi, mut ci) = (0usize, 0usize);
    for chunk in 0..chunks {
        let from_core = core_every > 0 && chunk % core_every == core_every - 1;
        let (pool, cursor) = if from_core {
            (&core, &mut ci)
        } else {
            (&periphery, &mut pi)
        };
        if pool.is_empty() {
            continue;
        }
        let slice: Vec<(u32, u32)> = (0..batch)
            .map(|i| pool[(*cursor + i) % pool.len()])
            .collect();
        *cursor = (*cursor + batch) % pool.len();
        script.push(
            slice
                .iter()
                .map(|&(u, v)| EdgeUpdate::Remove { u, v })
                .collect(),
        );
        script.push(
            slice
                .iter()
                .map(|&(u, v)| EdgeUpdate::Insert { u, v })
                .collect(),
        );
    }
    script.truncate(updates);
    script
}

/// The incremental side: one manager, journal pruning, index repair.
/// Returns the timings, the manager's cumulative stats, and the final
/// answer of every subscription (initial answer patched by the stream
/// of notifications — i.e. what a real subscriber would hold).
fn run_incremental(
    wg: &ic_graph::WeightedGraph,
    queries: &[Query],
    script: &[Vec<EdgeUpdate>],
    threads: usize,
) -> (Timings, ic_sub::SubStats, Vec<Vec<Community>>) {
    let engine = Arc::new(Engine::with_threads(wg.clone(), threads));
    let manager = SubscriptionManager::new(engine);
    let mut answers: BTreeMap<u64, Vec<Community>> = BTreeMap::new();
    let mut order = Vec::with_capacity(queries.len());
    for q in queries {
        let sub = manager.subscribe(*q).expect("subscribe");
        answers.insert(sub.id.0, sub.answer);
        order.push(sub.id.0);
    }
    let mut per_update_ms = Vec::with_capacity(script.len());
    let t_all = Instant::now();
    for batch in script {
        let t = Instant::now();
        let report = manager.apply(batch).expect("apply");
        per_update_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(report.failed.is_empty(), "no refresh may fail");
        for n in report.notifications {
            // What a subscriber reconstructs from deltas must equal the
            // full answer the notification carries.
            let old = answers.get(&n.id.0).expect("known subscription");
            assert_eq!(ic_sub::replay(old, &n.deltas), n.answer);
            answers.insert(n.id.0, n.answer);
        }
    }
    let total_secs = t_all.elapsed().as_secs_f64();
    let finals = order
        .iter()
        .map(|id| answers.remove(id).expect("answer tracked"))
        .collect();
    (
        Timings {
            per_update_ms,
            total_secs,
        },
        manager.stats(),
        finals,
    )
}

/// The strawman: no journal, no pruning, no repair — apply the batch,
/// then re-solve every standing query and diff by hand.
fn run_full_resolve(
    wg: &ic_graph::WeightedGraph,
    queries: &[Query],
    script: &[Vec<EdgeUpdate>],
    threads: usize,
) -> (Timings, Vec<Vec<Community>>) {
    let engine = Engine::with_threads(wg.clone(), threads);
    let mut answers: Vec<Vec<Community>> = engine
        .run_batch(queries)
        .into_iter()
        .map(|r| r.expect("initial answer"))
        .collect();
    let mut per_update_ms = Vec::with_capacity(script.len());
    let t_all = Instant::now();
    for batch in script {
        let t = Instant::now();
        engine.try_apply(batch).expect("apply");
        let fresh: Vec<Vec<Community>> = engine
            .run_batch(queries)
            .into_iter()
            .map(|r| r.expect("re-solved answer"))
            .collect();
        for (old, new) in answers.iter().zip(&fresh) {
            // Materialize the deltas too: the strawman must do the same
            // work a notification pipeline does, not just re-solve.
            let _ = ic_sub::diff_answers(old, new);
        }
        answers = fresh;
        per_update_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let total_secs = t_all.elapsed().as_secs_f64();
    (
        Timings {
            per_update_ms,
            total_secs,
        },
        answers,
    )
}

fn measure(config: &Config) -> (usize, usize, Vec<CountNumbers>) {
    let spec = ic_gen::datasets::by_name(ic_gen::datasets::Profile::Quick, &config.dataset)
        .unwrap_or_else(|| panic!("unknown dataset {:?}", config.dataset));
    let wg = spec.generate_weighted();
    let (n, m) = (wg.num_vertices(), wg.num_edges());
    eprintln!("[gen] {} analog: {n} vertices, {m} edges", config.dataset);

    // Periphery churn is relative to the smallest k in
    // `subscription_mix` (k = 3); every 4th chunk cuts into the core.
    let script = {
        let probe = Engine::with_threads(wg.clone(), config.threads);
        update_script(&probe, config.updates, config.batch, 3, 4)
    };
    eprintln!(
        "[script] {} update batches of <= {} edges",
        script.len(),
        config.batch
    );

    let mut per_count = Vec::new();
    for &count in &config.sub_counts {
        let queries = subscription_mix(count);
        let (incremental, stats, inc_finals) =
            run_incremental(&wg, &queries, &script, config.threads);
        let (full, full_finals) = run_full_resolve(&wg, &queries, &script, config.threads);

        // Identity gate before any number is reported: both sides must
        // land on bit-identical answers for every subscription.
        assert_eq!(inc_finals.len(), full_finals.len());
        for (i, (inc, oracle)) in inc_finals.iter().zip(&full_finals).enumerate() {
            assert_eq!(
                inc, oracle,
                "subscription {i} diverged from the re-solve oracle"
            );
        }

        eprintln!(
            "[subs={count}] incremental {:.1} upd/s (p50 {:.2}ms) vs full re-solve {:.1} upd/s \
             (p50 {:.2}ms); journal skipped {}/{} refreshes",
            incremental.updates_per_sec(),
            incremental.p50_ms(),
            full.updates_per_sec(),
            full.p50_ms(),
            stats.skipped_total,
            stats.skipped_total + stats.refreshed_total,
        );
        per_count.push(CountNumbers {
            subscriptions: count,
            incremental,
            full,
            skipped_total: stats.skipped_total,
            refreshed_total: stats.refreshed_total,
            notifications_total: stats.notifications_total,
        });
    }
    (n, m, per_count)
}

fn render(config: &Config, n: usize, m: usize, per_count: &[CountNumbers]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ic-bench/sub-baseline/v1\",");
    let _ = writeln!(
        out,
        "  \"pipeline\": \"dataset analog -> N standing queries -> remove/insert update script \
         -> journal-pruned incremental maintenance vs re-solve-everything strawman, final \
         answers asserted bit-identical\","
    );
    out.push_str("  \"dataset\": {\n");
    let _ = writeln!(out, "    \"name\": \"{}\",", config.dataset);
    let _ = writeln!(out, "    \"n\": {n},");
    let _ = writeln!(out, "    \"m\": {m}");
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"updates\": {},", config.updates);
    let _ = writeln!(out, "  \"batch_edges\": {},", config.batch);
    out.push_str("  \"by_subscriptions\": [\n");
    for (i, x) in per_count.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"subscriptions\": {},", x.subscriptions);
        out.push_str("      \"incremental\": {\n");
        let _ = writeln!(
            out,
            "        \"updates_per_sec\": {:.1},",
            x.incremental.updates_per_sec()
        );
        let _ = writeln!(
            out,
            "        \"notify_p50_ms\": {:.3},",
            x.incremental.p50_ms()
        );
        let _ = writeln!(
            out,
            "        \"notify_mean_ms\": {:.3}",
            x.incremental.mean_ms()
        );
        out.push_str("      },\n");
        out.push_str("      \"full_resolve\": {\n");
        let _ = writeln!(
            out,
            "        \"updates_per_sec\": {:.1},",
            x.full.updates_per_sec()
        );
        let _ = writeln!(out, "        \"notify_p50_ms\": {:.3},", x.full.p50_ms());
        let _ = writeln!(out, "        \"notify_mean_ms\": {:.3}", x.full.mean_ms());
        out.push_str("      },\n");
        let _ = writeln!(
            out,
            "      \"speedup\": {:.2},",
            x.incremental.updates_per_sec() / x.full.updates_per_sec().max(1e-12)
        );
        let _ = writeln!(out, "      \"journal_skipped\": {},", x.skipped_total);
        let _ = writeln!(out, "      \"refreshed\": {},", x.refreshed_total);
        let _ = writeln!(out, "      \"notifications\": {}", x.notifications_total);
        out.push_str(if i + 1 == per_count.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = Config {
        dataset: "email".to_string(),
        sub_counts: vec![1, 8, 64],
        updates: 32,
        batch: 8,
        threads: 2,
        out: "BENCH_sub.json".to_string(),
        assert_incremental_wins: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                config.dataset = args[i].clone();
            }
            "--sub-counts" => {
                i += 1;
                config.sub_counts = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sub-counts"))
                    .collect();
            }
            "--updates" => {
                i += 1;
                config.updates = args[i].parse::<usize>().expect("--updates").max(2);
            }
            "--batch" => {
                i += 1;
                config.batch = args[i].parse::<usize>().expect("--batch").max(1);
            }
            "--threads" => {
                i += 1;
                config.threads = args[i].parse().expect("--threads");
            }
            "--out" => {
                i += 1;
                config.out = args[i].clone();
            }
            "--assert-incremental-wins" => config.assert_incremental_wins = true,
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    assert!(
        !config.sub_counts.is_empty(),
        "--sub-counts must be nonempty"
    );

    let (n, m, per_count) = measure(&config);
    if config.assert_incremental_wins {
        let largest = per_count
            .iter()
            .max_by_key(|x| x.subscriptions)
            .expect("at least one count");
        assert!(
            largest.incremental.updates_per_sec() > largest.full.updates_per_sec(),
            "at {} subscriptions, incremental maintenance ({:.1} upd/s) must beat the \
             re-solve-everything strawman ({:.1} upd/s)",
            largest.subscriptions,
            largest.incremental.updates_per_sec(),
            largest.full.updates_per_sec(),
        );
        eprintln!(
            "[gate] incremental wins at {} subscriptions ({:.2}x)",
            largest.subscriptions,
            largest.incremental.updates_per_sec() / largest.full.updates_per_sec().max(1e-12)
        );
    }
    let json = render(&config, n, m, &per_count);
    std::fs::write(&config.out, &json).expect("write bench json");
    println!("wrote {}", config.out);
}
