//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <exp-id>... [--profile quick|full] [--datasets a,b,c]
//! experiments all
//! experiments list
//! ```

use ic_bench::experiments::{run, Ctx, ALL_EXPERIMENTS};
use ic_gen::datasets::Profile;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit(1);
    }

    let mut ids: Vec<String> = Vec::new();
    let mut profile = Profile::Quick;
    let mut datasets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                i += 1;
                profile = match args.get(i).map(String::as_str) {
                    Some("quick") => Profile::Quick,
                    Some("full") => Profile::Full,
                    other => {
                        eprintln!("invalid --profile {other:?} (quick|full)");
                        std::process::exit(1);
                    }
                };
            }
            "--datasets" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--datasets needs a comma-separated list");
                    std::process::exit(1);
                };
                datasets = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--help" | "-h" => usage_and_exit(0),
            "list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage_and_exit(1);
    }

    let ctx = Ctx { profile, datasets };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# Experiment run (profile: {:?}, datasets: {})",
        ctx.profile,
        if ctx.datasets.is_empty() {
            "all".to_string()
        } else {
            ctx.datasets.join(",")
        }
    )
    .unwrap();
    for id in &ids {
        match run(id, &ctx) {
            Some(md) => {
                write!(out, "{md}").unwrap();
                out.flush().unwrap();
            }
            None => {
                eprintln!("unknown experiment {id:?}; run `experiments list`");
                std::process::exit(1);
            }
        }
    }
}

fn usage_and_exit(code: i32) -> ! {
    eprintln!(
        "usage: experiments <exp-id>... [--profile quick|full] [--datasets a,b,c]\n\
         \n\
         exp-ids: {}  (or `all` / `list`)",
        ALL_EXPERIMENTS.join(", ")
    );
    std::process::exit(code);
}
