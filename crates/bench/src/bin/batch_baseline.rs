//! Machine-readable perf baseline for the batched multi-query engine.
//!
//! For each dataset, synthesizes `--runs` independent mixed 64-query
//! batches (ticks of Zipf-popular traffic over the dataset's `k` grid:
//! min/max/sum exact, approximate sum, sum-surplus, and
//! size-constrained local search) and measures the aggregate wall-clock
//! over all ticks for three ways of answering them:
//!
//! * **sequential** — the one-query-at-a-time loop every caller writes
//!   without the engine: a direct solver call per query, each
//!   recomputing the core decomposition and building a fresh arena;
//! * **batched_cold** — a fresh [`ic_engine::Engine`] per tick: plan
//!   (validate, dedup, merge r-families, group by `k`), execute on the
//!   worker pool, including all lazy snapshot memoization — the
//!   single-batch speedup, aggregated over several independent draws so
//!   one lucky or unlucky batch cannot dominate the number;
//! * **batched_warm** — one engine serving every tick: the steady-state
//!   regime with warm snapshot levels, pooled arenas, and the
//!   cross-batch result cache absorbing repeat queries.
//!
//! Before timing, batched output is cross-checked against the
//! sequential loop (bit-identical on deterministic solver paths; the
//! conformance suite covers this exhaustively). Writes
//! `BENCH_batch.json`:
//!
//! ```text
//! cargo run -p ic-bench --release --bin batch_baseline -- \
//!     --datasets email,youtube,friendster --queries 64 --out BENCH_batch.json
//! ```
//!
//! Set `IC_BATCH_PROFILE=1` to dump the most expensive tick-0 queries
//! (sequential cost) per dataset before timing starts.

use ic_bench::batch::{solve_sequential, to_engine_query};
use ic_bench::runner::time_once;
use ic_core::Aggregation;
use ic_engine::{Constraint, Engine, PlanStats, Query};
use ic_gen::datasets::{by_name, Profile};
use ic_gen::workload::{mixed_query_traffic, TrafficProfile};
use ic_gen::GraphSeed;
use std::fmt::Write as _;

struct Block {
    dataset: String,
    n: usize,
    m: usize,
    stats: PlanStats,
    warm_cache_hits: usize,
    sequential_secs: f64,
    batched_cold_secs: f64,
    batched_warm_secs: f64,
    /// Streamed-session latencies for one min and one max query.
    ttfr: [Ttfr; 2],
}

/// Time-to-first-result of a progressive session vs the full-batch
/// latency of the same query (medians over several runs, cache cleared
/// between runs so every measurement is a live solver run).
struct Ttfr {
    direction: &'static str,
    k: usize,
    r: usize,
    /// `Engine::submit(q)` + first `next()`.
    first_result_secs: f64,
    /// `Engine::run_batch(&[q])` to completion.
    full_batch_secs: f64,
    /// Draining the whole stream (prefix contract sanity: also
    /// cross-checked bit-for-bit against the batch result).
    stream_total_secs: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures streamed TTFR vs full-batch latency for one query on a
/// warm-snapshot engine (the serving steady state).
fn measure_ttfr(engine: &Engine, direction: &'static str, q: Query, runs: usize) -> Ttfr {
    // Warm the snapshot level and pin the reference answer.
    let reference = engine.run_batch(&[q])[0].clone().expect("ttfr query valid");
    engine.clear_result_cache();
    let streamed: Vec<_> = engine.submit(q).expect("ttfr query valid").collect();
    assert_eq!(streamed, reference, "stream/batch divergence on {q:?}");

    let mut first = Vec::with_capacity(runs);
    let mut full = Vec::with_capacity(runs);
    let mut total = Vec::with_capacity(runs);
    for _ in 0..runs {
        engine.clear_result_cache();
        let (t, _) = time_once(|| engine.run_batch(&[q]));
        full.push(t);
        engine.clear_result_cache();
        let (t, stream) = time_once(|| {
            let mut s = engine.submit(q).expect("ttfr query valid");
            let first = s.next();
            (s, first)
        });
        first.push(t);
        drop(stream); // cancellation: the unread suffix is never computed
        engine.clear_result_cache();
        let (t, _) = time_once(|| engine.submit(q).expect("ttfr query valid").count());
        total.push(t);
    }
    Ttfr {
        direction,
        k: q.k,
        r: q.r,
        first_result_secs: median(&mut first),
        full_batch_secs: median(&mut full),
        stream_total_secs: median(&mut total),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(blocks: &[Block], queries: usize, ticks: usize, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ic-bench/batch-baseline/v1\",");
    let _ = writeln!(out, "  \"profile\": \"quick\",");
    let _ = writeln!(out, "  \"queries_per_batch\": {queries},");
    let _ = writeln!(out, "  \"ticks\": {ticks},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(
        out,
        "  \"baseline\": \"one-query-at-a-time loop over the direct solvers (fresh decomposition + arena per query), aggregated over all ticks\","
    );
    let _ = writeln!(
        out,
        "  \"batched\": \"ic-engine run_batch: shared snapshot, dedup, min/max + exact-sum r-family merges, local-search family pool sharing, pooled arenas (cold = fresh engine per tick, warm = one engine + result cache across ticks)\","
    );
    out.push_str("  \"datasets\": [\n");
    let mut cold: Vec<f64> = Vec::new();
    let mut warm: Vec<f64> = Vec::new();
    for (bi, b) in blocks.iter().enumerate() {
        let sc = b.sequential_secs / b.batched_cold_secs.max(1e-12);
        let sw = b.sequential_secs / b.batched_warm_secs.max(1e-12);
        cold.push(sc);
        warm.push(sw);
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", json_escape(&b.dataset));
        let _ = writeln!(out, "      \"n\": {},", b.n);
        let _ = writeln!(out, "      \"m\": {},", b.m);
        let _ = writeln!(
            out,
            "      \"tick0_plan\": {{\"total_queries\": {}, \"answered_at_plan\": {}, \"sequential_runs\": {}, \"solver_runs\": {}, \"k_levels\": {}}},",
            b.stats.total_queries,
            b.stats.answered_at_plan,
            b.stats.sequential_runs,
            b.stats.solver_runs,
            b.stats.k_levels
        );
        let _ = writeln!(out, "      \"warm_cache_hits\": {},", b.warm_cache_hits);
        out.push_str("      \"ttfr\": [\n");
        for (ti, t) in b.ttfr.iter().enumerate() {
            let sp = t.full_batch_secs / t.first_result_secs.max(1e-12);
            let _ = writeln!(
                out,
                "        {{\"direction\": \"{}\", \"k\": {}, \"r\": {}, \"first_result_secs\": {:.6}, \"full_batch_secs\": {:.6}, \"stream_total_secs\": {:.6}, \"ttfr_speedup\": {:.2}}}{}",
                t.direction,
                t.k,
                t.r,
                t.first_result_secs,
                t.full_batch_secs,
                t.stream_total_secs,
                sp,
                if ti + 1 == b.ttfr.len() { "" } else { "," }
            );
        }
        out.push_str("      ],\n");
        let _ = writeln!(out, "      \"sequential_secs\": {:.6},", b.sequential_secs);
        let _ = writeln!(
            out,
            "      \"batched_cold_secs\": {:.6},",
            b.batched_cold_secs
        );
        let _ = writeln!(
            out,
            "      \"batched_warm_secs\": {:.6},",
            b.batched_warm_secs
        );
        let _ = writeln!(out, "      \"speedup_cold\": {sc:.2},");
        let _ = writeln!(out, "      \"speedup_warm\": {sw:.2}");
        out.push_str(if bi + 1 == blocks.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    let gmean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            (xs.iter().map(|s| s.ln()).sum::<f64>() / xs.len() as f64).exp()
        }
    };
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let ttfr: Vec<f64> = blocks
        .iter()
        .flat_map(|b| b.ttfr.iter())
        .map(|t| t.full_batch_secs / t.first_result_secs.max(1e-12))
        .collect();
    out.push_str("  \"summary\": {\n");
    let _ = writeln!(out, "    \"min_speedup_cold\": {:.2},", min(&cold));
    let _ = writeln!(out, "    \"geomean_speedup_cold\": {:.2},", gmean(&cold));
    let _ = writeln!(out, "    \"min_speedup_warm\": {:.2},", min(&warm));
    let _ = writeln!(out, "    \"geomean_speedup_warm\": {:.2},", gmean(&warm));
    let _ = writeln!(out, "    \"min_ttfr_speedup\": {:.2},", min(&ttfr));
    let _ = writeln!(out, "    \"geomean_ttfr_speedup\": {:.2}", gmean(&ttfr));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut datasets = vec![
        "email".to_string(),
        "youtube".to_string(),
        "friendster".to_string(),
    ];
    let mut out_path = "BENCH_batch.json".to_string();
    let mut runs = 5usize;
    let mut queries = 64usize;
    let mut threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut traffic_seed: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--datasets" => {
                i += 1;
                datasets = args[i].split(',').map(|s| s.trim().to_string()).collect();
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs takes an integer");
            }
            "--queries" => {
                i += 1;
                queries = args[i].parse().expect("--queries takes an integer");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads takes an integer");
            }
            "--traffic-seed" => {
                i += 1;
                traffic_seed = args[i].parse().expect("--traffic-seed takes an integer");
            }
            other => panic!(
                "unknown argument {other:?} (expected --datasets/--out/--runs/--queries/--threads/--traffic-seed)"
            ),
        }
        i += 1;
    }

    let mut blocks: Vec<Block> = Vec::new();
    for name in &datasets {
        let spec =
            by_name(Profile::Quick, name).unwrap_or_else(|| panic!("unknown dataset {name:?}"));
        eprintln!("[batch_baseline] generating {name} ...");
        let wg = spec.generate_weighted();
        let (n, m) = (wg.num_vertices(), wg.num_edges());
        let profile = TrafficProfile::paper_defaults(spec.k_grid);
        let batches: Vec<Vec<Query>> = (0..runs as u64)
            .map(|tick| {
                mixed_query_traffic(
                    queries,
                    &profile,
                    GraphSeed(spec.seed ^ traffic_seed ^ tick.wrapping_mul(0x9E37_79B9)),
                )
                .iter()
                .map(to_engine_query)
                .collect()
            })
            .collect();
        let batch = &batches[0];

        // Correctness cross-check before any timing: the batched answers
        // must match the one-at-a-time answers. Deterministic solver
        // paths must be bit-identical at any thread count; local-search
        // paths are compared only when one worker makes them exactly
        // sequential (see par_local_search's docs).
        let check_engine = Engine::with_threads(wg.clone(), threads);
        let stats = check_engine.plan(batch).stats;
        eprintln!(
            "[batch_baseline] {name}: tick 0 has {} queries -> {} solver runs ({} k levels)",
            stats.total_queries, stats.solver_runs, stats.k_levels
        );
        let batched = check_engine.run_batch(batch);
        for (qi, (q, got)) in batch.iter().zip(&batched).enumerate() {
            let expect = solve_sequential(&wg, q);
            let deterministic = matches!(q.constraint, Constraint::Unconstrained) || threads == 1;
            if deterministic {
                assert_eq!(got, &expect, "query #{qi} diverged: {q:?}");
            }
        }

        if std::env::var("IC_BATCH_PROFILE").is_ok() {
            let mut per: Vec<(String, f64)> = Vec::new();
            for q in batch {
                let (t, _) = time_once(|| solve_sequential(&wg, q));
                per.push((format!("{q:?}"), t));
            }
            per.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (q, t) in per.iter().take(15) {
                eprintln!("  {t:.4}s  {q}");
            }
            let tot: f64 = per.iter().map(|x| x.1).sum();
            eprintln!("  total sequential {tot:.3}s over {} queries", per.len());
        }

        eprintln!("[batch_baseline] {name}: timing sequential loop over {runs} ticks");
        let mut sequential_secs = 0.0;
        for b in &batches {
            let (t, _) = time_once(|| {
                b.iter()
                    .map(|q| solve_sequential(&wg, q))
                    .collect::<Vec<_>>()
            });
            sequential_secs += t;
        }

        eprintln!("[batch_baseline] {name}: timing batched (cold engine per tick)");
        let mut batched_cold_secs = 0.0;
        let mut clones: Vec<_> = (0..runs).map(|_| wg.clone()).collect();
        for b in &batches {
            let fresh = Engine::with_threads(clones.pop().expect("one clone per tick"), threads);
            let (t, _) = time_once(|| fresh.run_batch(b));
            batched_cold_secs += t;
        }

        eprintln!("[batch_baseline] {name}: timing batched (warm serving session)");
        let warm_engine = Engine::with_threads(wg.clone(), threads);
        let mut batched_warm_secs = 0.0;
        let mut warm_cache_hits = 0usize;
        for b in &batches {
            warm_cache_hits += warm_engine.plan(b).stats.cache_hits;
            let (t, _) = time_once(|| warm_engine.run_batch(b));
            batched_warm_secs += t;
        }

        eprintln!("[batch_baseline] {name}: timing streamed sessions (time-to-first-result)");
        // Warm-snapshot engine: the serving steady state a progressive
        // session runs in. k = the grid's smallest value (largest core,
        // the most events to stream over), r = the paper's deepest sweep
        // point.
        let ttfr_engine = Engine::with_threads(wg.clone(), threads);
        let kq = spec.k_grid[0];
        let ttfr = [
            measure_ttfr(&ttfr_engine, "min", Query::new(kq, 20, Aggregation::Min), 5),
            measure_ttfr(&ttfr_engine, "max", Query::new(kq, 20, Aggregation::Max), 5),
        ];
        for t in &ttfr {
            eprintln!(
                "  [{}] first result {:.4}s vs full batch {:.4}s ({:.1}x), stream total {:.4}s",
                t.direction,
                t.first_result_secs,
                t.full_batch_secs,
                t.full_batch_secs / t.first_result_secs.max(1e-12),
                t.stream_total_secs
            );
        }

        blocks.push(Block {
            dataset: name.clone(),
            n,
            m,
            stats,
            warm_cache_hits,
            sequential_secs,
            batched_cold_secs,
            batched_warm_secs,
            ttfr,
        });
    }

    let json = render(&blocks, queries, runs, threads);
    std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
    println!("{json}");
    eprintln!("[batch_baseline] wrote {out_path}");
}
