//! Machine-readable baseline for million-node sharded serving: the
//! PR-8 pipeline end to end, with every number gated on bit-identity.
//!
//! One streamed Chung-Lu graph (default 10⁶ vertices — generated in
//! two passes, no edge list ever materialized) is built two ways:
//!
//! * a single unsharded `ICS1` store (decomposition + default-k level
//!   + min/max forests), and
//! * a directory of per-shard stores (`ic_store::shard`), partitioned
//!   by connected component and k-level range.
//!
//! Measured, in order:
//!
//! 1. **Cold start** — process-equivalent first-query latency from the
//!    single store, opened memory-mapped (lazy per-section
//!    verification, pages faulted on demand) vs. into an owned buffer
//!    (full read + eager checksum). The mmap number must win: that is
//!    the point of the mapped path (`--assert-mmap-wins` makes it a
//!    hard gate for CI).
//! 2. **Bit-identity** — before any sharded timing, a min/max/sum
//!    query sample through [`ic_shard::ShardedEngine`] is asserted
//!    byte-equal to the unsharded engine. A fast sharded answer that
//!    differs would be worthless; this gate is unconditional.
//! 3. **Steady state** — index-served queries/sec, unsharded vs.
//!    sharded scatter-gather (result caches cleared every round).
//! 4. **Serving** — the same sharded backend behind a real
//!    `ic_serve::Server` on loopback TCP: per-query p50 and aggregate
//!    throughput, because "serves a million-node graph" means through
//!    the network front end, not just a library call.
//!
//! ```text
//! cargo run -p ic-bench --release --bin shard_baseline -- \
//!     --n 1000000 --target-m 4000000 --ks 4,8 --out BENCH_shard.json \
//!     --assert-mmap-wins
//! ```

use ic_bench::runner::time_once;
use ic_core::Aggregation;
use ic_engine::{Engine, OpenOptions, Query};
use ic_gen::{pareto_weights, stream_graph, GraphSeed, StreamSpec};
use ic_graph::WeightedGraph;
use ic_serve::{Client, Outcome, Response, ServeConfig, Server};
use ic_shard::ShardedEngine;
use ic_store::shard::{build_shard_stores, DEFAULT_MAX_SHARD_VERTICES};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    n: usize,
    target_m: usize,
    ks: Vec<usize>,
    shard_cap: usize,
    runs: usize,
    out: String,
    assert_mmap_wins: bool,
}

struct Numbers {
    n: usize,
    m: usize,
    gen_secs: f64,
    store_secs: f64,
    store_bytes: u64,
    shards_secs: f64,
    shard_count: usize,
    shard_bytes: u64,
    mmap_first_query_secs: f64,
    owned_first_query_secs: f64,
    sharded_first_query_secs: f64,
    identity_queries: usize,
    unsharded_qps: f64,
    sharded_qps: f64,
    serve_p50_ms: f64,
    serve_qps: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The cold-start probe: index-served top-10 min at the smallest
/// persisted `k`.
fn probe(k: usize) -> Query {
    Query::new(k, 10, Aggregation::Min)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok()?.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Largest `n` at which the identity sample still includes the
/// solver-served sum family. TIC-exact enumerates over the whole
/// k-core, so at million scale a single sum query runs for minutes —
/// past this size the gate sticks to the index-served extremal
/// families (output-sensitive at any `n`) and the sum/surplus merge
/// identity is carried by the in-process oracle proptest
/// (`crates/shard/tests/merge_prop.rs`) at sizes where it is feasible.
const SUM_IDENTITY_MAX_VERTICES: usize = 200_000;

/// Query sample for the identity gate: index-served min/max at every
/// persisted `k`, plus — when the graph is small enough — one
/// solver-served sum and one surplus query at the densest `k` (the sum
/// peel is the path where a total-weight mismatch would show).
fn identity_sample(ks: &[usize], n: usize) -> Vec<Query> {
    let mut sample: Vec<Query> = ks
        .iter()
        .flat_map(|&k| {
            [
                Query::new(k, 1, Aggregation::Min),
                Query::new(k, 10, Aggregation::Min),
                Query::new(k, 10, Aggregation::Max),
            ]
        })
        .collect();
    if n <= SUM_IDENTITY_MAX_VERTICES {
        let kmax = ks.iter().copied().max().unwrap_or(2);
        sample.push(Query::new(kmax, 5, Aggregation::Sum));
        sample.push(Query::new(kmax, 5, Aggregation::SumSurplus { alpha: 1.0 }));
    } else {
        eprintln!(
            "[identity] n = {n} > {SUM_IDENTITY_MAX_VERTICES}: sum/surplus dropped from the \
             gate (TIC-exact over the full k-core; merge identity held by merge_prop.rs)"
        );
    }
    sample
}

/// Steady-state throughput: min/max r-sweep at `k`, caches cleared
/// between rounds so every query is a live serve.
fn steady_qps<C, R>(clear: C, run: R, k: usize, rounds: usize) -> f64
where
    C: Fn(),
    R: Fn(&[Query]) -> usize,
{
    let sweep: Vec<Query> = (1..=8usize)
        .map(|r| Query::new(k, r, Aggregation::Min))
        .chain((1..=8usize).map(|r| Query::new(k, r, Aggregation::Max)))
        .collect();
    let mut total = 0.0f64;
    let mut served = 0usize;
    for _ in 0..rounds {
        clear();
        let (t, answered) = time_once(|| run(&sweep));
        assert_eq!(answered, sweep.len(), "steady-state query failed");
        total += t;
        served += sweep.len();
    }
    served as f64 / total.max(1e-12)
}

/// Drives `queries` through a real loopback server backed by the
/// sharded engine: returns (p50 latency ms, qps).
fn serve_leg(dir: &Path, queries: &[Query], clients: usize) -> (f64, f64) {
    let sharded = ShardedEngine::open_dir(dir).expect("open shards for serving");
    let server = Server::bind_backend(Arc::new(sharded), "127.0.0.1:0", ServeConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    let per = queries.len().div_ceil(clients.max(1));
    let t = Instant::now();
    let workers: Vec<_> = queries
        .chunks(per)
        .map(|slice| {
            let slice = slice.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_ms = Vec::with_capacity(slice.len());
                for (i, q) in slice.iter().enumerate() {
                    let t0 = Instant::now();
                    let response = client.call(i as u64, q).expect("serve query");
                    assert!(
                        matches!(
                            response,
                            Response::Reply {
                                outcome: Outcome::Complete(_) | Outcome::Degraded { .. },
                                ..
                            }
                        ),
                        "served query must be answered, got {response:?}"
                    );
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(queries.len());
    for w in workers {
        latencies_ms.extend(w.join().expect("client thread"));
    }
    let wall = t.elapsed().as_secs_f64();
    server.shutdown();
    server.join();

    latencies_ms.sort_by(f64::total_cmp);
    let p50 = latencies_ms[latencies_ms.len() / 2];
    (p50, queries.len() as f64 / wall.max(1e-12))
}

fn measure(config: &Config) -> Numbers {
    let scratch = std::env::temp_dir().join(format!("ic-shard-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let store: PathBuf = scratch.join("full.ics1");
    let shards_dir: PathBuf = scratch.join("shards");

    // Streamed generation: two passes, no edge list.
    let spec = StreamSpec::ChungLu {
        n: config.n,
        target_m: config.target_m,
        gamma: 2.5,
        seed: GraphSeed(42),
    };
    let t = Instant::now();
    let g = stream_graph(&spec);
    let w = pareto_weights(config.n, 1.5, GraphSeed(42 ^ 0x9e37_79b9));
    let wg = WeightedGraph::new(g, w).expect("streamed weights pair");
    let gen_secs = t.elapsed().as_secs_f64();
    let (n, m) = (wg.num_vertices(), wg.num_edges());
    eprintln!("[gen] {n} vertices, {m} edges in {gen_secs:.2}s");

    // Single unsharded store, warmed the way an operator would.
    let t = Instant::now();
    let unsharded = Engine::with_threads(wg.clone(), 0);
    let warm: Vec<Query> = config
        .ks
        .iter()
        .flat_map(|&k| {
            [
                Query::new(k, 10, Aggregation::Min),
                Query::new(k, 10, Aggregation::Max),
            ]
        })
        .collect();
    for r in unsharded.run_batch(&warm) {
        r.expect("warmup answers");
    }
    unsharded.persist(&store).expect("persist store");
    let store_secs = t.elapsed().as_secs_f64();
    let store_bytes = std::fs::metadata(&store).map(|s| s.len()).unwrap_or(0);
    eprintln!("[store] {store_bytes} bytes in {store_secs:.2}s");

    // Per-shard stores over the same graph.
    let t = Instant::now();
    let shard_paths =
        build_shard_stores(&wg, &config.ks, config.shard_cap, &shards_dir).expect("shard build");
    let shards_secs = t.elapsed().as_secs_f64();
    let shard_bytes = dir_bytes(&shards_dir);
    eprintln!(
        "[shards] {} shard(s), {shard_bytes} bytes in {shards_secs:.2}s",
        shard_paths.len()
    );
    drop(wg);

    // Cold start: mapped vs owned vs sharded, median over runs.
    let k0 = config.ks.iter().copied().min().unwrap_or(2);
    let cold = |options: &OpenOptions| {
        let (t, _) = time_once(|| {
            let engine =
                Engine::open_with_options(&store, &options.clone().threads(1)).expect("open");
            for r in engine.run_batch(&[probe(k0)]) {
                r.expect("probe answer");
            }
        });
        t
    };
    let mut mmap_samples: Vec<f64> = (0..config.runs)
        .map(|_| cold(&OpenOptions::default()))
        .collect();
    let mut owned_samples: Vec<f64> = (0..config.runs)
        .map(|_| cold(&OpenOptions::default().owned_buffer()))
        .collect();
    let mut sharded_samples: Vec<f64> = (0..config.runs)
        .map(|_| {
            let (t, _) = time_once(|| {
                let sharded = ShardedEngine::open_dir(&shards_dir).expect("open shards");
                let (_, answers) =
                    sharded.run_batch_pinned(&[probe(k0)], &ic_engine::BatchOptions::default());
                for r in answers {
                    r.expect("probe answer");
                }
            });
            t
        })
        .collect();
    let mmap_first_query_secs = median(&mut mmap_samples);
    let owned_first_query_secs = median(&mut owned_samples);
    let sharded_first_query_secs = median(&mut sharded_samples);
    eprintln!(
        "[cold] mmap {mmap_first_query_secs:.4}s, owned {owned_first_query_secs:.4}s, \
         sharded {sharded_first_query_secs:.4}s"
    );
    if config.assert_mmap_wins {
        assert!(
            mmap_first_query_secs < owned_first_query_secs,
            "mapped cold start ({mmap_first_query_secs:.4}s) must beat the owned-buffer copy \
             ({owned_first_query_secs:.4}s)"
        );
    }

    // Bit-identity gate before any sharded timing.
    let sharded = ShardedEngine::open_dir(&shards_dir).expect("open shards");
    let sample = identity_sample(&config.ks, config.n);
    let options = ic_engine::BatchOptions::default();
    let want = unsharded.run_batch_pinned(&sample, &options).1;
    let got = sharded.run_batch_pinned(&sample, &options).1;
    for ((q, w), g) in sample.iter().zip(&want).zip(&got) {
        let w = w.as_ref().expect("unsharded answer");
        let g = g.as_ref().expect("sharded answer");
        assert_eq!(w, g, "sharded answer diverged on {q:?}");
    }
    eprintln!("[identity] {} queries bit-identical", sample.len());

    // Steady state, both backends.
    let unsharded_qps = steady_qps(
        || unsharded.clear_result_cache(),
        |sweep| {
            unsharded
                .run_batch(sweep)
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        },
        k0,
        config.runs,
    );
    let sharded_qps = steady_qps(
        || sharded.clear_result_cache(),
        |sweep| {
            sharded
                .run_batch_pinned(sweep, &options)
                .1
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        },
        k0,
        config.runs,
    );
    eprintln!("[steady] unsharded {unsharded_qps:.1} qps, sharded {sharded_qps:.1} qps");

    // Through the real network front end.
    let serve_queries: Vec<Query> = (0..64)
        .map(|i| {
            let k = config.ks[i % config.ks.len()];
            let r = 1 + (i % 8);
            if i % 2 == 0 {
                Query::new(k, r, Aggregation::Min)
            } else {
                Query::new(k, r, Aggregation::Max)
            }
        })
        .collect();
    let (serve_p50_ms, serve_qps) = serve_leg(&shards_dir, &serve_queries, 4);
    eprintln!("[serve] p50 {serve_p50_ms:.2}ms, {serve_qps:.1} qps over loopback");

    std::fs::remove_dir_all(&scratch).ok();
    Numbers {
        n,
        m,
        gen_secs,
        store_secs,
        store_bytes,
        shards_secs,
        shard_count: shard_paths.len(),
        shard_bytes,
        mmap_first_query_secs,
        owned_first_query_secs,
        sharded_first_query_secs,
        identity_queries: sample.len(),
        unsharded_qps,
        sharded_qps,
        serve_p50_ms,
        serve_qps,
    }
}

fn render(config: &Config, x: &Numbers) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ic-bench/shard-baseline/v1\",");
    let _ = writeln!(
        out,
        "  \"pipeline\": \"streamed Chung-Lu graph -> single ICS1 store and per-shard stores -> \
         mmap vs owned cold start -> bit-identity gate -> steady qps -> loopback ic-serve\","
    );
    let _ = writeln!(out, "  \"runs\": {},", config.runs);
    out.push_str("  \"dataset\": {\n");
    let _ = writeln!(out, "    \"n\": {},", x.n);
    let _ = writeln!(out, "    \"m\": {},", x.m);
    let _ = writeln!(out, "    \"ks\": {:?},", config.ks);
    let _ = writeln!(out, "    \"gen_secs\": {:.3}", x.gen_secs);
    out.push_str("  },\n");
    out.push_str("  \"build\": {\n");
    let _ = writeln!(out, "    \"store_secs\": {:.3},", x.store_secs);
    let _ = writeln!(out, "    \"store_bytes\": {},", x.store_bytes);
    let _ = writeln!(out, "    \"shards_secs\": {:.3},", x.shards_secs);
    let _ = writeln!(out, "    \"shard_count\": {},", x.shard_count);
    let _ = writeln!(out, "    \"shard_cap_vertices\": {},", config.shard_cap);
    let _ = writeln!(out, "    \"shard_bytes\": {}", x.shard_bytes);
    out.push_str("  },\n");
    out.push_str("  \"cold_first_query\": {\n");
    let _ = writeln!(out, "    \"mmap_secs\": {:.6},", x.mmap_first_query_secs);
    let _ = writeln!(out, "    \"owned_secs\": {:.6},", x.owned_first_query_secs);
    let _ = writeln!(
        out,
        "    \"sharded_secs\": {:.6},",
        x.sharded_first_query_secs
    );
    let _ = writeln!(
        out,
        "    \"mmap_speedup\": {:.2}",
        x.owned_first_query_secs / x.mmap_first_query_secs.max(1e-12)
    );
    out.push_str("  },\n");
    out.push_str("  \"identity\": {\n");
    let _ = writeln!(out, "    \"queries_checked\": {},", x.identity_queries);
    let _ = writeln!(out, "    \"bit_identical\": true");
    out.push_str("  },\n");
    out.push_str("  \"steady\": {\n");
    let _ = writeln!(out, "    \"unsharded_qps\": {:.1},", x.unsharded_qps);
    let _ = writeln!(out, "    \"sharded_qps\": {:.1}", x.sharded_qps);
    out.push_str("  },\n");
    out.push_str("  \"serve\": {\n");
    let _ = writeln!(out, "    \"p50_ms\": {:.3},", x.serve_p50_ms);
    let _ = writeln!(out, "    \"qps\": {:.1}", x.serve_qps);
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = Config {
        n: 1_000_000,
        target_m: 4_000_000,
        ks: vec![4, 8],
        shard_cap: DEFAULT_MAX_SHARD_VERTICES,
        runs: 3,
        out: "BENCH_shard.json".to_string(),
        assert_mmap_wins: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                config.n = args[i].parse().expect("--n");
            }
            "--target-m" => {
                i += 1;
                config.target_m = args[i].parse().expect("--target-m");
            }
            "--ks" => {
                i += 1;
                config.ks = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--ks"))
                    .collect();
            }
            "--shard-cap" => {
                i += 1;
                config.shard_cap = args[i].parse().expect("--shard-cap");
            }
            "--runs" => {
                i += 1;
                config.runs = args[i].parse::<usize>().expect("--runs").max(1);
            }
            "--out" => {
                i += 1;
                config.out = args[i].clone();
            }
            "--assert-mmap-wins" => config.assert_mmap_wins = true,
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let numbers = measure(&config);
    let json = render(&config, &numbers);
    std::fs::write(&config.out, &json).expect("write bench json");
    println!("wrote {}", config.out);
}
