//! Mapping between generated traffic ([`ic_gen::workload`]) and engine
//! queries, plus the one-query-at-a-time baseline the batched engine is
//! measured against.

use ic_core::{Aggregation, Community, SearchError};
use ic_engine::Query;
use ic_gen::workload::{MixAggregation, QuerySpec};
use ic_graph::WeightedGraph;

/// Maps a generated [`QuerySpec`] onto an engine [`Query`].
pub fn to_engine_query(spec: &QuerySpec) -> Query {
    let aggregation = match spec.aggregation {
        MixAggregation::Min => Aggregation::Min,
        MixAggregation::Max => Aggregation::Max,
        MixAggregation::Sum => Aggregation::Sum,
        MixAggregation::SumSurplus => Aggregation::SumSurplus { alpha: spec.alpha },
        MixAggregation::Average => Aggregation::Average,
        MixAggregation::TopTSum => Aggregation::TopTSum { t: spec.t },
        MixAggregation::Percentile => Aggregation::Percentile { p: spec.p },
        MixAggregation::GeometricMean => Aggregation::GeometricMean,
    };
    let mut q = Query::new(spec.k, spec.r, aggregation);
    if spec.epsilon != 0.0 {
        q = q.approx(spec.epsilon);
    }
    if let Some(s) = spec.size_bound {
        q = q.size_bound(s, spec.greedy);
    }
    q
}

/// Answers one query the pre-engine way: a direct solver call that
/// recomputes the core decomposition and builds a fresh arena, exactly
/// what a caller without the engine writes today. The sequential
/// baseline of `batch_baseline` is this, in a loop. Routing goes
/// through [`ic_core::Query::solve`] — the unified solver layer — so
/// this crate no longer hand-dispatches per aggregation.
pub fn solve_sequential(wg: &WeightedGraph, q: &Query) -> Result<Vec<Community>, SearchError> {
    q.solve(wg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_gen::workload::{mixed_query_traffic, TrafficProfile};
    use ic_gen::GraphSeed;

    #[test]
    fn generated_traffic_maps_to_valid_engine_queries() {
        let profile = TrafficProfile::paper_defaults(&[4, 6]);
        let traffic = mixed_query_traffic(32, &profile, GraphSeed(1));
        let wg = ic_core::figure1::figure1();
        let engine = ic_engine::Engine::with_threads(wg, 1);
        let queries: Vec<Query> = traffic.iter().map(to_engine_query).collect();
        let plan = engine.plan(&queries);
        assert_eq!(plan.stats.total_queries, 32);
        // Generated traffic is always well-formed: anything not answered
        // at plan time is a planned solver run, and plan-time answers on
        // this tiny graph are k > degeneracy empties, not errors.
        for r in engine.run_batch(&queries) {
            assert!(r.is_ok());
        }
    }
}
