//! Markdown table rendering for experiment output.

use std::fmt::Write as _;

/// A simple markdown table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a duration in seconds with engineering-friendly precision
/// (matching the paper's log-scale running-time plots).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats an influence value compactly.
pub fn fmt_value(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        "—".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row(["x", "y"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| x | y |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn formats_times() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.005), "5.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
    }

    #[test]
    fn formats_values() {
        assert_eq!(fmt_value(f64::NEG_INFINITY), "—");
        assert_eq!(fmt_value(12345.6), "12346");
        assert_eq!(fmt_value(12.345), "12.35");
        assert_eq!(fmt_value(0.000123), "1.230e-4");
    }
}
