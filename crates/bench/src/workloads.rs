//! Workload construction: dataset analogs with PageRank weights, plus the
//! parameter grids of Section VI.

use ic_gen::datasets::{registry, DatasetSpec, Profile};
use ic_graph::WeightedGraph;
use ic_kcore::core_decomposition;

/// A ready-to-search workload.
pub struct Workload {
    /// The generating spec (contains the paper-side numbers for reporting).
    pub spec: DatasetSpec,
    /// The weighted graph (PageRank weights, damping 0.85).
    pub wg: WeightedGraph,
    /// Realized maximum core number.
    pub kmax: u32,
}

impl Workload {
    /// Builds the workload for a spec.
    pub fn build(spec: DatasetSpec) -> Self {
        let wg = spec.generate_weighted();
        let kmax = core_decomposition(wg.graph()).max_core;
        Workload { spec, wg, kmax }
    }

    /// The spec's k grid clamped to the realized `kmax`.
    pub fn usable_k_grid(&self) -> Vec<usize> {
        self.spec
            .k_grid
            .iter()
            .copied()
            .filter(|&k| k <= self.kmax as usize)
            .collect()
    }
}

/// Loads the requested datasets (all six when `names` is empty). Names are
/// matched case-insensitively; unknown names panic with the valid list.
pub fn load(profile: Profile, names: &[String]) -> Vec<Workload> {
    let specs = registry(profile);
    let selected: Vec<DatasetSpec> = if names.is_empty() {
        specs
    } else {
        names
            .iter()
            .map(|n| {
                specs
                    .iter()
                    .find(|s| s.name.eq_ignore_ascii_case(n))
                    .unwrap_or_else(|| {
                        panic!(
                            "unknown dataset {n:?}; valid: {:?}",
                            specs.iter().map(|s| s.name).collect::<Vec<_>>()
                        )
                    })
                    .clone()
            })
            .collect()
    };
    selected
        .into_iter()
        .map(|spec| {
            eprintln!("[workload] generating {} ...", spec.name);
            Workload::build(spec)
        })
        .collect()
}

/// The paper's r sweep (Figs 3, 5, 8, 9).
pub const R_GRID: [usize; 4] = [5, 10, 15, 20];
/// The paper's ε sweep (Figs 4-5).
pub const EPSILON_GRID: [f64; 5] = [0.01, 0.05, 0.10, 0.20, 0.50];
/// The paper's s sweep (Figs 10-11).
pub const S_GRID: [usize; 4] = [5, 10, 15, 20];
/// The k sweep used by every size-constrained experiment (Figs 6-13).
pub const CONSTRAINED_K_GRID: [usize; 4] = [4, 6, 8, 10];
/// Default parameters (Section VI: ε = 0.1, r = 5, s = 20).
pub const DEFAULT_EPSILON: f64 = 0.1;
/// Default result count.
pub const DEFAULT_R: usize = 5;
/// Default size bound.
pub const DEFAULT_S: usize = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_by_name() {
        let ws = load(Profile::Quick, &["email".to_string()]);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].spec.name, "email");
        assert!(ws[0].kmax >= 10);
        assert!(!ws[0].usable_k_grid().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn load_unknown_panics() {
        load(Profile::Quick, &["bogus".to_string()]);
    }
}
