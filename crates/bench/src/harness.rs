//! Per-graph solver harnesses shared by the benchmark targets.
//!
//! The per-graph free-function entry points (`min_topr`, `sum_naive`,
//! `tic_improved`, …) were removed from `ic-core`'s public API in PR 4;
//! benchmarks that time the one-query-at-a-time shape route through the
//! certificate-driven [`Query`] router (or the snapshot entry point for
//! Algorithm 1, which the router does not serve — TIC answers its
//! queries). Each call pays the full per-query cost — decomposition
//! included — preserving what the figures have always measured.

use ic_core::{algo, Aggregation, Community, Query, SearchError};
use ic_graph::WeightedGraph;
use ic_kcore::{GraphSnapshot, PeelArena};

/// `Result` alias shared by the harnesses.
pub type Solved = Result<Vec<Community>, SearchError>;

/// Algorithm 1 (`SUM-NAÏVE`) on a fresh snapshot + arena per call.
pub fn sum_naive(wg: &WeightedGraph, k: usize, r: usize, agg: Aggregation) -> Solved {
    let snap = GraphSnapshot::new(wg.clone());
    let mut arena = PeelArena::for_graph(snap.graph());
    algo::sum_naive_on(&snap, k, r, agg, &mut arena)
}

/// Algorithm 2 (`TIC-IMPROVED`; ε = 0 exact, ε > 0 Approx) through the
/// router, fresh decomposition per call.
pub fn tic_improved(wg: &WeightedGraph, k: usize, r: usize, agg: Aggregation, eps: f64) -> Solved {
    Query::new(k, r, agg).approx(eps).solve(wg)
}

/// The `min`-peeling baseline through the router, fresh decomposition
/// per call.
pub fn min_topr(wg: &WeightedGraph, k: usize, r: usize) -> Solved {
    Query::new(k, r, Aggregation::Min).solve(wg)
}
