//! One function per paper artifact (Table III, Figs 2–14, ablations).
//! Each returns a markdown section; the `experiments` binary routes
//! subcommands here.

use crate::harness::{min_topr, sum_naive, tic_improved};
use crate::report::{fmt_secs, fmt_value, Table};
use crate::runner::{time_median, time_once};
use crate::workloads::{
    load, Workload, CONSTRAINED_K_GRID, DEFAULT_EPSILON, DEFAULT_R, DEFAULT_S, EPSILON_GRID,
    R_GRID, S_GRID,
};
use ic_core::algo::{
    self, local_search, par_local_search, tic_improved_with_options, ImprovedOptions,
    LocalSearchConfig,
};
use ic_core::{Aggregation, Community};
use ic_gen::datasets::Profile;
use ic_gen::{aminer_network, GraphSeed};
use ic_graph::stats::graph_stats;

/// Shared experiment context.
pub struct Ctx {
    /// Scale profile.
    pub profile: Profile,
    /// Dataset name filter (empty = all six).
    pub datasets: Vec<String>,
}

impl Ctx {
    fn workloads(&self) -> Vec<Workload> {
        load(self.profile, &self.datasets)
    }
}

fn section(title: &str, body: String) -> String {
    format!("\n## {title}\n\n{body}")
}

/// Table III: dataset statistics (paper original vs synthetic analog).
pub fn table3(ctx: &Ctx) -> String {
    let mut t = Table::new([
        "dataset",
        "paper n",
        "paper m",
        "paper kmax",
        "analog n",
        "analog m",
        "analog dmax",
        "analog davg",
        "analog kmax",
    ]);
    for w in ctx.workloads() {
        let s = graph_stats(w.wg.graph());
        t.row([
            w.spec.name.to_string(),
            w.spec.paper_vertices.to_string(),
            w.spec.paper_edges.to_string(),
            w.spec.paper_kmax.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.max_degree.to_string(),
            format!("{:.2}", s.avg_degree),
            w.kmax.to_string(),
        ]);
    }
    section("Table III — dataset statistics", t.to_markdown())
}

/// Fig 2: running time vs k (sum, size-unconstrained): Naive / Improve /
/// Approx(ε = 0.1).
pub fn fig2(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let mut t = Table::new(["k", "Naive", "Improve", "Approx(0.1)", "top-1 value"]);
        for k in w.usable_k_grid() {
            eprintln!("[fig2] {} k={k}", w.spec.name);
            let (tn, rn) = time_once(|| sum_naive(&w.wg, k, DEFAULT_R, Aggregation::Sum));
            let (ti, _) = time_once(|| tic_improved(&w.wg, k, DEFAULT_R, Aggregation::Sum, 0.0));
            let (ta, _) =
                time_once(|| tic_improved(&w.wg, k, DEFAULT_R, Aggregation::Sum, DEFAULT_EPSILON));
            let top1 = rn
                .ok()
                .and_then(|v| v.first().map(|c| c.value))
                .unwrap_or(f64::NEG_INFINITY);
            t.row([
                k.to_string(),
                fmt_secs(tn),
                fmt_secs(ti),
                fmt_secs(ta),
                fmt_value(top1),
            ]);
        }
        out.push_str(&section(
            &format!("Fig 2 ({}) — time vs k (sum, unconstrained)", w.spec.name),
            t.to_markdown(),
        ));
    }
    out
}

/// Fig 3: running time vs r (sum, size-unconstrained).
pub fn fig3(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let k = w.spec.default_k.min(w.kmax as usize);
        let mut t = Table::new(["r", "Naive", "Improve", "Approx(0.1)"]);
        for r in R_GRID {
            eprintln!("[fig3] {} r={r}", w.spec.name);
            let (tn, _) = time_once(|| sum_naive(&w.wg, k, r, Aggregation::Sum));
            let (ti, _) = time_once(|| tic_improved(&w.wg, k, r, Aggregation::Sum, 0.0));
            let (ta, _) =
                time_once(|| tic_improved(&w.wg, k, r, Aggregation::Sum, DEFAULT_EPSILON));
            t.row([r.to_string(), fmt_secs(tn), fmt_secs(ti), fmt_secs(ta)]);
        }
        out.push_str(&section(
            &format!(
                "Fig 3 ({}) — time vs r (sum, unconstrained, k={k})",
                w.spec.name
            ),
            t.to_markdown(),
        ));
    }
    out
}

/// Fig 4: Approx running time vs k for each ε.
pub fn fig4(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let mut header = vec!["k".to_string()];
        header.extend(EPSILON_GRID.iter().map(|e| format!("ε={e}")));
        let mut t = Table::new(header);
        for k in w.usable_k_grid() {
            eprintln!("[fig4] {} k={k}", w.spec.name);
            let mut row = vec![k.to_string()];
            for &eps in &EPSILON_GRID {
                let (ta, _) = time_median(3, || {
                    tic_improved(&w.wg, k, DEFAULT_R, Aggregation::Sum, eps)
                });
                row.push(fmt_secs(ta));
            }
            t.row(row);
        }
        out.push_str(&section(
            &format!("Fig 4 ({}) — Approx time vs k across ε", w.spec.name),
            t.to_markdown(),
        ));
    }
    out
}

/// Fig 5: Approx running time vs r for each ε.
pub fn fig5(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let k = w.spec.default_k.min(w.kmax as usize);
        let mut header = vec!["r".to_string()];
        header.extend(EPSILON_GRID.iter().map(|e| format!("ε={e}")));
        let mut t = Table::new(header);
        for r in R_GRID {
            eprintln!("[fig5] {} r={r}", w.spec.name);
            let mut row = vec![r.to_string()];
            for &eps in &EPSILON_GRID {
                let (ta, _) = time_median(3, || tic_improved(&w.wg, k, r, Aggregation::Sum, eps));
                row.push(fmt_secs(ta));
            }
            t.row(row);
        }
        out.push_str(&section(
            &format!(
                "Fig 5 ({}) — Approx time vs r across ε (k={k})",
                w.spec.name
            ),
            t.to_markdown(),
        ));
    }
    out
}

fn constrained_time_sweep<I, FMT>(
    ctx: &Ctx,
    aggregation: Aggregation,
    fig: &str,
    param_name: &str,
    params: I,
    config_of: FMT,
) -> String
where
    I: IntoIterator<Item = usize> + Clone,
    FMT: Fn(usize) -> LocalSearchConfig,
{
    let mut out = String::new();
    for w in ctx.workloads() {
        let mut t = Table::new([param_name, "Random", "Greedy"]);
        for p in params.clone() {
            eprintln!("[{fig}] {} {param_name}={p}", w.spec.name);
            let base = config_of(p);
            let random = LocalSearchConfig {
                greedy: false,
                ..base
            };
            let greedy = LocalSearchConfig {
                greedy: true,
                ..base
            };
            let (tr, _) = time_median(3, || local_search(&w.wg, &random, aggregation));
            let (tg, _) = time_median(3, || local_search(&w.wg, &greedy, aggregation));
            t.row([p.to_string(), fmt_secs(tr), fmt_secs(tg)]);
        }
        out.push_str(&section(
            &format!(
                "{fig} ({}) — time vs {param_name} ({}, size-constrained)",
                w.spec.name,
                aggregation.name()
            ),
            t.to_markdown(),
        ));
    }
    out
}

/// Fig 6: running time vs k (sum, size-constrained).
pub fn fig6(ctx: &Ctx) -> String {
    constrained_time_sweep(
        ctx,
        Aggregation::Sum,
        "Fig 6",
        "k",
        CONSTRAINED_K_GRID,
        |k| LocalSearchConfig {
            k,
            r: DEFAULT_R,
            s: DEFAULT_S,
            greedy: false,
        },
    )
}

/// Fig 7: running time vs k (avg, size-constrained).
pub fn fig7(ctx: &Ctx) -> String {
    constrained_time_sweep(
        ctx,
        Aggregation::Average,
        "Fig 7",
        "k",
        CONSTRAINED_K_GRID,
        |k| LocalSearchConfig {
            k,
            r: DEFAULT_R,
            s: DEFAULT_S,
            greedy: false,
        },
    )
}

/// Fig 8: running time vs r (sum, size-constrained).
pub fn fig8(ctx: &Ctx) -> String {
    constrained_time_sweep(ctx, Aggregation::Sum, "Fig 8", "r", R_GRID, |r| {
        LocalSearchConfig {
            k: 4,
            r,
            s: DEFAULT_S,
            greedy: false,
        }
    })
}

/// Fig 9: running time vs r (avg, size-constrained).
pub fn fig9(ctx: &Ctx) -> String {
    constrained_time_sweep(ctx, Aggregation::Average, "Fig 9", "r", R_GRID, |r| {
        LocalSearchConfig {
            k: 4,
            r,
            s: DEFAULT_S,
            greedy: false,
        }
    })
}

/// Fig 10: running time vs s (sum, size-constrained).
pub fn fig10(ctx: &Ctx) -> String {
    constrained_time_sweep(ctx, Aggregation::Sum, "Fig 10", "s", S_GRID, |s| {
        LocalSearchConfig {
            k: 4,
            r: DEFAULT_R,
            s,
            greedy: false,
        }
    })
}

/// Fig 11: running time vs s (avg, size-constrained).
pub fn fig11(ctx: &Ctx) -> String {
    constrained_time_sweep(ctx, Aggregation::Average, "Fig 11", "s", S_GRID, |s| {
        LocalSearchConfig {
            k: 4,
            r: DEFAULT_R,
            s,
            greedy: false,
        }
    })
}

fn effectiveness_sweep(ctx: &Ctx, aggregation: Aggregation, fig: &str) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let mut t = Table::new([
            "k",
            "Random r-th value",
            "Greedy r-th value",
            "Greedy/Random",
        ]);
        for k in CONSTRAINED_K_GRID {
            eprintln!("[{fig}] {} k={k}", w.spec.name);
            let random = local_search(
                &w.wg,
                &LocalSearchConfig {
                    k,
                    r: DEFAULT_R,
                    s: DEFAULT_S,
                    greedy: false,
                },
                aggregation,
            )
            .unwrap_or_default();
            let greedy = local_search(
                &w.wg,
                &LocalSearchConfig {
                    k,
                    r: DEFAULT_R,
                    s: DEFAULT_S,
                    greedy: true,
                },
                aggregation,
            )
            .unwrap_or_default();
            let rv = random.last().map_or(f64::NEG_INFINITY, |c| c.value);
            let gv = greedy.last().map_or(f64::NEG_INFINITY, |c| c.value);
            let ratio = if rv > 0.0 {
                format!("{:.3}", gv / rv)
            } else {
                "—".into()
            };
            t.row([k.to_string(), fmt_value(rv), fmt_value(gv), ratio]);
        }
        out.push_str(&section(
            &format!(
                "{fig} ({}) — r-th influence value ({}, size-constrained)",
                w.spec.name,
                aggregation.name()
            ),
            t.to_markdown(),
        ));
    }
    out
}

/// Fig 12: r-th influence value, Greedy vs Random (sum).
pub fn fig12(ctx: &Ctx) -> String {
    effectiveness_sweep(ctx, Aggregation::Sum, "Fig 12")
}

/// Fig 13: r-th influence value, Greedy vs Random (avg).
pub fn fig13(ctx: &Ctx) -> String {
    effectiveness_sweep(ctx, Aggregation::Average, "Fig 13")
}

fn describe(net: &ic_gen::AminerNetwork, c: &Community) -> String {
    let names: Vec<&str> = c.vertices.iter().map(|&v| net.name_of(v)).collect();
    names.join(", ")
}

/// Fig 14: Aminer case study — top-3 non-overlapping communities under
/// min / avg / sum at k = 4.
pub fn fig14(_ctx: &Ctx) -> String {
    let net = aminer_network(GraphSeed(2022));
    let mut out = String::new();

    // min over the i10-like metric (unconstrained, exact peel).
    let wg = net.weighted_by_i10();
    let min_top = algo::nonoverlap::min_topr_nonoverlapping(&wg, 4, 3).expect("valid params");
    let mut t = Table::new(["rank", "min(i10)", "members"]);
    for (i, c) in min_top.iter().enumerate() {
        t.row([format!("{}", i + 1), fmt_value(c.value), describe(&net, c)]);
    }
    out.push_str(&section(
        "Fig 14 (a-c) — min over i10-like metric",
        t.to_markdown(),
    ));

    // avg over the G-index-like metric (size-constrained local search).
    let wg = net.weighted_by_gindex();
    let avg_top = algo::local_search_nonoverlapping(
        &wg,
        &LocalSearchConfig {
            k: 4,
            r: 3,
            s: 7,
            greedy: true,
        },
        Aggregation::Average,
    )
    .expect("valid params");
    let mut t = Table::new(["rank", "avg(G-index)", "members"]);
    for (i, c) in avg_top.iter().enumerate() {
        t.row([format!("{}", i + 1), fmt_value(c.value), describe(&net, c)]);
    }
    out.push_str(&section(
        "Fig 14 (d-f) — avg over G-index-like metric",
        t.to_markdown(),
    ));

    // sum over citations (size-constrained local search).
    let wg = net.weighted_by_citations();
    let sum_top = algo::local_search_nonoverlapping(
        &wg,
        &LocalSearchConfig {
            k: 4,
            r: 3,
            s: 6,
            greedy: true,
        },
        Aggregation::Sum,
    )
    .expect("valid params");
    let mut t = Table::new(["rank", "sum(citations)", "members"]);
    for (i, c) in sum_top.iter().enumerate() {
        t.row([format!("{}", i + 1), fmt_value(c.value), describe(&net, c)]);
    }
    out.push_str(&section(
        "Fig 14 (g-i) — sum over citations",
        t.to_markdown(),
    ));
    out
}

/// Example 1/2 sanity: every solver on the reconstructed Figure 1.
pub fn example1(_ctx: &Ctx) -> String {
    use ic_core::figure1::figure1;
    let wg = figure1();
    let mut t = Table::new(["query", "result (paper labels)", "values"]);

    let fmt_comm = |cs: &[Community]| -> (String, String) {
        let sets: Vec<String> = cs
            .iter()
            .map(|c| {
                let labels: Vec<String> =
                    c.vertices.iter().map(|&v| format!("v{}", v + 1)).collect();
                format!("{{{}}}", labels.join(","))
            })
            .collect();
        let vals: Vec<String> = cs.iter().map(|c| fmt_value(c.value)).collect();
        (sets.join(" "), vals.join(" "))
    };

    let sum2 = tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
    let (s, v) = fmt_comm(&sum2);
    t.row(["sum top-2 (k=2)".to_string(), s, v]);

    let avg2 = algo::exact_topr(&wg, 2, 2, None, Aggregation::Average).unwrap();
    let (s, v) = fmt_comm(&avg2);
    t.row(["avg top-2 (k=2)".to_string(), s, v]);

    let min2 = min_topr(&wg, 2, 2).unwrap();
    let (s, v) = fmt_comm(&min2);
    t.row(["min top-2 (k=2)".to_string(), s, v]);

    let tonic =
        algo::nonoverlap::exact_nonoverlapping(&wg, 2, 3, None, Aggregation::Average).unwrap();
    let (s, v) = fmt_comm(&tonic);
    t.row(["avg non-overlapping top-3".to_string(), s, v]);

    section("Example 1/2 — the paper's running example", t.to_markdown())
}

/// Ablation: Algorithm 2's pruning rules on/off.
pub fn ablate_prune(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let k = w.spec.default_k.min(w.kmax as usize);
        let mut t = Table::new(["variant", "time", "r-th value"]);
        let variants: [(&str, ImprovedOptions); 4] = [
            (
                "full pruning (default)",
                ImprovedOptions {
                    epsilon: 0.0,
                    prune_by_threshold: true,
                    trim_candidates: true,
                },
            ),
            (
                "no threshold prune",
                ImprovedOptions {
                    epsilon: 0.0,
                    prune_by_threshold: false,
                    trim_candidates: true,
                },
            ),
            (
                "no candidate trim",
                ImprovedOptions {
                    epsilon: 0.0,
                    prune_by_threshold: true,
                    trim_candidates: false,
                },
            ),
            (
                "no pruning at all",
                ImprovedOptions {
                    epsilon: 0.0,
                    prune_by_threshold: false,
                    trim_candidates: false,
                },
            ),
        ];
        for (name, opts) in variants {
            eprintln!("[ablate-prune] {} {}", w.spec.name, name);
            let (tt, res) = time_once(|| {
                tic_improved_with_options(&w.wg, k, DEFAULT_R, Aggregation::Sum, opts)
            });
            let rv = res
                .ok()
                .and_then(|v| v.last().map(|c| c.value))
                .unwrap_or(f64::NEG_INFINITY);
            t.row([name.to_string(), fmt_secs(tt), fmt_value(rv)]);
        }
        out.push_str(&section(
            &format!(
                "Ablation ({}) — Algorithm 2 pruning rules (k={k})",
                w.spec.name
            ),
            t.to_markdown(),
        ));
    }
    out
}

/// Ablation: parallel local search thread scaling.
pub fn ablate_parallel(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let mut t = Table::new(["threads", "time", "speedup", "top value"]);
        let config = LocalSearchConfig {
            k: 4,
            r: DEFAULT_R,
            s: DEFAULT_S,
            greedy: true,
        };
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            eprintln!("[ablate-parallel] {} threads={threads}", w.spec.name);
            let (tt, res) = time_median(3, || {
                par_local_search(&w.wg, &config, Aggregation::Average, threads)
            });
            let top = res
                .ok()
                .and_then(|v| v.first().map(|c| c.value))
                .unwrap_or(f64::NEG_INFINITY);
            let speedup = match base {
                None => {
                    base = Some(tt);
                    "1.00x".to_string()
                }
                Some(b) => format!("{:.2}x", b / tt),
            };
            t.row([threads.to_string(), fmt_secs(tt), speedup, fmt_value(top)]);
        }
        out.push_str(&section(
            &format!("Ablation ({}) — parallel local search scaling", w.spec.name),
            t.to_markdown(),
        ));
    }
    out
}

/// Ablation: refinement pass on top of local search (quality uplift).
pub fn ablate_refine(ctx: &Ctx) -> String {
    let mut out = String::new();
    for w in ctx.workloads() {
        let mut t = Table::new([
            "aggregation",
            "variant",
            "plain r-th value",
            "refined r-th value",
            "uplift",
            "refine cost",
        ]);
        for agg in [Aggregation::Sum, Aggregation::Average] {
            for greedy in [false, true] {
                eprintln!(
                    "[ablate-refine] {} {} greedy={greedy}",
                    w.spec.name,
                    agg.name()
                );
                let config = LocalSearchConfig {
                    k: 4,
                    r: DEFAULT_R,
                    s: DEFAULT_S,
                    greedy,
                };
                let plain = local_search(&w.wg, &config, agg).unwrap_or_default();
                let (tt, refined) = time_once(|| algo::local_search_refined(&w.wg, &config, agg));
                let refined = refined.unwrap_or_default();
                let pv = plain.last().map_or(f64::NEG_INFINITY, |c| c.value);
                let rv = refined.last().map_or(f64::NEG_INFINITY, |c| c.value);
                let uplift = if pv > 0.0 {
                    format!("{:+.1}%", (rv / pv - 1.0) * 100.0)
                } else {
                    "—".into()
                };
                t.row([
                    agg.name().to_string(),
                    if greedy { "greedy" } else { "random" }.to_string(),
                    fmt_value(pv),
                    fmt_value(rv),
                    uplift,
                    fmt_secs(tt),
                ]);
            }
        }
        out.push_str(&section(
            &format!("Ablation ({}) — refinement pass (future work)", w.spec.name),
            t.to_markdown(),
        ));
    }
    out
}

/// Extension report: ICP-style min index build/query vs online peeling,
/// and truss-model community shapes.
pub fn extensions(ctx: &Ctx) -> String {
    use ic_core::algo::MinCommunityIndex;
    let mut out = String::new();
    for w in ctx.workloads() {
        let k = w.spec.default_k.min(w.kmax as usize);
        let mut t = Table::new(["metric", "value"]);
        eprintln!("[extensions] {} k={k}", w.spec.name);
        let (tb, index) = time_once(|| MinCommunityIndex::build(&w.wg, k));
        let (tq, top_idx) = time_median(5, || index.topr(&w.wg, DEFAULT_R).unwrap());
        let (to, top_online) = time_once(|| min_topr(&w.wg, k, DEFAULT_R).unwrap());
        t.row(["communities in index".to_string(), index.len().to_string()]);
        t.row(["index build time".to_string(), fmt_secs(tb)]);
        t.row(["indexed top-5 query".to_string(), fmt_secs(tq)]);
        t.row(["online top-5 peel".to_string(), fmt_secs(to)]);
        t.row([
            "index == online".to_string(),
            (top_idx == top_online).to_string(),
        ]);
        let (tt, truss_top) = time_once(|| algo::truss_min_topr(&w.wg, 4, 1).unwrap());
        let core_top = min_topr(&w.wg, 4, 1).unwrap();
        t.row([
            "k=4 top-1 size (core model)".to_string(),
            core_top.first().map_or(0, |c| c.len()).to_string(),
        ]);
        t.row([
            "k=4 top-1 size (truss model)".to_string(),
            truss_top.first().map_or(0, |c| c.len()).to_string(),
        ]);
        t.row(["truss solver time".to_string(), fmt_secs(tt)]);
        out.push_str(&section(
            &format!("Extensions ({}) — min index & truss model", w.spec.name),
            t.to_markdown(),
        ));
    }
    out
}

/// All experiment ids, in run order.
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "table3",
    "example1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablate-prune",
    "ablate-parallel",
    "ablate-refine",
    "extensions",
];

/// Dispatches an experiment by id.
pub fn run(id: &str, ctx: &Ctx) -> Option<String> {
    let out = match id {
        "table3" => table3(ctx),
        "example1" => example1(ctx),
        "fig2" => fig2(ctx),
        "fig3" => fig3(ctx),
        "fig4" => fig4(ctx),
        "fig5" => fig5(ctx),
        "fig6" => fig6(ctx),
        "fig7" => fig7(ctx),
        "fig8" => fig8(ctx),
        "fig9" => fig9(ctx),
        "fig10" => fig10(ctx),
        "fig11" => fig11(ctx),
        "fig12" => fig12(ctx),
        "fig13" => fig13(ctx),
        "fig14" => fig14(ctx),
        "ablate-prune" => ablate_prune(ctx),
        "ablate-parallel" => ablate_parallel(ctx),
        "ablate-refine" => ablate_refine(ctx),
        "extensions" => extensions(ctx),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        Ctx {
            profile: Profile::Quick,
            datasets: vec!["email".to_string()],
        }
    }

    #[test]
    fn example1_renders() {
        let out = example1(&tiny_ctx());
        assert!(out.contains("sum top-2"));
        assert!(out.contains("203"));
        assert!(out.contains("{v1,v2,v4}"));
    }

    #[test]
    fn fig14_reports_planted_groups() {
        let out = fig14(&tiny_ctx());
        assert!(out.contains("Garcia-Molina"), "{out}");
        assert!(out.contains("min over i10"));
    }

    #[test]
    fn dispatcher_knows_all_ids() {
        for id in ALL_EXPERIMENTS {
            // Don't run the heavy ones here; just check routing for the
            // cheap ones and id validity for the rest.
            if matches!(id, "example1") {
                assert!(run(id, &tiny_ctx()).is_some());
            }
        }
        assert!(run("nope", &tiny_ctx()).is_none());
    }
}
