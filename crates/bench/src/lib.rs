//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (Section VI) on the synthetic dataset analogs.
//!
//! The `experiments` binary is the entry point:
//!
//! ```text
//! cargo run -p ic-bench --release --bin experiments -- all
//! cargo run -p ic-bench --release --bin experiments -- fig2 --datasets email,dblp
//! cargo run -p ic-bench --release --bin experiments -- table3 --profile full
//! ```
//!
//! Each experiment prints a markdown table mirroring the corresponding
//! paper artifact; `EXPERIMENTS.md` records a full run with paper-vs-
//! measured commentary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod runner;
pub mod workloads;
