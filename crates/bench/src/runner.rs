//! Timing utilities for the experiment harness.

use std::time::Instant;

/// Times a single invocation of `f`, returning (seconds, result).
pub fn time_once<T, F: FnOnce() -> T>(f: F) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Times `f` over `runs` invocations and returns the median seconds plus
/// the last result. Used for the fast solvers where run-to-run noise would
/// otherwise dominate.
pub fn time_median<T, F: FnMut() -> T>(runs: usize, mut f: F) -> (f64, T) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (t, out) = time_once(&mut f);
        times.push(t);
        last = Some(out);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("runs >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (t, v) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn median_of_multiple_runs() {
        let mut calls = 0;
        let (t, v) = time_median(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(v, 5);
        assert!(t >= 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_runs_panics() {
        time_median(0, || ());
    }
}
