//! Criterion counterpart of Figs 6–9: Random vs Greedy local search on
//! the size-constrained problem (sum and avg).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ic_bench::workloads::Workload;
use ic_core::algo::{local_search, LocalSearchConfig};
use ic_core::Aggregation;
use ic_gen::datasets::{by_name, Profile};
use std::time::Duration;

fn bench_constrained(c: &mut Criterion, agg: Aggregation, tag: &str) {
    let w = Workload::build(by_name(Profile::Quick, "email").unwrap());
    let mut group = c.benchmark_group(format!("fig6_7_email_{tag}_time_vs_k"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for k in [4usize, 6, 8, 10] {
        for greedy in [false, true] {
            let name = if greedy { "greedy" } else { "random" };
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                let config = LocalSearchConfig {
                    k,
                    r: 5,
                    s: 20,
                    greedy,
                };
                b.iter(|| local_search(&w.wg, &config, agg).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_sum(c: &mut Criterion) {
    bench_constrained(c, Aggregation::Sum, "sum");
}

fn bench_avg(c: &mut Criterion) {
    bench_constrained(c, Aggregation::Average, "avg");
}

criterion_group!(benches, bench_sum, bench_avg);
criterion_main!(benches);
