//! Microbenchmarks for the substrate crates: core decomposition, PageRank,
//! connected components, and the cascade-peel scratch used in the solver
//! hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use ic_centrality::{pagerank, PageRankConfig};
use ic_gen::datasets::{by_name, Profile};
use ic_graph::{connected_components, BitSet};
use ic_kcore::{core_decomposition, maximal_kcore_components, peel_to_kcore_within, PeelScratch};
use std::time::Duration;

fn bench_substrates(c: &mut Criterion) {
    let g = by_name(Profile::Quick, "email").unwrap().generate();
    let mut group = c.benchmark_group("substrates_email");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("core_decomposition", |b| {
        b.iter(|| core_decomposition(&g));
    });
    group.bench_function("kcore_components_k4", |b| {
        b.iter(|| maximal_kcore_components(&g, 4));
    });
    group.bench_function("peel_to_kcore_k4", |b| {
        b.iter(|| {
            let mut mask = BitSet::full(g.num_vertices());
            peel_to_kcore_within(&g, &mut mask, 4);
            mask
        });
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| connected_components(&g));
    });
    group.bench_function("pagerank_d085", |b| {
        b.iter(|| pagerank(&g, &PageRankConfig::default()));
    });
    group.bench_function("cascade_scratch_single_deletion", |b| {
        let comps = maximal_kcore_components(&g, 4);
        let biggest = comps.iter().max_by_key(|c| c.len()).unwrap().clone();
        let victim = biggest[biggest.len() / 2];
        let mut scratch = PeelScratch::new(g.num_vertices());
        b.iter(|| scratch.connected_kcores(&g, &biggest, Some(victim), 4));
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
