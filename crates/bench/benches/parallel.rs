//! Thread-scaling bench for the parallel local search (the paper's
//! future-work direction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ic_bench::workloads::Workload;
use ic_core::algo::{par_local_search, LocalSearchConfig};
use ic_core::Aggregation;
use ic_gen::datasets::{by_name, Profile};
use std::time::Duration;

fn bench_thread_scaling(c: &mut Criterion) {
    let w = Workload::build(by_name(Profile::Quick, "friendster").unwrap());
    let config = LocalSearchConfig {
        k: 4,
        r: 5,
        s: 20,
        greedy: true,
    };
    let mut group = c.benchmark_group("parallel_friendster_local_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| par_local_search(&w.wg, &config, Aggregation::Average, threads).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
