//! Criterion counterpart of Figs 4–5: the Approx solver's insensitivity
//! to ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ic_bench::workloads::Workload;
use ic_core::Aggregation;

// Shared per-graph harnesses (see `ic_bench::harness` for why the
// routed entry points are used).
fn tic_improved(
    wg: &ic_graph::WeightedGraph,
    k: usize,
    r: usize,
    eps: f64,
) -> Vec<ic_core::Community> {
    ic_bench::harness::tic_improved(wg, k, r, Aggregation::Sum, eps).unwrap()
}
use ic_gen::datasets::{by_name, Profile};
use std::time::Duration;

fn bench_fig4_epsilon_sweep(c: &mut Criterion) {
    let w = Workload::build(by_name(Profile::Quick, "email").unwrap());
    let k = w.spec.default_k;
    let mut group = c.benchmark_group("fig4_email_approx_vs_epsilon");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for eps in [0.01f64, 0.05, 0.10, 0.20, 0.50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps_{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| tic_improved(&w.wg, k, 5, eps));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4_epsilon_sweep);
criterion_main!(benches);
