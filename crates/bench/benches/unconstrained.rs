//! Criterion counterpart of Figs 2–3: Naive vs Improve vs Approx on the
//! size-unconstrained sum problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ic_bench::workloads::Workload;
use ic_core::Aggregation;

// Shared per-graph harnesses (see `ic_bench::harness` for why the
// routed entry points are used).
fn tic_improved(
    wg: &ic_graph::WeightedGraph,
    k: usize,
    r: usize,
    eps: f64,
) -> Vec<ic_core::Community> {
    ic_bench::harness::tic_improved(wg, k, r, Aggregation::Sum, eps).unwrap()
}

fn sum_naive(wg: &ic_graph::WeightedGraph, k: usize, r: usize) -> Vec<ic_core::Community> {
    ic_bench::harness::sum_naive(wg, k, r, Aggregation::Sum).unwrap()
}
use ic_gen::datasets::{by_name, Profile};
use std::time::Duration;

fn bench_fig2_k_sweep(c: &mut Criterion) {
    let w = Workload::build(by_name(Profile::Quick, "email").unwrap());
    let mut group = c.benchmark_group("fig2_email_time_vs_k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for k in w.usable_k_grid() {
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| sum_naive(&w.wg, k, 5));
        });
        group.bench_with_input(BenchmarkId::new("improve", k), &k, |b, &k| {
            b.iter(|| tic_improved(&w.wg, k, 5, 0.0));
        });
        group.bench_with_input(BenchmarkId::new("approx_0.1", k), &k, |b, &k| {
            b.iter(|| tic_improved(&w.wg, k, 5, 0.1));
        });
    }
    group.finish();
}

fn bench_fig3_r_sweep(c: &mut Criterion) {
    let w = Workload::build(by_name(Profile::Quick, "email").unwrap());
    let k = w.spec.default_k;
    let mut group = c.benchmark_group("fig3_email_time_vs_r");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for r in [5usize, 10, 15, 20] {
        group.bench_with_input(BenchmarkId::new("naive", r), &r, |b, &r| {
            b.iter(|| sum_naive(&w.wg, k, r));
        });
        group.bench_with_input(BenchmarkId::new("improve", r), &r, |b, &r| {
            b.iter(|| tic_improved(&w.wg, k, r, 0.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_k_sweep, bench_fig3_r_sweep);
criterion_main!(benches);
