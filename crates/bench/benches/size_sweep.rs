//! Criterion counterpart of Figs 10–11: local-search cost as the size
//! bound s grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ic_bench::workloads::Workload;
use ic_core::algo::{local_search, LocalSearchConfig};
use ic_core::Aggregation;
use ic_gen::datasets::{by_name, Profile};
use std::time::Duration;

fn bench_s_sweep(c: &mut Criterion) {
    let w = Workload::build(by_name(Profile::Quick, "email").unwrap());
    for (agg, tag) in [(Aggregation::Sum, "sum"), (Aggregation::Average, "avg")] {
        let mut group = c.benchmark_group(format!("fig10_11_email_{tag}_time_vs_s"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(5));
        for s in [5usize, 10, 15, 20] {
            group.bench_with_input(BenchmarkId::new("greedy", s), &s, |b, &s| {
                let config = LocalSearchConfig {
                    k: 4,
                    r: 5,
                    s,
                    greedy: true,
                };
                b.iter(|| local_search(&w.wg, &config, agg).unwrap());
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_s_sweep);
criterion_main!(benches);
