//! Ablation bench: Algorithm 2's two pruning rules, individually disabled.
//! DESIGN.md calls these out as the design choices that separate Improve
//! from Naive.

use criterion::{criterion_group, criterion_main, Criterion};
use ic_bench::workloads::Workload;
use ic_core::algo::{tic_improved_with_options, ImprovedOptions};
use ic_core::Aggregation;
use ic_gen::datasets::{by_name, Profile};
use std::time::Duration;

fn bench_pruning_ablation(c: &mut Criterion) {
    let w = Workload::build(by_name(Profile::Quick, "email").unwrap());
    let k = w.spec.default_k;
    let mut group = c.benchmark_group("ablation_email_improved_pruning");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    let variants: [(&str, ImprovedOptions); 4] = [
        (
            "full_pruning",
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: true,
                trim_candidates: true,
            },
        ),
        (
            "no_threshold_prune",
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: false,
                trim_candidates: true,
            },
        ),
        (
            "no_candidate_trim",
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: true,
                trim_candidates: false,
            },
        ),
        (
            "no_pruning",
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: false,
                trim_candidates: false,
            },
        ),
    ];
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            b.iter(|| tic_improved_with_options(&w.wg, k, 5, Aggregation::Sum, opts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning_ablation);
criterion_main!(benches);
