//! Shared-ownership slices and read-only memory mappings.
//!
//! This is the one crate in the workspace whose *job* is unsafe code,
//! kept deliberately tiny so it can be audited in one sitting. It
//! exists because serving a million-node ICS1 store means the graph
//! arrays must be able to *borrow* a file mapping instead of being
//! copied into fresh `Vec`s — but `ic-graph` is `forbid(unsafe_code)`
//! and should stay that way. The two exports:
//!
//! * [`SharedSlice<T>`] — an owned-or-borrowed immutable slice: a
//!   `(owner, ptr, len)` triple where `owner` is an `Arc<dyn Any>`
//!   keeping the backing storage (a `Vec`, an [`Mmap`], an aligned
//!   store buffer) alive for as long as any clone of the slice lives.
//!   Cloning is an `Arc` bump; `Deref<Target = [T]>` makes it a
//!   drop-in replacement for `Vec<T>` in read-only data structures.
//! * [`Mmap`] — a minimal read-only, private, whole-file mapping for
//!   unix (`mmap(2)` declared directly; the container vendors no libc
//!   crate, but std already links the platform libc). Non-unix builds
//!   get a typed error and callers fall back to buffered reads.
//!
//! Safety argument for [`SharedSlice`]: the constructor takes the
//! owner *by value*, moves it into an `Arc`, and only then projects a
//! slice out of the heap-pinned value via a HRTB closure — so the
//! pointer it stores refers to memory whose address can no longer
//! change (neither `Vec`'s buffer nor an `Mmap`'s pages move while the
//! `Arc` holds them) and whose lifetime is exactly the `Arc`'s. No
//! `&mut` access to the owner is ever handed out afterwards.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable slice that shares ownership of its backing storage.
///
/// ```
/// use ic_mem::SharedSlice;
/// let s: SharedSlice<u32> = vec![1, 2, 3].into();
/// let t = s.clone(); // Arc bump, no copy
/// assert_eq!(&*s, &[1, 2, 3]);
/// assert_eq!(s, t);
/// ```
pub struct SharedSlice<T> {
    /// Keeps the storage behind `ptr` alive. `Arc<dyn Any>` rather
    /// than a concrete type so one slice type can borrow from a
    /// `Vec`, an mmap, or a whole store buffer without generics
    /// leaking into every downstream signature.
    owner: Arc<dyn Any + Send + Sync>,
    ptr: *const T,
    len: usize,
}

// SAFETY: the slice is immutable and the owner is `Send + Sync`; a
// `SharedSlice<T>` is therefore exactly as thread-safe as `&[T]` plus
// an `Arc`, i.e. `Send + Sync` whenever `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for SharedSlice<T> {}
unsafe impl<T: Send + Sync> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Moves `owner` onto the heap and stores the slice `project`
    /// returns from it. The HRTB bound forces `project` to derive the
    /// slice from the pinned owner itself (it cannot smuggle in a
    /// shorter-lived reference), which is what makes the stored raw
    /// pointer sound for the owner's lifetime.
    pub fn new<O, F>(owner: O, project: F) -> Self
    where
        O: Send + Sync + 'static,
        F: for<'a> FnOnce(&'a O) -> &'a [T],
    {
        let owner: Arc<O> = Arc::new(owner);
        let slice: &[T] = project(&owner);
        let ptr = slice.as_ptr();
        let len = slice.len();
        SharedSlice { owner, ptr, len }
    }

    /// Like [`new`](Self::new), but shares an owner that is *already*
    /// in an `Arc` — several slices (offsets, targets, weights…) can
    /// borrow disjoint windows of one mapping without re-wrapping it.
    pub fn project_arc<O, F>(owner: Arc<O>, project: F) -> Self
    where
        O: Send + Sync + 'static,
        F: for<'a> FnOnce(&'a O) -> &'a [T],
    {
        let slice: &[T] = project(&owner);
        let ptr = slice.as_ptr();
        let len = slice.len();
        SharedSlice { owner, ptr, len }
    }

    /// An empty slice with a trivial owner.
    pub fn empty() -> Self {
        SharedSlice {
            owner: Arc::new(()),
            ptr: std::ptr::NonNull::<T>::dangling().as_ptr(),
            len: 0,
        }
    }

    /// The view as a plain slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr`/`len` were derived from a real slice borrowed
        // out of `owner`, which the `Arc` keeps alive and un-moved.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Whether this slice and `other` share the same backing owner
    /// (used by tests to prove the zero-copy path really borrowed).
    pub fn same_owner(&self, other: &SharedSlice<T>) -> bool {
        Arc::ptr_eq(&self.owner, &other.owner)
    }
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice {
            owner: Arc::clone(&self.owner),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl<T> Deref for SharedSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for SharedSlice<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Send + Sync + 'static> From<Vec<T>> for SharedSlice<T> {
    fn from(vec: Vec<T>) -> Self {
        SharedSlice::new(vec, |v| v.as_slice())
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq> PartialEq for SharedSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for SharedSlice<T> {}

impl<T: std::hash::Hash> std::hash::Hash for SharedSlice<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<'a, T: PartialEq> PartialEq<&'a [T]> for SharedSlice<T> {
    fn eq(&self, other: &&'a [T]) -> bool {
        self.as_slice() == *other
    }
}

/// A read-only, private, whole-file memory mapping.
///
/// The mapping is `MAP_PRIVATE | PROT_READ`: the kernel pages bytes in
/// on demand, writes by other processes after open are not observed
/// in already-resident pages, and unlinking the file while mapped is
/// safe on unix. Page-aligned by the kernel, so the 8-byte alignment
/// the `cast.rs` views demand always holds at offset 0.
pub struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) and private; sharing
// references across threads is no different from sharing `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

/// Why a mapping could not be created.
#[derive(Debug)]
pub enum MapError {
    /// `mmap(2)` (or the metadata query before it) failed.
    Io(std::io::Error),
    /// Zero-length files cannot be mapped; callers should treat the
    /// file as an empty buffer instead.
    Empty,
    /// The target platform has no mmap support compiled in; callers
    /// fall back to buffered reads.
    Unsupported,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "mmap failed: {e}"),
            MapError::Empty => write!(f, "cannot map an empty file"),
            MapError::Unsupported => write!(f, "memory mapping is not supported on this platform"),
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    // std already links the platform libc on unix; declaring the two
    // symbols we need avoids vendoring a libc crate into the offline
    // workspace. Signatures per POSIX with 64-bit off_t (the container
    // is linux x86-64; a 32-bit off_t platform would need
    // mmap64 — gated out by the pointer-width guard in ic-store).
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    #[cfg(unix)]
    pub fn map_readonly(file: &std::fs::File) -> Result<Mmap, MapError> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata().map_err(MapError::Io)?.len();
        if len == 0 {
            return Err(MapError::Empty);
        }
        let len = usize::try_from(len).map_err(|_| {
            MapError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "file exceeds the address space",
            ))
        })?;
        // SAFETY: fd is a valid open file descriptor for `file`, len
        // is non-zero, and we request a fresh private read-only
        // mapping at a kernel-chosen address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(MapError::Io(std::io::Error::last_os_error()));
        }
        Ok(Mmap { ptr, len })
    }

    /// Maps `file` read-only in its entirety (unsupported platform).
    #[cfg(not(unix))]
    pub fn map_readonly(_file: &std::fs::File) -> Result<Mmap, MapError> {
        Err(MapError::Unsupported)
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until `munmap` in Drop.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live mapping).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: `ptr`/`len` describe a mapping we own; unmapping it
        // exactly once in Drop is the contract of mmap/munmap.
        unsafe {
            let _ = sys::munmap(self.ptr, self.len);
        }
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_slice_from_vec_roundtrips() {
        let s: SharedSlice<u64> = vec![3, 1, 4, 1, 5].into();
        assert_eq!(&*s, &[3, 1, 4, 1, 5]);
        assert_eq!(s.len(), 5);
        let t = s.clone();
        assert!(s.same_owner(&t));
        assert_eq!(s, t);
    }

    #[test]
    fn shared_slice_projects_windows_of_one_owner() {
        let owner = Arc::new(vec![0u32, 1, 2, 3, 4, 5]);
        let lo = SharedSlice::project_arc(Arc::clone(&owner), |v| &v[..3]);
        let hi = SharedSlice::project_arc(owner, |v| &v[3..]);
        assert_eq!(&*lo, &[0, 1, 2]);
        assert_eq!(&*hi, &[3, 4, 5]);
        assert!(lo.same_owner(&hi));
    }

    #[test]
    fn shared_slice_survives_source_drop() {
        let s = {
            let v = vec![9u8; 1024];
            SharedSlice::from(v)
        };
        assert!(s.iter().all(|&b| b == 9));
    }

    #[test]
    fn empty_slice_works() {
        let s: SharedSlice<f64> = SharedSlice::empty();
        assert!(s.is_empty());
        assert_eq!(&*s, &[] as &[f64]);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_reads_file_contents() {
        let path = std::env::temp_dir().join(format!("ic-mem-test-{}", std::process::id()));
        std::fs::write(&path, b"hello mapping").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Mmap::map_readonly(&file).unwrap();
        assert_eq!(map.as_bytes(), b"hello mapping");
        // Unlinking while mapped is safe on unix; the pages stay valid.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map.as_bytes(), b"hello mapping");
    }

    #[cfg(unix)]
    #[test]
    fn mmap_rejects_empty_file() {
        let path = std::env::temp_dir().join(format!("ic-mem-empty-{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        match Mmap::map_readonly(&file) {
            Err(MapError::Empty) => {}
            other => panic!("expected MapError::Empty, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_backs_shared_slices() {
        let path = std::env::temp_dir().join(format!("ic-mem-slice-{}", std::process::id()));
        let words: Vec<u64> = (0..64u64).collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        std::fs::write(&path, &bytes).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Arc::new(Mmap::map_readonly(&file).unwrap());
        std::fs::remove_file(&path).unwrap();
        let view = SharedSlice::project_arc(map, |m| {
            let b = m.as_bytes();
            // Page alignment guarantees this cast is sound; real
            // callers go through the checked cast.rs views.
            unsafe { std::slice::from_raw_parts(b.as_ptr() as *const u64, b.len() / 8) }
        });
        assert_eq!(view.len(), 64);
        assert!(view.iter().enumerate().all(|(i, &w)| w == i as u64));
    }
}
