//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim provides the
//! subset of the proptest 1.x API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`strategy::Just`], [`collection::vec`],
//! [`prelude::any`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` cases with
//! a deterministic per-test seed (FNV of the test name mixed with the case
//! index and the session seed), so failures are reproducible run-to-run.
//! There is **no shrinking** — a failing case panics immediately with its
//! case number, session seed, and assertion message.
//!
//! **Session seed:** set `IC_PROPTEST_SEED=<u64>` to re-seed every
//! strategy (default 0). CI runs the suite once under the fixed default
//! and once under a randomized seed, so the generators explore fresh
//! inputs every run while any failure stays reproducible by exporting
//! the printed seed. On failure the shim also appends a reproduction
//! record (test name, case, seed, message) to
//! `$IC_PROPTEST_REGRESSIONS/<test>.txt` (default
//! `target/proptest-regressions/`), which CI uploads as an artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: configuration, errors, and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// A failed property assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator driving every strategy (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The session seed mixed into every generated case: the value of
    /// `IC_PROPTEST_SEED` (a `u64`), or 0 when unset/unparsable. Read
    /// once per process.
    pub fn env_seed() -> u64 {
        static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        *SEED.get_or_init(|| {
            std::env::var("IC_PROPTEST_SEED")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0)
        })
    }

    /// Appends a reproduction record for a failed property case to
    /// `$IC_PROPTEST_REGRESSIONS/<test>.txt` (default
    /// `target/proptest-regressions/`). Failures never abort on I/O
    /// problems — the panic that follows carries the same information.
    pub fn record_failure(test: &str, case: u64, message: &str) {
        use std::io::Write as _;
        let dir = std::env::var("IC_PROPTEST_REGRESSIONS")
            .unwrap_or_else(|_| "target/proptest-regressions".to_string());
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = std::path::Path::new(&dir).join(format!("{test}.txt"));
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "IC_PROPTEST_SEED={} case={case}\n{message}\n---",
                env_seed()
            );
        }
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`, mixed with the
        /// session seed ([`env_seed`]).
        pub fn for_case(name: &str, case: u64) -> Self {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = OFFSET;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            let mut sm = h
                ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d)
                ^ env_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128).wrapping_mul(bound as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its built-in
/// implementations.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + rng.unit_f64() * (self.end - self.start);
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Uniform choice between boxed strategies (used by `prop_oneof!`).
    pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Boxes a strategy for [`OneOf`] (type-inference helper for the
    /// `prop_oneof!` macro).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Full-domain strategy for types supporting [`any`](crate::prelude::any).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyValue<T>(std::marker::PhantomData<T>);

    impl<T> AnyValue<T> {
        /// Creates the strategy.
        pub fn new() -> Self {
            AnyValue(std::marker::PhantomData)
        }
    }

    impl Strategy for AnyValue<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for AnyValue<u8> {
        type Value = u8;
        fn generate(&self, rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Strategy for AnyValue<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Strategy for AnyValue<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length domain for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy, R: Into<SizeRange>>(element: S, size: R) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{AnyValue, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Strategy over the full domain of `T` (`bool` and small ints here).
    pub fn any<T>() -> AnyValue<T>
    where
        AnyValue<T>: Strategy<Value = T>,
    {
        AnyValue::new()
    }
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), left, right
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), left, right
                ),
            ));
        }
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares deterministic property tests (no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &$strat,
                        &mut __proptest_rng,
                    );
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    $crate::test_runner::record_failure(
                        stringify!($name),
                        case,
                        &e.to_string(),
                    );
                    panic!(
                        "property {} failed at case {} (IC_PROPTEST_SEED={}):\n{}",
                        stringify!($name),
                        case,
                        $crate::test_runner::env_seed(),
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_sum() -> impl Strategy<Value = (u32, Vec<u32>)> {
        (1u32..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n, 0..8usize)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn flat_map_respects_dependency((n, xs) in small_sum()) {
            for &x in &xs {
                prop_assert!(x < n, "x = {} n = {}", x, n);
            }
            prop_assert!(xs.len() < 8);
        }

        #[test]
        fn oneof_and_any(choice in prop_oneof![Just(1u32), Just(5u32)], b in any::<bool>()) {
            prop_assert!(choice == 1 || choice == 5);
            prop_assert_eq!(b, b);
            prop_assert_ne!(choice, 0u32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    fn helper(ok: bool) -> Result<(), TestCaseError> {
        prop_assert!(ok, "helper saw false");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn question_mark_propagates(_x in 0u32..4) {
            helper(true)?;
            prop_assert!(helper(false).is_err());
        }
    }
}
