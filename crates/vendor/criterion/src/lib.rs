//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. It performs a
//! real (if simple) measurement — warm-up, then a median over timed
//! batches — and prints one line per benchmark:
//!
//! ```text
//! bench fig2_email_time_vs_k/naive/4 ... median 1.234 ms (11 samples)
//! ```
//!
//! Environment knobs: `CRITERION_SHIM_SAMPLES` overrides the per-bench
//! sample count (default: the group's `sample_size`, capped at 15);
//! `CRITERION_SHIM_MAX_SECS` caps wall-clock per benchmark (default 5s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    max_total: Duration,
    timings: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`: one warm-up call, then up to `samples` timed calls
    /// (bounded by the wall-clock cap).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
            if started.elapsed() > self.max_total {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    max_total: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (the shim caps it at 15).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim keeps its own wall-clock
    /// cap instead of a target measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let samples = std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| self.sample_size.min(15))
            .max(1);
        let max_total = std::env::var("CRITERION_SHIM_MAX_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Duration::from_secs_f64)
            .unwrap_or(self.max_total);
        let mut timings: Vec<Duration> = Vec::with_capacity(samples);
        let mut bencher = Bencher {
            samples,
            max_total,
            timings: &mut timings,
        };
        f(&mut bencher);
        timings.sort_unstable();
        let median = timings
            .get(timings.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "bench {}/{} ... median {} ({} samples)",
            self.name,
            id,
            fmt_duration(median),
            timings.len()
        );
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().id, f);
        self
    }

    /// Registers and immediately runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            max_total: Duration::from_secs(5),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group("crate").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("shim_test");
            g.sample_size(3).measurement_time(Duration::from_millis(10));
            g.bench_function("noop", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran >= 1, "warm-up plus samples must run the closure");
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("eps_0.1").id, "eps_0.1");
    }
}
