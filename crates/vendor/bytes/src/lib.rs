//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so this shim provides the
//! subset of the bytes 1.x API the workspace's binary graph format uses:
//! [`BytesMut`] with little-endian put methods, [`Bytes`] as a frozen
//! buffer, and the [`Buf`] reader trait for `&[u8]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// Immutable byte buffer (a thin wrapper over `Vec<u8>` in this shim).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Growable byte buffer with little-endian append helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no byte has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

/// Sequential read operations (subset of `bytes::Buf`). Panics on
/// underflow, matching upstream behaviour.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"ICG1");
        buf.put_u64_le(7);
        buf.put_u32_le(42);
        buf.put_f64_le(2.5);
        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"ICG1");
        assert_eq!(data.get_u64_le(), 7);
        assert_eq!(data.get_u32_le(), 42);
        assert_eq!(data.get_f64_le(), 2.5);
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut data: &[u8] = &[1, 2];
        let _ = data.get_u32_le();
    }
}
