//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this shim provides the
//! exact subset of the rand 0.8 API the workspace uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! synthetic-graph generation and sampling tests. It is NOT a
//! cryptographic generator and makes no attempt to reproduce upstream
//! rand's value streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Conversion of raw generator output into a sample of `Self`.
pub trait SampleValue: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range (or other domain) values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift bounded sampling (Lemire); the bias for
                // spans far below 2^64 is immaterial here.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}
int_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_from(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over its natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded with
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let f = rng.gen_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).unsigned_abs() < 800, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!([1, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
