use crate::GraphSeed;
use ic_graph::{Graph, GraphBuilder};
use rand::{Rng, SeedableRng};

/// Barabási–Albert preferential attachment.
///
/// Starts from a clique on `m + 1` vertices; every subsequent vertex
/// attaches `m` edges to existing vertices chosen proportionally to their
/// current degree (implemented with the repeated-endpoints list, the
/// standard O(m·n) construction). Produces power-law degree distributions
/// with exponent ≈ 3.
pub fn barabasi_albert(n: usize, m: usize, seed: GraphSeed) -> Graph {
    assert!(m >= 1, "m must be at least 1");
    let mut b = GraphBuilder::with_capacity(n * m);
    b.reserve_vertices(n);
    if n == 0 {
        return b.build();
    }
    let seed_size = (m + 1).min(n);
    // Endpoint multiset: each vertex appears once per incident edge.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    for u in 0..seed_size as u32 {
        for v in (u + 1)..seed_size as u32 {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    let mut chosen: Vec<u32> = Vec::with_capacity(m);
    for v in seed_size..n {
        chosen.clear();
        // Sample m distinct targets preferentially by degree.
        let mut guard = 0usize;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as u32, t);
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_construction() {
        let (n, m) = (500, 3);
        let g = barabasi_albert(n, m, GraphSeed(21));
        let seed_edges = (m + 1) * m / 2;
        assert_eq!(g.num_edges(), seed_edges + (n - m - 1) * m);
        assert_eq!(g.num_vertices(), n);
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 2, GraphSeed(22));
        for v in g.vertices() {
            assert!(g.degree(v) >= 2, "vertex {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn early_vertices_become_hubs() {
        let g = barabasi_albert(2000, 2, GraphSeed(23));
        let early_avg: f64 = (0..10).map(|v| g.degree(v) as f64).sum::<f64>() / 10.0;
        let late_avg: f64 = (1900..2000).map(|v| g.degree(v) as f64).sum::<f64>() / 100.0;
        assert!(
            early_avg > 4.0 * late_avg,
            "early {early_avg} late {late_avg}"
        );
    }

    #[test]
    fn connected_by_construction() {
        let g = barabasi_albert(200, 1, GraphSeed(24));
        assert!(ic_graph::is_connected(&g));
    }

    #[test]
    fn tiny_n_smaller_than_seed_clique() {
        let g = barabasi_albert(2, 3, GraphSeed(25));
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            barabasi_albert(100, 2, GraphSeed(7)),
            barabasi_albert(100, 2, GraphSeed(7))
        );
    }
}
