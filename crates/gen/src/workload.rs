//! Mixed multi-query traffic generation for the batched engine.
//!
//! A serving system does not see a uniform stream of novel queries: real
//! traffic is dominated by a small set of popular parameter combinations
//! (dashboards refreshing the same top-10, product surfaces pinned to a
//! handful of `k` values), with a long tail of bespoke queries. This
//! module synthesizes that shape: a template population spanning the
//! requested `k` grid, `r` grid, aggregations, and constraint mix is
//! ranked by a Zipf popularity law, and queries are drawn from it.
//!
//! The output is plain data ([`QuerySpec`]) rather than `ic-engine`
//! query values — `ic-gen` sits below the solver crates in the
//! dependency order, so the engine (or the benchmark harness) maps specs
//! onto its own query type.

use crate::GraphSeed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aggregation selector of a generated query (plain data; the harness
/// maps it onto `ic_core::Aggregation`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixAggregation {
    /// `min` — node-domination peel.
    Min,
    /// `max` — node-domination peel.
    Max,
    /// `sum` — removal-decreasing, Algorithm 2.
    Sum,
    /// `sum + α·|H|` — removal-decreasing, Algorithm 2.
    SumSurplus,
    /// `avg` — NP-hard unconstrained; generated with a size bound.
    Average,
    /// Sum of the `t` largest member weights (the top-L model, Zhang et
    /// al. arXiv:2311.13162) — no strict-decrease certificate;
    /// generated with a size bound. `t` rides in [`QuerySpec::t`].
    TopTSum,
    /// Nearest-rank p-quantile — node-dominated but not peelable;
    /// generated with a size bound. `p` rides in [`QuerySpec::p`].
    Percentile,
    /// Geometric mean — avg-like NP-hard; generated with a size bound.
    GeometricMean,
}

/// One generated query (plain data).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuerySpec {
    /// Degree constraint.
    pub k: usize,
    /// Result count.
    pub r: usize,
    /// Aggregation function.
    pub aggregation: MixAggregation,
    /// `α` for [`MixAggregation::SumSurplus`] (0.0 otherwise).
    pub alpha: f64,
    /// `t` for [`MixAggregation::TopTSum`] (0 otherwise).
    pub t: usize,
    /// `p` for [`MixAggregation::Percentile`] (0.0 otherwise).
    pub p: f64,
    /// Approximation ε (non-zero only for sum-like aggregations).
    pub epsilon: f64,
    /// Size bound routing the query through local search, if any.
    pub size_bound: Option<usize>,
    /// Greedy vs random local-search pools (meaningful with a bound).
    pub greedy: bool,
}

/// Shape of the synthesized traffic.
#[derive(Clone, Debug)]
pub struct TrafficProfile {
    /// `k` values in rotation (e.g. the dataset's experiment grid).
    pub k_values: Vec<usize>,
    /// `r` values in rotation (paper sweep: 5, 10, 15, 20).
    pub r_values: Vec<usize>,
    /// Zipf exponent of the popularity law (≈ 1 for web-like traffic;
    /// 0 makes every template equally likely).
    pub zipf_exponent: f64,
    /// Fraction of templates that carry a size bound (local search).
    pub constrained_share: f64,
    /// Size bound used by constrained templates.
    pub size_bound: usize,
    /// ε used by the approximate sum templates.
    pub epsilon: f64,
    /// Popularity multiplier for the classic node-domination templates
    /// (`min`, and half of it for `max`). The min-influential query is
    /// the production query of the serving systems this traffic models
    /// (Li et al. VLDB'15, Bi et al. VLDB'18); aggregation extensions
    /// are the tail. 1.0 = all templates on equal footing.
    pub classic_boost: f64,
}

impl TrafficProfile {
    /// The profile used by the paper-aligned benchmarks: the dataset's
    /// `k` grid, the paper's `r` sweep, web-like Zipf popularity, and a
    /// quarter of traffic size-constrained (s = 20, the paper default).
    pub fn paper_defaults(k_values: &[usize]) -> Self {
        TrafficProfile {
            k_values: k_values.to_vec(),
            r_values: vec![5, 10, 15, 20],
            zipf_exponent: 1.1,
            constrained_share: 0.25,
            size_bound: 20,
            epsilon: 0.1,
            classic_boost: 4.0,
        }
    }
}

/// Deterministically synthesizes `count` queries under `profile`.
///
/// Templates are the cross product of the profile's `k`/`r` grids with
/// an aggregation rotation (`min`, `max`, exact `sum`, approximate
/// `sum`, `sum-surplus`, plus size-bounded `avg`/`sum` templates for the
/// constrained share), shuffled into a popularity ranking and sampled by
/// a Zipf law — so the generated batch naturally contains duplicates and
/// `r`-families of the same `(k, aggregation)`, exactly the redundancy a
/// batched engine exists to exploit.
pub fn mixed_query_traffic(
    count: usize,
    profile: &TrafficProfile,
    seed: GraphSeed,
) -> Vec<QuerySpec> {
    assert!(
        !profile.k_values.is_empty() && !profile.r_values.is_empty(),
        "traffic profile needs at least one k and one r"
    );
    let mut rng = StdRng::seed_from_u64(seed.0 ^ 0x7261_6666_6963_2131);

    // Template population over the parameter grids, each with a base
    // popularity (the classic node-domination queries dominate).
    let mut templates: Vec<(QuerySpec, f64)> = Vec::new();
    for (ki, &k) in profile.k_values.iter().enumerate() {
        for (ri, &r) in profile.r_values.iter().enumerate() {
            let constrained = {
                // Deterministic striping of the constrained share,
                // spread diagonally so every k (and every r) hosts some
                // constrained cells (index-based, so the template set is
                // stable under resampling).
                let period = (1.0 / profile.constrained_share.clamp(0.01, 1.0)).round() as usize;
                (ki + ri) % period == 0
            };
            if constrained {
                // Constrained traffic uses the greedy strategy
                // throughout: the paper's effectiveness experiments
                // (Figs 12-13) show greedy dominating random, so that is
                // what a serving surface deploys.
                let s = profile.size_bound.max(k + 1);
                for agg in [
                    MixAggregation::Average,
                    MixAggregation::Sum,
                    MixAggregation::Min,
                ] {
                    templates.push((
                        QuerySpec {
                            k,
                            r,
                            aggregation: agg,
                            alpha: 0.0,
                            t: 0,
                            p: 0.0,
                            epsilon: 0.0,
                            size_bound: Some(s),
                            greedy: true,
                        },
                        1.0,
                    ));
                }
                // The widened aggregation vocabulary (PR 4): top-t-sum,
                // percentile, and geometric-mean queries arrive on the
                // constrained cells at half the base popularity —
                // extension traffic, present in every batch mix but
                // below the paper's core aggregations.
                for (agg, t, p) in [
                    (MixAggregation::TopTSum, 3usize, 0.0),
                    (MixAggregation::Percentile, 0, 0.9),
                    (MixAggregation::GeometricMean, 0, 0.0),
                ] {
                    templates.push((
                        QuerySpec {
                            k,
                            r,
                            aggregation: agg,
                            alpha: 0.0,
                            t,
                            p,
                            epsilon: 0.0,
                            size_bound: Some(s),
                            greedy: true,
                        },
                        0.5,
                    ));
                }
            }
            for (agg, base) in [
                (MixAggregation::Min, profile.classic_boost),
                (MixAggregation::Max, profile.classic_boost / 2.0),
                (MixAggregation::Sum, 1.0),
            ] {
                templates.push((
                    QuerySpec {
                        k,
                        r,
                        aggregation: agg,
                        alpha: 0.0,
                        t: 0,
                        p: 0.0,
                        epsilon: 0.0,
                        size_bound: None,
                        greedy: true,
                    },
                    base,
                ));
            }
            // Aggregation extensions (approximate sum, sum-surplus) are
            // the research tail of serving traffic, well below the
            // classic and plain-sum queries product surfaces issue, and
            // they arrive at the default result count only (the paper's
            // own setup for these variants), not across the r sweep.
            if ri == 0 {
                templates.push((
                    QuerySpec {
                        k,
                        r,
                        aggregation: MixAggregation::Sum,
                        alpha: 0.0,
                        t: 0,
                        p: 0.0,
                        epsilon: profile.epsilon,
                        size_bound: None,
                        greedy: true,
                    },
                    0.3,
                ));
                templates.push((
                    QuerySpec {
                        k,
                        r,
                        aggregation: MixAggregation::SumSurplus,
                        alpha: 0.5,
                        t: 0,
                        p: 0.0,
                        epsilon: 0.0,
                        size_bound: None,
                        greedy: true,
                    },
                    0.3,
                ));
            }
        }
    }

    // Random popularity ranking (popularity and solver cost are
    // independent in real traffic — which parameter point a product
    // surface hammers has nothing to do with how hard it is to solve),
    // then base-scaled Zipf weights over the ranks.
    use rand::seq::SliceRandom;
    templates.shuffle(&mut rng);
    let weights: Vec<f64> = templates
        .iter()
        .enumerate()
        .map(|(rank, &(_, base))| base / ((rank + 1) as f64).powf(profile.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();

    (0..count)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            let mut pick = templates.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                if x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            templates[pick].0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> TrafficProfile {
        TrafficProfile::paper_defaults(&[4, 6, 8, 10])
    }

    #[test]
    fn traffic_is_deterministic_per_seed() {
        let a = mixed_query_traffic(64, &profile(), GraphSeed(7));
        let b = mixed_query_traffic(64, &profile(), GraphSeed(7));
        assert_eq!(a, b);
        let c = mixed_query_traffic(64, &profile(), GraphSeed(8));
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn traffic_spans_grids_and_contains_duplicates() {
        let batch = mixed_query_traffic(64, &profile(), GraphSeed(2022));
        assert_eq!(batch.len(), 64);
        // Queries stay on the profile grids.
        for q in &batch {
            assert!(profile().k_values.contains(&q.k));
            assert!(profile().r_values.contains(&q.r));
            if let Some(s) = q.size_bound {
                assert!(s > q.k);
            }
        }
        // Zipf traffic repeats popular templates.
        let mut seen: Vec<&QuerySpec> = Vec::new();
        let mut dupes = 0usize;
        for q in &batch {
            if seen.contains(&q) {
                dupes += 1;
            } else {
                seen.push(q);
            }
        }
        assert!(dupes >= 8, "expected duplicate-heavy traffic, got {dupes}");
        // Multiple distinct k groups appear.
        let mut ks: Vec<usize> = batch.iter().map(|q| q.k).collect();
        ks.sort_unstable();
        ks.dedup();
        assert!(ks.len() >= 2, "shared-k groups require several k values");
    }

    #[test]
    fn constrained_share_materializes() {
        let batch = mixed_query_traffic(256, &profile(), GraphSeed(11));
        let constrained = batch.iter().filter(|q| q.size_bound.is_some()).count();
        assert!(constrained > 0, "some constrained traffic expected");
    }

    #[test]
    fn widened_aggregation_vocabulary_appears_in_traffic() {
        // Flat popularity (zipf 0) so every template class materializes
        // in a modest sample.
        let mut flat = profile();
        flat.zipf_exponent = 0.0;
        let batch = mixed_query_traffic(512, &flat, GraphSeed(3));
        for agg in [
            MixAggregation::TopTSum,
            MixAggregation::Percentile,
            MixAggregation::GeometricMean,
        ] {
            assert!(
                batch.iter().any(|q| q.aggregation == agg),
                "{agg:?} missing from the mix"
            );
        }
        // Parameters ride with the spec and the new queries always
        // carry the size bound their (no-polynomial-certificate) route
        // requires.
        for q in &batch {
            match q.aggregation {
                MixAggregation::TopTSum => {
                    assert!(q.t >= 1 && q.size_bound.is_some());
                }
                MixAggregation::Percentile => {
                    assert!((0.0..=1.0).contains(&q.p) && q.size_bound.is_some());
                }
                MixAggregation::GeometricMean => assert!(q.size_bound.is_some()),
                _ => {}
            }
        }
    }
}
