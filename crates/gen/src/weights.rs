use crate::GraphSeed;
use ic_centrality::{pagerank, PageRankConfig};
use ic_graph::Graph;
use rand::{Rng, SeedableRng};

/// Uniform random weights in `[lo, hi)`.
pub fn uniform_weights(n: usize, lo: f64, hi: f64, seed: GraphSeed) -> Vec<f64> {
    assert!(lo >= 0.0 && hi > lo, "need 0 <= lo < hi");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Pareto (heavy-tailed) weights with shape `alpha` and scale 1:
/// `w = u^(−1/α)` for uniform `u`. Models citation-count-like influence
/// values where a few vertices dominate.
pub fn pareto_weights(n: usize, alpha: f64, seed: GraphSeed) -> Vec<f64> {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            u.powf(-1.0 / alpha)
        })
        .collect()
}

/// Rank-based weights: a random permutation of `1..=n` (as f64). Every
/// vertex gets a distinct weight — handy for algorithms whose tie-breaking
/// behaviour should not be exercised by accident.
pub fn rank_weights(n: usize, seed: GraphSeed) -> Vec<f64> {
    use rand::seq::SliceRandom;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    let mut w: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    w.shuffle(&mut rng);
    w
}

/// PageRank weights with damping 0.85 — exactly the influence values the
/// paper's experiments use (Section VI: "the weight of vertices is the
/// PageRank value of vertices with the damping factor being set as 0.85").
pub fn pagerank_weights(g: &Graph) -> Vec<f64> {
    pagerank(g, &PageRankConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_graph::graph_from_edges;

    #[test]
    fn uniform_bounds_hold() {
        let w = uniform_weights(1000, 2.0, 5.0, GraphSeed(1));
        assert_eq!(w.len(), 1000);
        assert!(w.iter().all(|&x| (2.0..5.0).contains(&x)));
    }

    #[test]
    fn pareto_is_heavy_tailed_and_positive() {
        let w = pareto_weights(10_000, 1.5, GraphSeed(2));
        assert!(w.iter().all(|&x| x >= 1.0));
        let max = w.iter().cloned().fold(0.0, f64::max);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!(max > 10.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn rank_weights_are_a_permutation() {
        let mut w = rank_weights(100, GraphSeed(3));
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(w, expect);
    }

    #[test]
    fn pagerank_weights_are_valid_influence_values() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let w = pagerank_weights(&g);
        assert_eq!(w.len(), 5);
        assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
        // Usable by WeightedGraph (non-negative, finite).
        ic_graph::WeightedGraph::new(g, w).unwrap();
    }

    #[test]
    fn all_deterministic() {
        assert_eq!(
            uniform_weights(50, 0.0, 1.0, GraphSeed(7)),
            uniform_weights(50, 0.0, 1.0, GraphSeed(7))
        );
        assert_eq!(
            pareto_weights(50, 2.0, GraphSeed(7)),
            pareto_weights(50, 2.0, GraphSeed(7))
        );
        assert_eq!(
            rank_weights(50, GraphSeed(7)),
            rank_weights(50, GraphSeed(7))
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn pareto_rejects_bad_alpha() {
        pareto_weights(10, 0.0, GraphSeed(0));
    }
}
