//! Synthetic graph and weight generators.
//!
//! The paper evaluates on six SNAP graphs (Email, DBLP, Youtube, Orkut,
//! LiveJournal, FriendSter) and an Aminer co-authorship network. Those
//! downloads are unavailable offline, so this crate builds seeded synthetic
//! analogs that preserve the *mechanisms* the paper's experiments measure:
//! heavy-tailed degree distributions (which drive k-core sizes and
//! algorithm trends), community structure, and PageRank-derived influence
//! values. See `DESIGN.md` §3 for the substitution rationale.
//!
//! Everything is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use ic_gen::{chung_lu, GraphSeed};
//!
//! let g = chung_lu(1000, 3000, 2.5, GraphSeed(7));
//! assert_eq!(g.num_vertices(), 1000);
//! // Edge count is close to (slightly under, due to collisions) the target.
//! assert!(g.num_edges() > 2000 && g.num_edges() <= 3000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aminer;
mod ba;
mod chunglu;
pub mod datasets;
mod er;
mod planted;
mod sampling;
pub mod stream;
mod weights;
pub mod workload;

pub use aminer::{aminer_network, AminerNetwork, PlantedGroup};
pub use ba::barabasi_albert;
pub use chunglu::chung_lu;
pub use er::{gnm, gnp};
pub use planted::{planted_partition, PlantedPartitionConfig};
pub use sampling::AliasTable;
pub use stream::{stream_graph, StreamSpec};
pub use weights::{pagerank_weights, pareto_weights, rank_weights, uniform_weights};
pub use workload::{mixed_query_traffic, MixAggregation, QuerySpec, TrafficProfile};

/// Newtype for generator seeds, to keep call sites self-documenting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphSeed(pub u64);
