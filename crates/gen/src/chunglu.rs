use crate::{AliasTable, GraphSeed};
use ic_graph::{Graph, GraphBuilder};
use rand::SeedableRng;

/// Chung-Lu power-law random graph.
///
/// Vertices get expected-degree weights `w_i ∝ (i + i₀)^(−1/(γ−1))` — the
/// standard construction whose degree distribution follows a power law with
/// exponent `γ` (the paper's Definition 9 assumes `2 < γ < 3` for real
/// networks). `target_m` edge slots are drawn by sampling both endpoints
/// from the weight distribution; self-loops and duplicates are discarded,
/// so the realized edge count is slightly below the target (as in the
/// standard implementation).
///
/// This is the workhorse generating the analogs of the paper's SNAP
/// datasets: it reproduces the heavy-tailed structure that determines
/// k-core sizes, which is what drives every efficiency trend in Figs 2–11.
pub fn chung_lu(n: usize, target_m: usize, gamma: f64, seed: GraphSeed) -> Graph {
    assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
    if n == 0 {
        return Graph::empty(0);
    }
    let exponent = -1.0 / (gamma - 1.0);
    // Small offset avoids a degenerate first weight while keeping the head
    // of the distribution genuinely heavy.
    let i0 = 10.0;
    let weights: Vec<f64> = (0..n)
        .map(|i| ((i as f64 + i0) / i0).powf(exponent))
        .collect();
    let table = AliasTable::new(&weights);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    let mut b = GraphBuilder::with_capacity(target_m);
    b.reserve_vertices(n);
    for _ in 0..target_m {
        let u = table.sample(&mut rng);
        let v = table.sample(&mut rng);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_graph::stats::estimate_power_law_exponent;

    #[test]
    fn respects_vertex_count_and_rough_edge_target() {
        let g = chung_lu(2000, 8000, 2.5, GraphSeed(11));
        assert_eq!(g.num_vertices(), 2000);
        assert!(g.num_edges() <= 8000);
        assert!(
            g.num_edges() > 6000,
            "too many collisions: {}",
            g.num_edges()
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = chung_lu(5000, 20000, 2.3, GraphSeed(12));
        // Low-id vertices carry much higher degree than the tail.
        let head_avg: f64 = (0..50).map(|v| g.degree(v) as f64).sum::<f64>() / 50.0;
        let tail_avg: f64 = (4000..4999).map(|v| g.degree(v) as f64).sum::<f64>() / 999.0;
        assert!(
            head_avg > 5.0 * tail_avg.max(0.5),
            "head {head_avg} tail {tail_avg}"
        );
        // Hill estimator lands in the heavy-tailed regime.
        let gamma = estimate_power_law_exponent(&g, 5).unwrap();
        assert!(gamma > 1.5 && gamma < 4.5, "estimated gamma {gamma}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = chung_lu(500, 1500, 2.5, GraphSeed(5));
        let b = chung_lu(500, 1500, 2.5, GraphSeed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny() {
        let g = chung_lu(0, 100, 2.5, GraphSeed(1));
        assert_eq!(g.num_vertices(), 0);
        let g = chung_lu(1, 100, 2.5, GraphSeed(1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        chung_lu(10, 10, 0.5, GraphSeed(0));
    }
}
