//! Streaming multi-million-node graph generation with bounded memory.
//!
//! The builder-based generators ([`crate::chung_lu`],
//! [`crate::barabasi_albert`]) materialize an edge *list* and hand it to
//! `GraphBuilder`, which sorts and mirrors it — fine at 10⁴–10⁵ nodes,
//! wasteful at 10⁶+: the tuple list, its mirror, and the sort scratch
//! all coexist with the final CSR.
//!
//! [`stream_graph`] instead makes **two deterministic passes** over the
//! same seeded edge emission: pass 1 counts degrees, pass 2 scatters
//! targets straight into their CSR slots; per-vertex adjacency sort +
//! in-place dedup finishes the canonical form. Peak memory is the CSR
//! itself plus an `O(n)` degree array — the `(u, v)` tuple list is
//! never held. Emission is a pure function of the [`StreamSpec`], so
//! both passes see identical edges.

use crate::{AliasTable, GraphSeed};
use ic_graph::Graph;
use rand::{Rng, SeedableRng};

/// A deterministic edge-stream recipe: everything needed to replay the
/// same emission twice (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamSpec {
    /// Chung-Lu power-law graph: `target_m` endpoint-pair draws from a
    /// `gamma` power-law weight distribution (self-loops skipped at
    /// emission, duplicate pairs deduped during CSR construction), as
    /// in [`crate::chung_lu`].
    ChungLu {
        /// Vertices.
        n: usize,
        /// Edge slots drawn (realized edges land slightly below).
        target_m: usize,
        /// Power-law exponent (`> 1`; real networks: `2 < γ < 3`).
        gamma: f64,
        /// Generator seed.
        seed: GraphSeed,
    },
    /// Barabási–Albert preferential attachment with `m` edges per new
    /// vertex, as in [`crate::barabasi_albert`]. Emits no duplicate
    /// pairs by construction; the endpoint multiset it samples from is
    /// rebuilt per pass (`2·m·n` u32s — part of the generator, not an
    /// edge list).
    BarabasiAlbert {
        /// Vertices.
        n: usize,
        /// Edges attached per new vertex (`>= 1`).
        m: usize,
        /// Generator seed.
        seed: GraphSeed,
    },
    /// Erdős–Rényi G(n, m): `target_m` uniform pair draws (self-loops
    /// skipped, duplicates deduped), the streaming analog of
    /// [`crate::gnm`].
    Gnm {
        /// Vertices.
        n: usize,
        /// Edge slots drawn.
        target_m: usize,
        /// Generator seed.
        seed: GraphSeed,
    },
}

impl StreamSpec {
    /// The vertex count the emission addresses.
    pub fn num_vertices(&self) -> usize {
        match *self {
            StreamSpec::ChungLu { n, .. }
            | StreamSpec::BarabasiAlbert { n, .. }
            | StreamSpec::Gnm { n, .. } => n,
        }
    }

    /// Replays the edge emission, invoking `f(u, v)` once per emitted
    /// undirected pair (`u != v` guaranteed; duplicates possible for
    /// the collision-sampling specs). Deterministic: two calls with the
    /// same spec emit identical sequences.
    fn emit<F: FnMut(u32, u32)>(&self, mut f: F) {
        match *self {
            StreamSpec::ChungLu {
                n,
                target_m,
                gamma,
                seed,
            } => {
                assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
                if n == 0 {
                    return;
                }
                let exponent = -1.0 / (gamma - 1.0);
                let i0 = 10.0;
                let weights: Vec<f64> = (0..n)
                    .map(|i| ((i as f64 + i0) / i0).powf(exponent))
                    .collect();
                let table = AliasTable::new(&weights);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
                for _ in 0..target_m {
                    let u = table.sample(&mut rng);
                    let v = table.sample(&mut rng);
                    if u != v {
                        f(u, v);
                    }
                }
            }
            StreamSpec::BarabasiAlbert { n, m, seed } => {
                assert!(m >= 1, "m must be at least 1");
                if n == 0 {
                    return;
                }
                let seed_size = (m + 1).min(n);
                let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
                for u in 0..seed_size as u32 {
                    for v in (u + 1)..seed_size as u32 {
                        f(u, v);
                        endpoints.push(u);
                        endpoints.push(v);
                    }
                }
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
                let mut chosen: Vec<u32> = Vec::with_capacity(m);
                for v in seed_size..n {
                    chosen.clear();
                    let mut guard = 0usize;
                    while chosen.len() < m && guard < 50 * m {
                        guard += 1;
                        let t = endpoints[rng.gen_range(0..endpoints.len())];
                        if !chosen.contains(&t) {
                            chosen.push(t);
                        }
                    }
                    for &t in &chosen {
                        f(v as u32, t);
                        endpoints.push(v as u32);
                        endpoints.push(t);
                    }
                }
            }
            StreamSpec::Gnm { n, target_m, seed } => {
                if n < 2 {
                    return;
                }
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
                for _ in 0..target_m {
                    let u = rng.gen_range(0..n as u32);
                    let v = rng.gen_range(0..n as u32);
                    if u != v {
                        f(u, v);
                    }
                }
            }
        }
    }
}

/// Builds the graph for `spec` with two emission passes and no edge
/// list — see the module docs. The result is canonical CSR (sorted,
/// deduped, mirrored) and passes `ic-graph`'s full structural
/// validation.
pub fn stream_graph(spec: &StreamSpec) -> Graph {
    let n = spec.num_vertices();
    if n == 0 {
        return Graph::empty(0);
    }
    // Pass 1: count emitted endpoints per vertex (duplicates included —
    // they are removed after placement).
    let mut counts = vec![0usize; n];
    spec.emit(|u, v| {
        counts[u as usize] += 1;
        counts[v as usize] += 1;
    });
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    // Pass 2: scatter both directions straight into CSR position,
    // reusing `counts` as per-vertex write cursors.
    let mut cursor = std::mem::take(&mut counts);
    cursor.copy_from_slice(&offsets[..n]);
    let mut targets: Vec<u32> = vec![0; acc];
    spec.emit(|u, v| {
        targets[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        targets[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    });
    // Canonicalize in place: per-vertex sort + dedup, compacting the
    // target array left. Duplicate pairs were scattered symmetrically,
    // so dedup preserves mirror symmetry.
    let mut write = 0usize;
    let mut new_offsets = Vec::with_capacity(n + 1);
    new_offsets.push(0);
    for v in 0..n {
        let (lo, hi) = (offsets[v], offsets[v + 1]);
        targets[lo..hi].sort_unstable();
        let mut prev = u32::MAX;
        for i in lo..hi {
            let t = targets[i];
            if t != prev {
                targets[write] = t;
                write += 1;
                prev = t;
            }
        }
        new_offsets.push(write);
    }
    targets.truncate(write);
    targets.shrink_to_fit();
    Graph::from_csr_checked(new_offsets, targets)
        .expect("streaming construction yields a canonical CSR")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chung_lu_stream_matches_builder_generator() {
        // Same seed, same sampling sequence: the streamed CSR must be
        // the builder graph exactly.
        let spec = StreamSpec::ChungLu {
            n: 2000,
            target_m: 8000,
            gamma: 2.5,
            seed: GraphSeed(11),
        };
        let streamed = stream_graph(&spec);
        let built = crate::chung_lu(2000, 8000, 2.5, GraphSeed(11));
        assert_eq!(streamed, built);
    }

    #[test]
    fn ba_stream_matches_builder_generator() {
        let spec = StreamSpec::BarabasiAlbert {
            n: 1500,
            m: 3,
            seed: GraphSeed(21),
        };
        let streamed = stream_graph(&spec);
        let built = crate::barabasi_albert(1500, 3, GraphSeed(21));
        assert_eq!(streamed, built);
    }

    #[test]
    fn gnm_stream_is_valid_and_deterministic() {
        let spec = StreamSpec::Gnm {
            n: 1000,
            target_m: 5000,
            seed: GraphSeed(7),
        };
        let a = stream_graph(&spec);
        let b = stream_graph(&spec);
        assert_eq!(a, b);
        assert_eq!(a.num_vertices(), 1000);
        assert!(a.num_edges() > 4000 && a.num_edges() <= 5000);
    }

    #[test]
    fn empty_and_tiny_specs() {
        let empty = StreamSpec::ChungLu {
            n: 0,
            target_m: 100,
            gamma: 2.5,
            seed: GraphSeed(1),
        };
        assert_eq!(stream_graph(&empty).num_vertices(), 0);
        let single = StreamSpec::Gnm {
            n: 1,
            target_m: 100,
            seed: GraphSeed(1),
        };
        let g = stream_graph(&single);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
