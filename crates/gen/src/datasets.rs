//! Synthetic analogs of the paper's datasets (Table III).
//!
//! The paper evaluates on six SNAP graphs. Offline we regenerate seeded
//! Chung-Lu analogs whose *shape* (heavy-tailed degrees, average degree
//! ordering: Orkut/FriendSter dense, Youtube/DBLP sparse) mirrors the
//! originals at laptop scale. Absolute sizes are scaled down — the paper's
//! own claims are about relative algorithm behaviour, which survives the
//! scaling (see DESIGN.md §3).

use crate::{chung_lu, pagerank_weights, GraphSeed};
use ic_graph::{Graph, GraphBuilder, WeightedGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Scale profile for dataset generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Laptop-scale: every experiment (including the quadratic Naive
    /// baseline) finishes in seconds to minutes.
    Quick,
    /// Larger analogs for longer runs; the Naive baseline becomes slow,
    /// which is exactly the paper's point.
    Full,
}

/// Specification of one synthetic dataset analog.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Analog name (lowercase paper dataset name).
    pub name: &'static str,
    /// Vertex count of the paper's original dataset, for reporting.
    pub paper_vertices: usize,
    /// Edge count of the paper's original dataset, for reporting.
    pub paper_edges: usize,
    /// `kmax` of the paper's original dataset, for reporting.
    pub paper_kmax: u32,
    /// Vertices to generate.
    pub n: usize,
    /// Target edge count (realized count is slightly lower).
    pub target_m: usize,
    /// Power-law exponent for the Chung-Lu model.
    pub gamma: f64,
    /// Generation seed.
    pub seed: u64,
    /// The `k` sweep this dataset uses in the experiments (clamped to the
    /// realized `kmax` at run time).
    pub k_grid: &'static [usize],
    /// The default `k` for experiments that fix `k` (paper: 4 for small
    /// datasets, 40 for large ones).
    pub default_k: usize,
    /// Number of dense communities (cliques) overlaid on the Chung-Lu
    /// edges. Real SNAP graphs contain dense cohesive groups (their kmax
    /// is 43-360); a pure Chung-Lu graph is locally tree-like, which would
    /// make the paper's k sweeps vacuous. The overlay restores that
    /// structure.
    pub planted_cliques: usize,
    /// Members per planted clique (kmax is at least `clique_size - 1`).
    pub clique_size: usize,
}

impl DatasetSpec {
    /// Generates the graph for this spec (deterministic): Chung-Lu
    /// power-law edges plus the planted dense communities.
    pub fn generate(&self) -> Graph {
        let base = chung_lu(self.n, self.target_m, self.gamma, GraphSeed(self.seed));
        if self.planted_cliques == 0 || self.clique_size < 2 {
            return base;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut b = GraphBuilder::with_capacity(
            base.num_edges() + self.planted_cliques * self.clique_size * self.clique_size / 2,
        );
        b.reserve_vertices(self.n);
        b.extend_edges(base.edges());
        // Rich-club overlay: cliques are sampled from the heavy head of
        // the degree distribution (Chung-Lu puts the hubs at low ids), so
        // the densest structure coincides with the highest-PageRank
        // vertices — the configuration observed in real social networks
        // and the reason the paper's Greedy strategy pays off.
        let head = (self.planted_cliques * self.clique_size / 3)
            .max(2 * self.clique_size)
            .min(self.n);
        let mut ids: Vec<u32> = (0..head as u32).collect();
        for _ in 0..self.planted_cliques {
            ids.shuffle(&mut rng);
            let members = &ids[..self.clique_size.min(head)];
            for (i, &u) in members.iter().enumerate() {
                for &v in members.iter().skip(i + 1) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    /// Generates the graph and attaches PageRank weights (damping 0.85),
    /// matching the paper's experimental setup.
    pub fn generate_weighted(&self) -> WeightedGraph {
        let g = self.generate();
        let w = pagerank_weights(&g);
        WeightedGraph::new(g, w).expect("pagerank weights are valid")
    }
}

const SMALL_K: &[usize] = &[4, 6, 8, 10];
const MID_K: &[usize] = &[10, 15, 20, 25];
const DENSE_K: &[usize] = &[15, 20, 30, 40];

/// The six dataset analogs of Table III under the given profile.
pub fn registry(profile: Profile) -> Vec<DatasetSpec> {
    let f = match profile {
        Profile::Quick => 1,
        Profile::Full => 8,
    };
    vec![
        DatasetSpec {
            name: "email",
            paper_vertices: 36_692,
            paper_edges: 183_831,
            paper_kmax: 43,
            n: 3_000 * f,
            target_m: 15_000 * f,
            gamma: 2.4,
            seed: 0xE5A1,
            k_grid: SMALL_K,
            default_k: 4,
            planted_cliques: 12 * f,
            clique_size: 14,
        },
        DatasetSpec {
            name: "dblp",
            paper_vertices: 317_080,
            paper_edges: 1_049_866,
            paper_kmax: 113,
            n: 6_000 * f,
            target_m: 20_000 * f,
            gamma: 2.6,
            seed: 0xDB11,
            k_grid: SMALL_K,
            default_k: 4,
            planted_cliques: 24 * f,
            clique_size: 14,
        },
        DatasetSpec {
            name: "youtube",
            paper_vertices: 1_134_890,
            paper_edges: 2_987_624,
            paper_kmax: 51,
            n: 10_000 * f,
            target_m: 27_000 * f,
            gamma: 2.3,
            seed: 0x1017,
            k_grid: SMALL_K,
            default_k: 4,
            planted_cliques: 40 * f,
            clique_size: 14,
        },
        DatasetSpec {
            name: "orkut",
            paper_vertices: 3_072_441,
            paper_edges: 117_185_083,
            paper_kmax: 253,
            n: 3_000 * f,
            target_m: 90_000 * f,
            gamma: 2.1,
            seed: 0x0412,
            k_grid: DENSE_K,
            default_k: 15,
            planted_cliques: 12 * f,
            clique_size: 44,
        },
        DatasetSpec {
            name: "livejournal",
            paper_vertices: 3_997_962,
            paper_edges: 34_681_189,
            paper_kmax: 360,
            n: 8_000 * f,
            target_m: 70_000 * f,
            gamma: 2.3,
            seed: 0x117E,
            k_grid: MID_K,
            default_k: 10,
            planted_cliques: 32 * f,
            clique_size: 28,
        },
        DatasetSpec {
            name: "friendster",
            paper_vertices: 65_608_366,
            paper_edges: 1_806_067_135,
            paper_kmax: 304,
            n: 6_000 * f,
            target_m: 120_000 * f,
            gamma: 2.2,
            seed: 0xF417,
            k_grid: DENSE_K,
            default_k: 15,
            planted_cliques: 24 * f,
            clique_size: 44,
        },
    ]
}

/// Looks a dataset up by name (case-insensitive).
pub fn by_name(profile: Profile, name: &str) -> Option<DatasetSpec> {
    registry(profile)
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_kcore::core_decomposition;

    #[test]
    fn registry_has_all_six_paper_datasets() {
        let names: Vec<&str> = registry(Profile::Quick).iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "email",
                "dblp",
                "youtube",
                "orkut",
                "livejournal",
                "friendster"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name(Profile::Quick, "DBLP").is_some());
        assert!(by_name(Profile::Quick, "nope").is_none());
    }

    #[test]
    fn quick_email_generates_with_expected_shape() {
        let spec = by_name(Profile::Quick, "email").unwrap();
        let g = spec.generate();
        assert_eq!(g.num_vertices(), spec.n);
        let overlay = spec.planted_cliques * spec.clique_size * (spec.clique_size - 1) / 2;
        assert!(g.num_edges() <= spec.target_m + overlay);
        assert!(g.num_edges() as f64 > spec.target_m as f64 * 0.7);
    }

    #[test]
    fn quick_datasets_support_their_full_k_grids() {
        // Every quick dataset must have a kmax covering its whole k grid,
        // otherwise the experiment sweeps are vacuous.
        for spec in registry(Profile::Quick) {
            let g = spec.generate();
            let kmax = core_decomposition(&g).max_core as usize;
            let grid_max = *spec.k_grid.last().unwrap();
            assert!(
                kmax >= grid_max,
                "{}: kmax {} < largest grid k {}",
                spec.name,
                kmax,
                grid_max
            );
        }
    }

    #[test]
    fn weighted_generation_uses_pagerank() {
        let spec = by_name(Profile::Quick, "email").unwrap();
        let wg = spec.generate_weighted();
        assert!((wg.total_weight() - 1.0).abs() < 1e-6, "PageRank sums to 1");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name(Profile::Quick, "dblp").unwrap();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn full_profile_scales_up() {
        let q = by_name(Profile::Quick, "email").unwrap();
        let f = by_name(Profile::Full, "email").unwrap();
        assert!(f.n > q.n);
        assert!(f.target_m > q.target_m);
    }
}
