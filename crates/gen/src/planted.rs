use crate::GraphSeed;
use ic_graph::{Graph, GraphBuilder};
use rand::{Rng, SeedableRng};

/// Configuration for the planted-partition (stochastic block) model.
#[derive(Clone, Debug)]
pub struct PlantedPartitionConfig {
    /// Number of communities.
    pub communities: usize,
    /// Vertices per community.
    pub community_size: usize,
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Inter-community edge probability.
    pub p_out: f64,
}

/// Generates a planted-partition graph: `communities × community_size`
/// vertices; pairs inside the same block connect with `p_in`, across
/// blocks with `p_out`. Vertex `v` belongs to block `v / community_size`.
///
/// Used to build workloads with known community structure for
/// effectiveness tests (the paper's Figs 12–13 compare the influence value
/// the heuristics recover).
pub fn planted_partition(config: &PlantedPartitionConfig, seed: GraphSeed) -> Graph {
    assert!((0.0..=1.0).contains(&config.p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&config.p_out), "p_out out of range");
    let n = config.communities * config.community_size;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let same = (u as usize / config.community_size) == (v as usize / config.community_size);
            let p = if same { config.p_in } else { config.p_out };
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_blocks() -> Graph {
        planted_partition(
            &PlantedPartitionConfig {
                communities: 4,
                community_size: 25,
                p_in: 0.5,
                p_out: 0.01,
            },
            GraphSeed(31),
        )
    }

    #[test]
    fn sizes() {
        let g = dense_blocks();
        assert_eq!(g.num_vertices(), 100);
    }

    #[test]
    fn intra_density_exceeds_inter() {
        let g = dense_blocks();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if u / 25 == v / 25 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // 4 blocks × C(25,2) × 0.5 = 600 expected intra;
        // inter pairs: C(100,2) − 4·C(25,2) = 3750, × 0.01 ≈ 37.
        assert!(intra > 400, "intra = {intra}");
        assert!(inter < 120, "inter = {inter}");
        assert!(intra > 5 * inter);
    }

    #[test]
    fn zero_p_out_gives_disconnected_blocks() {
        let g = planted_partition(
            &PlantedPartitionConfig {
                communities: 3,
                community_size: 10,
                p_in: 1.0,
                p_out: 0.0,
            },
            GraphSeed(32),
        );
        let cc = ic_graph::connected_components(&g);
        assert_eq!(cc.count, 3);
        // Each block is a clique: K10 has 45 edges.
        assert_eq!(g.num_edges(), 135);
    }

    #[test]
    fn deterministic() {
        let cfg = PlantedPartitionConfig {
            communities: 2,
            community_size: 20,
            p_in: 0.3,
            p_out: 0.05,
        };
        assert_eq!(
            planted_partition(&cfg, GraphSeed(5)),
            planted_partition(&cfg, GraphSeed(5))
        );
    }

    #[test]
    #[should_panic(expected = "p_in")]
    fn rejects_bad_probability() {
        planted_partition(
            &PlantedPartitionConfig {
                communities: 1,
                community_size: 2,
                p_in: 2.0,
                p_out: 0.0,
            },
            GraphSeed(0),
        );
    }
}
