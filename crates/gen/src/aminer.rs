//! Synthetic Aminer-like co-authorship network for the paper's case study
//! (Section VI.C, Figure 14).
//!
//! The real Aminer dump is unavailable offline; this module plants the
//! research groups of Figure 14 as cliques inside a five-field synthetic
//! co-authorship network, with three citation-style metrics per researcher:
//!
//! * `i10` — an i10-index-like metric; the paper observes `min` works well
//!   with it (uniformly-cited tight groups win);
//! * `gindex` — a G-index-like metric; the paper observes `avg` suits it
//!   (high-mean groups win);
//! * `citations` — raw citation counts; `sum` surfaces larger,
//!   high-total-impact groups.
//!
//! The planted weight profiles reproduce Figure 14's qualitative outcome:
//! the `min`/`avg`/`sum` top-3 non-overlapping communities recover three
//! different, meaningful sets of groups.

use crate::GraphSeed;
use ic_graph::{Graph, GraphBuilder, WeightedGraph};
use rand::{Rng, SeedableRng};

/// A research group planted into the network as a clique.
#[derive(Clone, Debug)]
pub struct PlantedGroup {
    /// Group identifier (e.g. `"db-pioneers"`).
    pub name: &'static str,
    /// The field the group belongs to.
    pub field: &'static str,
    /// Member vertex ids.
    pub members: Vec<u32>,
}

/// The synthetic Aminer-like network with per-vertex metadata.
#[derive(Clone, Debug)]
pub struct AminerNetwork {
    /// The co-authorship graph.
    pub graph: Graph,
    /// Researcher display names (named pioneers + generated background).
    pub names: Vec<String>,
    /// Field of each researcher.
    pub fields: Vec<&'static str>,
    /// i10-index-like metric (use with `min`).
    pub i10: Vec<f64>,
    /// G-index-like metric (use with `avg`).
    pub gindex: Vec<f64>,
    /// Raw citation counts (use with `sum`).
    pub citations: Vec<f64>,
    /// The planted groups (ground truth for the case study).
    pub groups: Vec<PlantedGroup>,
}

impl AminerNetwork {
    /// The network weighted by the i10-like metric.
    pub fn weighted_by_i10(&self) -> WeightedGraph {
        WeightedGraph::new(self.graph.clone(), self.i10.clone()).expect("valid weights")
    }

    /// The network weighted by the G-index-like metric.
    pub fn weighted_by_gindex(&self) -> WeightedGraph {
        WeightedGraph::new(self.graph.clone(), self.gindex.clone()).expect("valid weights")
    }

    /// The network weighted by raw citations.
    pub fn weighted_by_citations(&self) -> WeightedGraph {
        WeightedGraph::new(self.graph.clone(), self.citations.clone()).expect("valid weights")
    }

    /// Display name of a vertex.
    pub fn name_of(&self, v: u32) -> &str {
        &self.names[v as usize]
    }

    /// The planted group with the given name.
    pub fn group(&self, name: &str) -> Option<&PlantedGroup> {
        self.groups.iter().find(|g| g.name == name)
    }
}

/// Named researcher with metrics `(name, field, i10, gindex, citations)`.
type Named = (&'static str, &'static str, f64, f64, f64);

const DB: &str = "Database";
const MI: &str = "Medical Informatics";
const DM: &str = "Data Mining";
const TH: &str = "Theory";
const VIS: &str = "Visualization";

/// Fields of the Aminer dump the paper uses.
pub const FIELDS: [&str; 5] = [DB, MI, DM, TH, VIS];

// Metric design (see module docs): the pioneers' group has uniformly high
// i10 (min-winner); the db-systems group has the highest G-index mean and
// citation total (avg- and sum-winner); the temporal-db and
// query-processing groups rank 2nd/3rd under avg; the imaging and
// informatics groups rank 2nd/3rd under min.
const NAMED: &[Named] = &[
    // Shared core of the pioneers and db-systems groups.
    ("Hector Garcia-Molina", DB, 100.0, 98.0, 10_000.0),
    ("Michael J. Carey", DB, 98.0, 97.0, 9_800.0),
    ("Michael Stonebraker", DB, 97.0, 96.0, 9_700.0),
    ("Michael J. Franklin", DB, 95.0, 95.0, 9_500.0),
    // Pioneers-only members: uniformly high i10, modest G-index.
    ("Rakesh Agrawal", DM, 90.0, 42.0, 3_000.0),
    ("David J. DeWitt", DB, 90.0, 41.0, 3_000.0),
    ("H. V. Jagadish", DB, 90.0, 40.0, 3_000.0),
    // db-systems-only members: high G-index and citations, modest i10.
    ("Hamid Pirahesh", DB, 50.0, 93.0, 9_300.0),
    ("Jim Gray", DB, 50.0, 92.0, 9_200.0),
    // Temporal-DB group (avg/sum runner-up).
    ("Richard T. Snodgrass", DB, 45.0, 88.0, 7_800.0),
    ("Jennifer Widom", DB, 45.0, 87.0, 7_700.0),
    ("Christian S. Jensen", DB, 44.0, 86.0, 7_600.0),
    ("Philip A. Bernstein", DB, 44.0, 85.0, 7_500.0),
    ("M. Tamer Özsu", DB, 43.0, 84.0, 7_400.0),
    ("Kyu-Young Whang", DB, 43.0, 83.0, 7_300.0),
    // Query-processing group (avg third place).
    ("Kenneth A. Ross", DB, 35.0, 80.0, 2_600.0),
    ("Guy M. Lohman", DB, 35.0, 79.0, 2_600.0),
    ("David B. Lomet", DB, 34.0, 78.0, 2_600.0),
    ("Patrick Valduriez", DB, 34.0, 77.0, 2_600.0),
    ("Timos K. Sellis", DB, 33.0, 76.0, 2_600.0),
    // Medical-imaging group (min runner-up, sum third place).
    ("Derek L. G. Hill", MI, 74.0, 58.0, 6_800.0),
    ("Max A. Viergever", MI, 73.0, 57.0, 6_700.0),
    ("Calvin R. Maurer Jr.", MI, 72.0, 56.0, 6_600.0),
    ("Paul Suetens", MI, 71.0, 55.0, 6_500.0),
    ("David J. Hawkes", MI, 70.0, 54.0, 6_400.0),
    ("Graeme P. Penney", MI, 55.0, 53.0, 6_300.0),
    // Medical-informatics group (min third place).
    ("Mario Stefanelli", MI, 64.0, 45.0, 2_100.0),
    ("Robert A. Greenes", MI, 63.0, 44.0, 2_100.0),
    ("Vimla L. Patel", MI, 62.0, 43.0, 2_100.0),
    ("Samson W. Tu", MI, 61.0, 42.0, 2_100.0),
    ("Edward H. Shortliffe", MI, 60.0, 41.0, 2_100.0),
];

fn named_id(name: &str) -> u32 {
    NAMED
        .iter()
        .position(|&(n, ..)| n == name)
        .unwrap_or_else(|| panic!("unknown researcher {name}")) as u32
}

fn group_defs() -> Vec<(&'static str, &'static str, Vec<u32>)> {
    vec![
        (
            "db-pioneers",
            DB,
            [
                "Rakesh Agrawal",
                "Michael J. Carey",
                "Michael Stonebraker",
                "David J. DeWitt",
                "H. V. Jagadish",
                "Michael J. Franklin",
                "Hector Garcia-Molina",
            ]
            .iter()
            .map(|n| named_id(n))
            .collect(),
        ),
        (
            "db-systems",
            DB,
            [
                "Hector Garcia-Molina",
                "Michael J. Carey",
                "Michael Stonebraker",
                "Michael J. Franklin",
                "Hamid Pirahesh",
                "Jim Gray",
            ]
            .iter()
            .map(|n| named_id(n))
            .collect(),
        ),
        (
            "temporal-db",
            DB,
            [
                "Richard T. Snodgrass",
                "Jennifer Widom",
                "Christian S. Jensen",
                "Philip A. Bernstein",
                "M. Tamer Özsu",
                "Kyu-Young Whang",
            ]
            .iter()
            .map(|n| named_id(n))
            .collect(),
        ),
        (
            "query-processing",
            DB,
            [
                "Kenneth A. Ross",
                "Guy M. Lohman",
                "David B. Lomet",
                "Patrick Valduriez",
                "Timos K. Sellis",
            ]
            .iter()
            .map(|n| named_id(n))
            .collect(),
        ),
        (
            "medical-imaging",
            MI,
            [
                "Derek L. G. Hill",
                "Max A. Viergever",
                "Calvin R. Maurer Jr.",
                "Paul Suetens",
                "David J. Hawkes",
                "Graeme P. Penney",
            ]
            .iter()
            .map(|n| named_id(n))
            .collect(),
        ),
        (
            "medical-informatics",
            MI,
            [
                "Mario Stefanelli",
                "Robert A. Greenes",
                "Vimla L. Patel",
                "Samson W. Tu",
                "Edward H. Shortliffe",
            ]
            .iter()
            .map(|n| named_id(n))
            .collect(),
        ),
    ]
}

/// Background researchers per field.
const BACKGROUND_PER_FIELD: usize = 80;

/// Builds the synthetic Aminer-like network (deterministic per seed).
pub fn aminer_network(seed: GraphSeed) -> AminerNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);

    let named_count = NAMED.len();
    let n = named_count + FIELDS.len() * BACKGROUND_PER_FIELD;

    let mut names: Vec<String> = NAMED.iter().map(|&(name, ..)| name.to_string()).collect();
    let mut fields: Vec<&'static str> = NAMED.iter().map(|&(_, f, ..)| f).collect();
    let mut i10: Vec<f64> = NAMED.iter().map(|&(_, _, v, ..)| v).collect();
    let mut gindex: Vec<f64> = NAMED.iter().map(|&(.., v, _)| v).collect();
    let mut citations: Vec<f64> = NAMED.iter().map(|&(.., v)| v).collect();

    // Background authors: low metrics so planted groups dominate.
    let mut field_members: Vec<Vec<u32>> = vec![Vec::new(); FIELDS.len()];
    for (fi, field) in FIELDS.iter().enumerate() {
        for j in 0..BACKGROUND_PER_FIELD {
            let v = names.len() as u32;
            names.push(format!("{field} Researcher {j:02}"));
            fields.push(field);
            i10.push(rng.gen_range(1.0..25.0));
            gindex.push(rng.gen_range(1.0..30.0));
            citations.push(rng.gen_range(10.0..500.0));
            field_members[fi].push(v);
        }
    }
    // Named researchers also collaborate inside their fields.
    for (id, &(_, field, ..)) in NAMED.iter().enumerate() {
        let fi = FIELDS.iter().position(|&f| f == field).unwrap();
        field_members[fi].push(id as u32);
    }

    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);

    // Plant each group as a clique.
    let groups: Vec<PlantedGroup> = group_defs()
        .into_iter()
        .map(|(name, field, members)| {
            for (i, &u) in members.iter().enumerate() {
                for &v in members.iter().skip(i + 1) {
                    b.add_edge(u, v);
                }
            }
            PlantedGroup {
                name,
                field,
                members,
            }
        })
        .collect();

    // Background co-authorship inside each field (~6 collaborations each).
    // A deterministic chain first: connectivity must not depend on the
    // random edges hitting every vertex.
    for members in &field_members {
        for w in members.windows(2) {
            b.add_edge(w[0], w[1]);
        }
    }
    for members in &field_members {
        let m_target = members.len() * 3;
        for _ in 0..m_target {
            let u = members[rng.gen_range(0..members.len())];
            let v = members[rng.gen_range(0..members.len())];
            if u != v {
                b.add_edge(u, v);
            }
        }
    }

    // Sparse cross-field collaborations keep the network connected.
    for fi in 0..FIELDS.len() {
        for fj in (fi + 1)..FIELDS.len() {
            for _ in 0..10 {
                let u = field_members[fi][rng.gen_range(0..field_members[fi].len())];
                let v = field_members[fj][rng.gen_range(0..field_members[fj].len())];
                b.add_edge(u, v);
            }
        }
    }

    AminerNetwork {
        graph: b.build(),
        names,
        fields,
        i10,
        gindex,
        citations,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_kcore::is_kcore;

    fn net() -> AminerNetwork {
        aminer_network(GraphSeed(2022))
    }

    #[test]
    fn sizes_and_metadata_align() {
        let net = net();
        let n = net.graph.num_vertices();
        assert_eq!(n, NAMED.len() + 5 * BACKGROUND_PER_FIELD);
        assert_eq!(net.names.len(), n);
        assert_eq!(net.fields.len(), n);
        assert_eq!(net.i10.len(), n);
        assert_eq!(net.gindex.len(), n);
        assert_eq!(net.citations.len(), n);
        assert_eq!(net.groups.len(), 6);
    }

    #[test]
    fn planted_groups_are_4core_cliques() {
        let net = net();
        for g in &net.groups {
            assert!(g.members.len() >= 5, "{} too small", g.name);
            assert!(
                is_kcore(&net.graph, &g.members, 4),
                "{} is not a 4-core",
                g.name
            );
            // Cliques: every pair adjacent.
            for (i, &u) in g.members.iter().enumerate() {
                for &v in g.members.iter().skip(i + 1) {
                    assert!(net.graph.has_edge(u, v), "{}: missing {u}-{v}", g.name);
                }
            }
        }
    }

    #[test]
    fn pioneers_have_the_highest_minimum_i10() {
        let net = net();
        let pioneers = net.group("db-pioneers").unwrap();
        let min_i10 = pioneers
            .members
            .iter()
            .map(|&v| net.i10[v as usize])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_i10, 90.0);
        // No vertex outside the pioneers reaches i10 90.
        for v in 0..net.graph.num_vertices() as u32 {
            if !pioneers.members.contains(&v) {
                assert!(net.i10[v as usize] < 90.0, "{}", net.name_of(v));
            }
        }
    }

    #[test]
    fn db_systems_has_the_highest_gindex_mean_and_citation_total() {
        let net = net();
        let avg = |members: &[u32], w: &[f64]| {
            members.iter().map(|&v| w[v as usize]).sum::<f64>() / members.len() as f64
        };
        let sys = net.group("db-systems").unwrap();
        for g in &net.groups {
            if g.name != "db-systems" {
                assert!(
                    avg(&sys.members, &net.gindex) > avg(&g.members, &net.gindex),
                    "gindex: {} not dominated",
                    g.name
                );
                let total = |members: &[u32]| -> f64 {
                    members.iter().map(|&v| net.citations[v as usize]).sum()
                };
                assert!(
                    total(&sys.members) > total(&g.members),
                    "citations: {} not dominated",
                    g.name
                );
            }
        }
    }

    #[test]
    fn weighted_views_work() {
        let net = net();
        assert!(net.weighted_by_i10().total_weight() > 0.0);
        assert!(net.weighted_by_gindex().total_weight() > 0.0);
        assert!(net.weighted_by_citations().total_weight() > 0.0);
    }

    #[test]
    fn network_is_connected() {
        let net = net();
        assert!(ic_graph::is_connected(&net.graph));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = aminer_network(GraphSeed(1));
        let b = aminer_network(GraphSeed(1));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.i10, b.i10);
    }
}
