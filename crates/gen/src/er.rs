use crate::GraphSeed;
use ic_graph::{Graph, GraphBuilder};
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`. `O(n²)` — intended for small graphs and tests.
pub fn gnp(n: usize, p: f64, seed: GraphSeed) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform random edges.
///
/// Sampling is with rejection of duplicates/self-loops; `m` is capped at
/// `n·(n−1)/2`.
pub fn gnm(n: usize, m: usize, seed: GraphSeed) -> Graph {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_m);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.0);
    let mut b = GraphBuilder::with_capacity(m);
    b.reserve_vertices(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v {
            (u as u64) << 32 | v as u64
        } else {
            (v as u64) << 32 | u as u64
        };
        if seen.insert(key) {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm(100, 250, GraphSeed(1));
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = gnm(5, 1000, GraphSeed(2));
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_extremes() {
        let g = gnp(10, 0.0, GraphSeed(3));
        assert_eq!(g.num_edges(), 0);
        let g = gnp(10, 1.0, GraphSeed(3));
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let g = gnp(200, 0.05, GraphSeed(4));
        let expected = 0.05 * (200.0 * 199.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gnm(50, 100, GraphSeed(9)), gnm(50, 100, GraphSeed(9)));
        assert_ne!(gnm(50, 100, GraphSeed(9)), gnm(50, 100, GraphSeed(10)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_p() {
        gnp(5, 1.5, GraphSeed(0));
    }
}
