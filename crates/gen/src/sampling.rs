use rand::Rng;

/// Walker's alias method for O(1) sampling from a discrete distribution.
///
/// Used by the Chung-Lu generator to draw edge endpoints proportionally to
/// expected degrees.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights. Panics if `weights`
    /// is empty or sums to a non-positive value.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table needs a positive finite total weight"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain events.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples an index proportionally to the construction weights.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respect_ratios() {
        let t = AliasTable::new(&[9.0, 1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut hit0 = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if t.sample(&mut rng) == 0 {
                hit0 += 1;
            }
        }
        let frac = hit0 as f64 / N as f64;
        assert!((frac - 0.9).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn zero_weight_categories_are_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn zero_total_panics() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
