//! TONIC: top-r **non-overlapping** k-influential community search
//! (Problem 2 / Definition 5).
//!
//! The paper's approach is greedy peeling: obtain the best community,
//! remove its vertices from the graph, and repeat. Two shortcuts exist:
//!
//! * for size-proportional aggregations (`sum`), the top-r connected
//!   components of the maximal k-core are already disjoint and optimal —
//!   "merely execute Lines 1–3 of Algorithm 2" (Section IV);
//! * for `min`/`max`, re-running the threshold peel after each removal is
//!   exact for the greedy semantics.
//!
//! For the NP-hard cases, [`crate::algo::local_search_nonoverlapping`]
//! applies the same greedy removal inside the local-search heuristic.

use crate::algo::common::{components_as_communities, require_corollary2, validate_k_r};
use crate::algo::{exact_topr, max_topr, min_topr};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{induce, BitSet, WeightedGraph};
use ic_kcore::maximal_kcore_components;

/// Non-overlapping top-r for size-proportional aggregations: the top-r
/// connected components of the maximal k-core (provably optimal, since
/// every community is contained in one component and the component itself
/// has the largest value inside it).
pub fn sum_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    require_corollary2("nonoverlap::sum_topr", aggregation)?;
    let comps = maximal_kcore_components(wg.graph(), k);
    let mut communities = components_as_communities(wg, aggregation, comps);
    communities.sort_by(|a, b| a.ranking_cmp(b));
    communities.truncate(r);
    Ok(communities)
}

/// Non-overlapping top-r under `min`: greedy peel — take the top-1,
/// delete its vertices, recompute.
pub fn min_topr_nonoverlapping(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    greedy_peel(wg, k, r, |sub, k| min_topr(sub, k, 1).map(|mut v| v.pop()))
}

/// Non-overlapping top-r under `max`: greedy peel.
pub fn max_topr_nonoverlapping(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    greedy_peel(wg, k, r, |sub, k| max_topr(sub, k, 1).map(|mut v| v.pop()))
}

/// Non-overlapping top-r via the exhaustive oracle (tiny graphs / tests):
/// greedy peel where each round's top-1 is exact under `aggregation` with
/// optional size bound.
pub fn exact_nonoverlapping(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    size_bound: Option<usize>,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    greedy_peel(wg, k, r, move |sub, k| {
        exact_topr(sub, k, 1, size_bound, aggregation).map(|mut v| v.pop())
    })
}

/// Shared greedy-peel loop: repeatedly solve top-1 on the remaining graph
/// (as an induced subgraph with original weights), translate ids back, and
/// delete the winner's vertices.
fn greedy_peel<F>(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    mut top1: F,
) -> Result<Vec<Community>, SearchError>
where
    F: FnMut(&WeightedGraph, usize) -> Result<Option<Community>, SearchError>,
{
    validate_k_r(r)?;
    let n = wg.num_vertices();
    let mut kept = BitSet::full(n);
    let mut results: Vec<Community> = Vec::with_capacity(r);

    for _ in 0..r {
        let kept_ids: Vec<u32> = kept.to_vec();
        if kept_ids.is_empty() {
            break;
        }
        let sub = induce(wg.graph(), &kept_ids);
        let sub_weights: Vec<f64> = sub.original.iter().map(|&v| wg.weight(v)).collect();
        let sub_wg = WeightedGraph::new(sub.graph.clone(), sub_weights)
            .expect("weights remain valid under induction");
        let Some(local) = top1(&sub_wg, k)? else {
            break;
        };
        let original: Vec<u32> = local
            .vertices
            .iter()
            .map(|&lv| sub.to_original(lv))
            .collect();
        for &v in &original {
            kept.remove(v as usize);
        }
        results.push(Community::new(original, local.value));
    }
    Ok(results)
}

/// Validates that a result set is pairwise disjoint (Definition 5).
pub fn is_nonoverlapping(communities: &[Community]) -> bool {
    for (i, a) in communities.iter().enumerate() {
        for b in communities.iter().skip(i + 1) {
            if a.overlaps(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, vs};

    #[test]
    fn example2_nonoverlapping_avg_top3() {
        // The paper's Example 2: top-3 non-overlapping avg communities are
        // {v1,v2,v4} (24), {v6,v7,v11} (22), {v3,v9,v10} (38/3).
        let wg = figure1();
        let top = exact_nonoverlapping(&wg, 2, 3, None, Aggregation::Average).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].vertices, vs(&[1, 2, 4]));
        assert_eq!(top[0].value, 24.0);
        assert_eq!(top[1].vertices, vs(&[6, 7, 11]));
        assert_eq!(top[1].value, 22.0);
        assert_eq!(top[2].vertices, vs(&[3, 9, 10]));
        assert!((top[2].value - 38.0 / 3.0).abs() < 1e-9);
        assert!(is_nonoverlapping(&top));
    }

    #[test]
    fn sum_nonoverlap_returns_disjoint_components() {
        let wg = figure1();
        // The 2-core is one component, so only one non-overlapping sum
        // community exists.
        let top = sum_topr(&wg, 2, 3, Aggregation::Sum).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].value, 203.0);
    }

    #[test]
    fn min_nonoverlap_peels_winners() {
        let wg = figure1();
        let top = min_topr_nonoverlapping(&wg, 2, 3).unwrap();
        assert!(is_nonoverlapping(&top));
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        assert_eq!(top[1].vertices, vs(&[3, 9, 10]));
        assert_eq!(top[1].value, 8.0);
        // Third round: with {5,7,8} and {3,9,10} gone, the best remaining
        // min community emerges from the leftovers.
        assert!(top.len() >= 2);
    }

    #[test]
    fn max_nonoverlap_peels_winners() {
        let wg = figure1();
        let top = max_topr_nonoverlapping(&wg, 2, 2).unwrap();
        assert!(is_nonoverlapping(&top));
        assert_eq!(top[0].value, 62.0); // community containing v1
        assert!(top[0].contains(crate::figure1::v(1)));
    }

    #[test]
    fn overlap_checker() {
        let a = Community::new(vec![1, 2], 0.0);
        let b = Community::new(vec![3, 4], 0.0);
        let c = Community::new(vec![2, 5], 0.0);
        assert!(is_nonoverlapping(&[a.clone(), b.clone()]));
        assert!(!is_nonoverlapping(&[a, b, c]));
    }

    #[test]
    fn rejects_bad_aggregation_for_sum_shortcut() {
        let wg = figure1();
        assert!(sum_topr(&wg, 2, 2, Aggregation::Average).is_err());
    }
}
