//! Extension: branch-and-bound exact solver for the NP-hard `avg` problem.
//!
//! The paper proves top-r avg search NP-hard with no constant-factor
//! approximation (Theorems 1 and 3) and leaves exact methods beyond
//! brute force as future work ("carefully design pruning rules",
//! Section VIII). This module implements that direction: a
//! branch-and-bound search over connected induced subgraphs with two
//! pruning rules that keep it practical far beyond Algorithm 3's reach:
//!
//! 1. **Average relaxation bound** — from a partial community `S` with
//!    candidate pool `P`, no completion can average more than greedily
//!    absorbing the heaviest candidates while they raise the running
//!    average (degree and connectivity constraints only shrink the
//!    achievable set, so this is a sound upper bound);
//! 2. **Degree-deficit feasibility** — a member needing `k − d` more
//!    internal neighbors than the pool can still supply can never be
//!    completed; the branch dies.
//!
//! Results use Algorithm 3's semantics (top-r over all connected
//! subgraphs with minimum internal degree ≥ k, optional size bound) and
//! are warm-started from the greedy local search.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::algo::LocalSearchConfig;
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::{Graph, VertexId, WeightedGraph};

/// Exact top-r under `avg` via branch-and-bound; see [`bb_topr`].
pub fn bb_avg_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    size_bound: Option<usize>,
) -> Result<Vec<Community>, SearchError> {
    bb_topr(wg, k, r, size_bound, Aggregation::Average)
}

/// Exact top-r via branch-and-bound for any aggregation declaring the
/// [`superset_bound`](crate::Certificates::superset_bound) certificate
/// (`avg`, `sum`, `sum-surplus` with α ≥ 0, or a custom function
/// shipping its own relaxation). Exponential worst case (the problems
/// are NP-hard) but with effective pruning on small and medium graphs;
/// intended as the exact reference for the heuristics.
///
/// `size_bound` bounds community size (`s > k`); `None` searches all
/// sizes. Aggregations without the certificate are rejected with
/// [`SearchError::UnsupportedAggregation`] — routing here is by
/// declared certificate, not by enum variant.
pub fn bb_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    size_bound: Option<usize>,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if let Some(s) = size_bound {
        if s <= k {
            return Err(SearchError::InvalidParams(format!(
                "size bound s = {s} must exceed k = {k}"
            )));
        }
    }
    if !aggregation.certificates().superset_bound {
        return Err(SearchError::UnsupportedAggregation {
            algorithm: "bb_topr",
            aggregation,
            reason: "branch-and-bound needs a sound superset relaxation \
                     (Certificates::superset_bound / AggregateFn::superset_bound)",
        });
    }
    let g = wg.graph();
    let n = g.num_vertices();
    let max_size = size_bound.unwrap_or(n.max(1));

    let mut best = TopList::new(r);
    // Warm start: greedy local search seeds the pruning threshold.
    if let Some(s) = size_bound {
        if let Ok(seed) = crate::algo::local_search(
            wg,
            &LocalSearchConfig {
                k,
                r,
                s,
                greedy: true,
            },
            aggregation,
        ) {
            for c in seed {
                best.insert(c);
            }
        }
    }

    // Vertices in descending weight order, for the relaxation bound.
    let mut by_weight_desc: Vec<VertexId> = (0..n as VertexId).collect();
    by_weight_desc.sort_by(|&a, &b| {
        wg.weight(b)
            .total_cmp(&wg.weight(a))
            .then_with(|| a.cmp(&b))
    });
    let mut searcher = Searcher {
        wg,
        g,
        k,
        max_size,
        aggregation,
        by_weight_desc,
        in_set: vec![false; n],
        banned: vec![false; n],
        in_ext: vec![false; n],
        set: Vec::new(),
        set_weight: 0.0,
        best,
    };
    for root in 0..n as VertexId {
        searcher.set.push(root);
        searcher.in_set[root as usize] = true;
        searcher.set_weight = wg.weight(root);
        let ext: Vec<VertexId> = g
            .neighbors(root)
            .iter()
            .copied()
            .filter(|&u| u > root)
            .collect();
        searcher.extend(root, &ext);
        searcher.set.pop();
        searcher.in_set[root as usize] = false;
    }
    Ok(searcher.best.into_vec())
}

struct Searcher<'a> {
    wg: &'a WeightedGraph,
    g: &'a Graph,
    k: usize,
    max_size: usize,
    aggregation: Aggregation,
    by_weight_desc: Vec<VertexId>,
    in_set: Vec<bool>,
    banned: Vec<bool>,
    in_ext: Vec<bool>,
    set: Vec<VertexId>,
    set_weight: f64,
    best: TopList,
}

impl Searcher<'_> {
    /// Sound upper bound on `f` over any superset reachable from the
    /// current set, delegated to the aggregation's declared
    /// [`superset_bound`](crate::AggregateFn::superset_bound)
    /// relaxation. The pool iterator yields every *eligible* vertex
    /// weight (not banned, not already a member, id above the root —
    /// anything the connected extension could ever pull in) in
    /// descending order; degree and connectivity constraints only
    /// shrink the achievable family, so the relaxation never
    /// under-estimates.
    fn upper_bound(&self, root: VertexId) -> f64 {
        let budget = self.max_size.saturating_sub(self.set.len());
        let mut pool = self.by_weight_desc.iter().copied().filter_map(|v| {
            let vi = v as usize;
            if v <= root || self.in_set[vi] || self.banned[vi] {
                None
            } else {
                Some(self.wg.weight(v))
            }
        });
        self.aggregation.with_fn(|f| {
            f.superset_bound(
                self.set_weight,
                self.set.len(),
                budget,
                &mut pool,
                self.wg.total_weight(),
            )
        })
    }

    /// Degree-deficit feasibility: every member must be able to reach
    /// internal degree k using the extension pool.
    fn feasible(&self, ext: &[VertexId]) -> bool {
        let budget = self.max_size.saturating_sub(self.set.len());
        for &v in &self.set {
            let have = self
                .g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.in_set[u as usize])
                .count();
            if have >= self.k {
                continue;
            }
            let deficit = self.k - have;
            if deficit > budget {
                return false;
            }
            let supply = self
                .g
                .neighbors(v)
                .iter()
                .filter(|&&u| ext.contains(&u))
                .count();
            if supply < deficit {
                return false;
            }
        }
        true
    }

    fn emit_if_valid(&mut self) {
        if self.set.len() <= self.k {
            return;
        }
        let ok = self.set.iter().all(|&v| {
            self.g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.in_set[u as usize])
                .count()
                >= self.k
        });
        if ok {
            let c = community_from_vertices(self.wg, self.aggregation, self.set.clone());
            self.best.insert(c);
        }
    }

    fn extend(&mut self, root: VertexId, ext: &[VertexId]) {
        self.emit_if_valid();
        if self.set.len() == self.max_size {
            return;
        }
        // Prune: the relaxation bound cannot beat the current r-th value.
        if self.upper_bound(root) <= self.best.threshold() {
            return;
        }
        // Prune: dead branch if some member can never reach degree k.
        if !self.feasible(ext) {
            return;
        }

        let mut newly_banned: Vec<VertexId> = Vec::new();
        for (i, &u) in ext.iter().enumerate() {
            if self.banned[u as usize] {
                continue;
            }
            // Include u.
            self.set.push(u);
            self.in_set[u as usize] = true;
            self.set_weight += self.wg.weight(u);
            let mut next_ext: Vec<VertexId> = Vec::with_capacity(ext.len());
            for &w in &ext[i + 1..] {
                if !self.banned[w as usize] {
                    next_ext.push(w);
                }
            }
            for &w in ext {
                self.in_ext[w as usize] = true;
            }
            let mut added: Vec<VertexId> = Vec::new();
            for &w in self.g.neighbors(u) {
                if w > root
                    && !self.in_set[w as usize]
                    && !self.banned[w as usize]
                    && !self.in_ext[w as usize]
                {
                    next_ext.push(w);
                    self.in_ext[w as usize] = true;
                    added.push(w);
                }
            }
            for &w in ext {
                self.in_ext[w as usize] = false;
            }
            for &w in &added {
                self.in_ext[w as usize] = false;
            }
            self.extend(root, &next_ext);
            self.set.pop();
            self.in_set[u as usize] = false;
            self.set_weight -= self.wg.weight(u);
            // Exclude u for the rest of this subtree.
            self.banned[u as usize] = true;
            newly_banned.push(u);
        }
        for &u in &newly_banned {
            self.banned[u as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_naive;
    use crate::figure1::{figure1, vs};

    #[test]
    fn matches_exhaustive_search_on_figure1() {
        let wg = figure1();
        for s in [3usize, 4, 5] {
            for r in [1usize, 2, 3] {
                let bb = bb_avg_topr(&wg, 2, r, Some(s)).unwrap();
                let brute = exact_naive(&wg, 2, r, s, Aggregation::Average).unwrap();
                let bv: Vec<f64> = bb.iter().map(|c| c.value).collect();
                let ev: Vec<f64> = brute.iter().map(|c| c.value).collect();
                assert_eq!(bv.len(), ev.len(), "s={s} r={r}");
                for (a, b) in bv.iter().zip(&ev) {
                    assert!((a - b).abs() < 1e-9, "s={s} r={r}: {bv:?} vs {ev:?}");
                }
            }
        }
    }

    #[test]
    fn unconstrained_top1_is_the_best_triangle() {
        let wg = figure1();
        let bb = bb_avg_topr(&wg, 2, 2, None).unwrap();
        assert_eq!(bb[0].vertices, vs(&[1, 2, 4]));
        assert_eq!(bb[0].value, 24.0);
        assert_eq!(bb[1].vertices, vs(&[6, 7, 11]));
        assert_eq!(bb[1].value, 22.0);
    }

    #[test]
    fn dominates_the_heuristic() {
        let wg = figure1();
        let config = LocalSearchConfig {
            k: 2,
            r: 1,
            s: 4,
            greedy: true,
        };
        let heuristic = crate::algo::local_search(&wg, &config, Aggregation::Average).unwrap();
        let exact = bb_avg_topr(&wg, 2, 1, Some(4)).unwrap();
        assert!(exact[0].value >= heuristic[0].value - 1e-12);
    }

    #[test]
    fn respects_size_bound_and_validity() {
        let wg = figure1();
        let bb = bb_avg_topr(&wg, 2, 5, Some(4)).unwrap();
        for c in &bb {
            assert!(c.len() <= 4);
            crate::verify::check_community(&wg, 2, Some(4), Aggregation::Average, c).unwrap();
        }
    }

    #[test]
    fn rejects_bad_params() {
        let wg = figure1();
        assert!(bb_avg_topr(&wg, 2, 0, None).is_err());
        assert!(bb_avg_topr(&wg, 3, 1, Some(3)).is_err());
    }

    #[test]
    fn works_on_disconnected_graphs() {
        use ic_graph::{graph_from_edges, WeightedGraph};
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]).unwrap();
        let bb = bb_avg_topr(&wg, 2, 2, None).unwrap();
        assert_eq!(bb[0].vertices, vec![3, 4, 5]);
        assert_eq!(bb[0].value, 20.0);
        assert_eq!(bb[1].value, 2.0);
    }
}
