//! Algorithm 2 (`TIC-IMPROVED`): best-first search with lower-bound
//! pruning. With `ε = 0` this is the exact "Improve" solver; with `ε > 0`
//! it is the "Approx" solver with the (1−ε) guarantee of Theorem 6
//! (Definition 8: the returned r-th value is ≥ (1−ε)·the exact r-th value).
//!
//! As printed in the paper, line 16 can only ever admit children whose
//! value ties the current maximum when ε = 0, so `R` would never fill; we
//! implement the evidently intended semantics (see DESIGN.md §4): each
//! popped maximum is *confirmed* into the result set — it dominates every
//! unexplored candidate because the aggregation is anti-monotone under
//! removal (Corollary 2) — and children within `(1−ε)` of the current
//! maximum are early-accepted, which is what makes the approximate variant
//! cheaper.
//!
//! The expansion loop runs on the zero-rebuild [`PeelArena`] (see
//! DESIGN.md §5): the popped maximum is loaded once, every candidate
//! deletion is a journaled cascade + rollback touching only the affected
//! frontier, and children are deduplicated by an order-independent set
//! key off the unsorted component buffer before any allocation happens.
//! The from-scratch formulation is preserved as
//! [`crate::algo::oracle::tic_improved`] for the property tests and the
//! perf baseline.

use crate::algo::common::{
    community_from_vertices, expand_children, require_corollary2, validate_k_r, vertex_mix_sum,
    vertex_set_key,
};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{VertexId, WeightedGraph};
use ic_kcore::{maximal_kcore_components, GraphSnapshot, PeelArena};
use std::collections::HashSet;

/// Tuning knobs for [`tic_improved_with_options`]; used by the pruning
/// ablation experiment.
#[derive(Clone, Copy, Debug)]
pub struct ImprovedOptions {
    /// Approximation parameter ε ∈ [0, 1). 0 = exact.
    pub epsilon: f64,
    /// Prune a deletion whose pre-cascade value cannot beat the current
    /// r-th best (line 13 of the paper). Disable only for ablation.
    pub prune_by_threshold: bool,
    /// Keep the candidate list trimmed to the top-r (line 19). Disable
    /// only for ablation.
    pub trim_candidates: bool,
}

impl Default for ImprovedOptions {
    fn default() -> Self {
        ImprovedOptions {
            epsilon: 0.0,
            prune_by_threshold: true,
            trim_candidates: true,
        }
    }
}

/// Runs Algorithm 2 with the given ε (`0.0` = exact "Improve", `> 0` =
/// "Approx"). The aggregation must satisfy Corollary 2.
pub fn tic_improved(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    epsilon: f64,
) -> Result<Vec<Community>, SearchError> {
    tic_improved_with_options(
        wg,
        k,
        r,
        aggregation,
        ImprovedOptions {
            epsilon,
            ..Default::default()
        },
    )
}

/// [`tic_improved`] with explicit pruning switches (for ablations).
pub fn tic_improved_with_options(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    options: ImprovedOptions,
) -> Result<Vec<Community>, SearchError> {
    validate_improved(r, aggregation, &options)?;
    let comps = maximal_kcore_components(wg.graph(), k);
    let mut arena = PeelArena::for_graph(wg.graph());
    Ok(run_improved(
        wg,
        comps,
        k,
        r,
        aggregation,
        options,
        &mut arena,
    ))
}

/// [`tic_improved`] against a [`GraphSnapshot`]: the k-core components
/// come from the snapshot's memoized level and the search runs on the
/// caller's (typically pooled) arena. Output is bit-identical to
/// [`tic_improved`].
pub fn tic_improved_on(
    snap: &GraphSnapshot,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    epsilon: f64,
    arena: &mut PeelArena,
) -> Result<Vec<Community>, SearchError> {
    let options = ImprovedOptions {
        epsilon,
        ..Default::default()
    };
    validate_improved(r, aggregation, &options)?;
    let level = snap.level(k);
    Ok(run_improved(
        snap.weighted(),
        level.components.clone(),
        k,
        r,
        aggregation,
        options,
        arena,
    ))
}

fn validate_improved(
    r: usize,
    aggregation: Aggregation,
    options: &ImprovedOptions,
) -> Result<(), SearchError> {
    validate_k_r(r)?;
    require_corollary2("tic_improved", aggregation)?;
    if !(0.0..1.0).contains(&options.epsilon) {
        return Err(SearchError::InvalidParams(format!(
            "epsilon must be in [0, 1), got {}",
            options.epsilon
        )));
    }
    Ok(())
}

fn run_improved(
    wg: &WeightedGraph,
    comps: Vec<Vec<VertexId>>,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    options: ImprovedOptions,
    arena: &mut PeelArena,
) -> Vec<Community> {
    let g = wg.graph();

    // Line 1-2: candidate list seeded with the k-core components.
    let mut candidates: Vec<Community> = comps
        .into_iter()
        .map(|c| community_from_vertices(wg, aggregation, c))
        .collect();
    candidates.sort_by(|a, b| a.ranking_cmp(b));
    if options.trim_candidates {
        candidates.truncate(r);
    }

    let mut explored: HashSet<u64> = candidates
        .iter()
        .map(|c| vertex_set_key(&c.vertices))
        .collect();
    let mut results: Vec<Community> = Vec::with_capacity(r);
    let mut in_results: HashSet<u64> = HashSet::new();
    let mut fresh: Vec<Community> = Vec::new();

    while results.len() < r && !candidates.is_empty() {
        // Pop the maximum candidate (kept sorted best-first).
        let lmax = candidates.remove(0);
        let sig = lmax.signature();
        if !in_results.contains(&sig) {
            in_results.insert(sig);
            results.push(lmax.clone());
            if results.len() == r {
                break;
            }
        }
        let lb = (1.0 - options.epsilon) * lmax.value;
        // f(Lr): the value of the r-th best known candidate/result.
        let threshold = r_th_value(&results, &candidates, r);

        // One load per popped maximum; every deletion below is an
        // O(affected) journaled cascade instead of a full re-peel. The
        // articulation marks are the no-split certificate for the O(1)
        // fast path below.
        arena.load(g, &lmax.vertices, k);
        arena.mark_articulation_points();
        let parent_mix = vertex_mix_sum(&lmax.vertices);
        for &v in &lmax.vertices {
            // Line 13: the pre-cascade value of Lmax ∖ {v} upper-bounds
            // every child it can produce.
            if options.prune_by_threshold {
                let upper = aggregation.value_after_removal(lmax.value, wg.weight(v));
                if upper <= threshold {
                    continue;
                }
            }
            expand_children(
                arena,
                wg,
                aggregation,
                &lmax.vertices,
                parent_mix,
                v,
                &mut explored,
                &mut fresh,
            );
            for child in fresh.drain(..) {
                // Line 16: ε-early acceptance.
                if options.epsilon > 0.0
                    && child.value >= lb
                    && results.len() < r
                    && !in_results.contains(&child.signature())
                {
                    in_results.insert(child.signature());
                    results.push(child.clone());
                }
                let pos = candidates
                    .binary_search_by(|c| c.ranking_cmp(&child))
                    .unwrap_or_else(|p| p);
                candidates.insert(pos, child);
            }
        }
        // Line 19: keep the candidate list at top-r.
        if options.trim_candidates && candidates.len() > r {
            candidates.truncate(r);
        }
    }

    results.sort_by(|a, b| a.ranking_cmp(b));
    results
}

/// The value of the r-th best community among results ∪ candidates, or
/// `−∞` when fewer than `r` exist. Results are all ≥ any candidate, so
/// take results first.
fn r_th_value(results: &[Community], candidates: &[Community], r: usize) -> f64 {
    let have = results.len();
    if have >= r {
        return results[r - 1].value;
    }
    let need = r - have;
    if candidates.len() >= need {
        candidates[need - 1].value
    } else {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{exact_topr, sum_naive};
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    #[test]
    fn rejects_bad_params() {
        let wg = figure1();
        assert!(tic_improved(&wg, 2, 0, Aggregation::Sum, 0.0).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Sum, 1.0).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Sum, -0.1).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Average, 0.0).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Min, 0.0).is_err());
    }

    #[test]
    fn figure1_exact_mode_matches_example1() {
        let wg = figure1();
        let top = tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
        assert_eq!(top[0].vertices, vs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[0].value, 203.0);
        assert_eq!(top[1].vertices, vs(&[1, 2, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[1].value, 195.0);
    }

    #[test]
    fn exact_mode_matches_oracle_for_deeper_r() {
        let wg = figure1();
        for r in [1, 2, 3, 5, 8] {
            let got = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Sum).unwrap();
            let got_vals: Vec<f64> = got.iter().map(|c| c.value).collect();
            let expect_vals: Vec<f64> = expect.iter().map(|c| c.value).collect();
            assert_eq!(got_vals, expect_vals, "r = {r}");
        }
    }

    #[test]
    fn exact_mode_matches_naive() {
        let wg = figure1();
        for r in [1, 2, 4, 6] {
            let a = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
            let b = sum_naive(&wg, 2, r, Aggregation::Sum).unwrap();
            let av: Vec<f64> = a.iter().map(|c| c.value).collect();
            let bv: Vec<f64> = b.iter().map(|c| c.value).collect();
            assert_eq!(av, bv, "r = {r}");
        }
    }

    #[test]
    fn matches_from_scratch_oracle() {
        let wg = figure1();
        for eps in [0.0, 0.1, 0.3] {
            for r in [1, 2, 4, 7] {
                assert_eq!(
                    tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap(),
                    crate::algo::oracle::tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap(),
                    "eps = {eps} r = {r}"
                );
            }
        }
    }

    #[test]
    fn approx_mode_satisfies_theorem6_bound() {
        let wg = figure1();
        for epsilon in [0.01, 0.05, 0.1, 0.2, 0.5] {
            for r in [1, 2, 3, 5] {
                let exact = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
                let approx = tic_improved(&wg, 2, r, Aggregation::Sum, epsilon).unwrap();
                assert_eq!(exact.len(), approx.len());
                let re = exact.last().unwrap().value;
                let ra = approx.last().unwrap().value;
                assert!(
                    ra >= (1.0 - epsilon) * re - 1e-9,
                    "eps={epsilon} r={r}: ra={ra} re={re}"
                );
            }
        }
    }

    #[test]
    fn snapshot_path_is_bit_identical() {
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for eps in [0.0, 0.1] {
            for r in [1, 3, 6] {
                assert_eq!(
                    tic_improved_on(&snap, 2, r, Aggregation::Sum, eps, &mut arena).unwrap(),
                    tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap(),
                    "eps = {eps} r = {r}"
                );
            }
        }
    }

    #[test]
    fn sum_surplus_supported() {
        let wg = figure1();
        let agg = Aggregation::SumSurplus { alpha: 2.0 };
        let top = tic_improved(&wg, 2, 2, agg, 0.0).unwrap();
        assert_eq!(top[0].value, 203.0 + 22.0);
        assert_eq!(top[1].value, 195.0 + 20.0);
    }

    #[test]
    fn empty_kcore_returns_empty() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        assert!(tic_improved(&wg, 2, 5, Aggregation::Sum, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn ablation_options_do_not_change_results() {
        let wg = figure1();
        let base = tic_improved(&wg, 2, 4, Aggregation::Sum, 0.0).unwrap();
        for opts in [
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: false,
                trim_candidates: true,
            },
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: true,
                trim_candidates: false,
            },
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: false,
                trim_candidates: false,
            },
        ] {
            let got = tic_improved_with_options(&wg, 2, 4, Aggregation::Sum, opts).unwrap();
            let gv: Vec<f64> = got.iter().map(|c| c.value).collect();
            let bv: Vec<f64> = base.iter().map(|c| c.value).collect();
            assert_eq!(gv, bv, "{opts:?}");
        }
    }

    #[test]
    fn two_components_with_disjoint_values() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0]).unwrap();
        let top = tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
        assert_eq!(top[0].value, 15.0);
        assert_eq!(top[1].value, 3.0);
    }
}
