//! Algorithm 2 (`TIC-IMPROVED`): best-first search with lower-bound
//! pruning. With `ε = 0` this is the exact "Improve" solver; with `ε > 0`
//! it is the "Approx" solver with the (1−ε) guarantee of Theorem 6
//! (Definition 8: the returned r-th value is ≥ (1−ε)·the exact r-th value).
//!
//! As printed in the paper, line 16 can only ever admit children whose
//! value ties the current maximum when ε = 0, so `R` would never fill; we
//! implement the evidently intended semantics (see DESIGN.md §4): each
//! popped maximum is *confirmed* into the result set — it dominates every
//! unexplored candidate because the aggregation is anti-monotone under
//! removal (Corollary 2) — and children within `(1−ε)` of the current
//! maximum are early-accepted, which is what makes the approximate variant
//! cheaper.
//!
//! The expansion loop runs on the zero-rebuild [`PeelArena`] (see
//! DESIGN.md §5): the popped maximum is loaded once, every candidate
//! deletion is a journaled cascade + rollback touching only the affected
//! frontier, and children are deduplicated by an order-independent set
//! key off the unsorted component buffer before any allocation happens.
//! The from-scratch formulation is preserved as
//! [`crate::algo::oracle::tic_improved`] for the property tests and the
//! perf baseline.

use crate::algo::common::{
    community_from_vertices, expand_children, require_corollary2, validate_k_r, vertex_mix_sum,
    vertex_set_key,
};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{VertexId, WeightedGraph};
use ic_kcore::{maximal_kcore_components, Budget, GraphSnapshot, PeelArena};
use std::collections::HashSet;
use std::sync::Arc;

/// Tuning knobs for [`tic_improved_with_options`]; used by the pruning
/// ablation experiment.
#[derive(Clone, Copy, Debug)]
pub struct ImprovedOptions {
    /// Approximation parameter ε ∈ [0, 1). 0 = exact.
    pub epsilon: f64,
    /// Prune a deletion whose pre-cascade value cannot beat the current
    /// r-th best (line 13 of the paper). Disable only for ablation.
    pub prune_by_threshold: bool,
    /// Keep the candidate list trimmed to the top-r (line 19). Disable
    /// only for ablation.
    pub trim_candidates: bool,
}

impl Default for ImprovedOptions {
    fn default() -> Self {
        ImprovedOptions {
            epsilon: 0.0,
            prune_by_threshold: true,
            trim_candidates: true,
        }
    }
}

/// Runs Algorithm 2 with the given ε (`0.0` = exact "Improve", `> 0` =
/// "Approx"). The aggregation must declare the removal-decreasing
/// certificate (Corollary 2).
///
/// Crate-internal since PR 4: external callers route through
/// [`crate::Query::solve`] / [`crate::Query::solve_on`] or
/// `ic_engine::Engine`; [`tic_improved_on`] remains the public
/// snapshot-based entry point.
pub(crate) fn tic_improved(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    epsilon: f64,
) -> Result<Vec<Community>, SearchError> {
    tic_improved_with_options(
        wg,
        k,
        r,
        aggregation,
        ImprovedOptions {
            epsilon,
            ..Default::default()
        },
    )
}

/// `TIC-IMPROVED` with explicit pruning switches (for ablations).
pub fn tic_improved_with_options(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    options: ImprovedOptions,
) -> Result<Vec<Community>, SearchError> {
    validate_improved(r, aggregation, &options)?;
    let comps = maximal_kcore_components(wg.graph(), k);
    let mut arena = PeelArena::for_graph(wg.graph());
    Ok(run_improved(
        wg,
        comps,
        k,
        r,
        aggregation,
        options,
        &mut arena,
    ))
}

/// Algorithm 2 against a [`GraphSnapshot`]: the k-core components
/// come from the snapshot's memoized level and the search runs on the
/// caller's (typically pooled) arena. Output is bit-identical to
/// [`crate::Query::solve`] on the same query.
pub fn tic_improved_on(
    snap: &GraphSnapshot,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    epsilon: f64,
    arena: &mut PeelArena,
) -> Result<Vec<Community>, SearchError> {
    let options = ImprovedOptions {
        epsilon,
        ..Default::default()
    };
    validate_improved(r, aggregation, &options)?;
    let level = snap.level(k);
    Ok(run_improved(
        snap.weighted(),
        level.components.clone(),
        k,
        r,
        aggregation,
        options,
        arena,
    ))
}

fn validate_improved(
    r: usize,
    aggregation: Aggregation,
    options: &ImprovedOptions,
) -> Result<(), SearchError> {
    validate_k_r(r)?;
    require_corollary2("tic_improved", aggregation)?;
    if !(0.0..1.0).contains(&options.epsilon) {
        return Err(SearchError::InvalidParams(format!(
            "epsilon must be in [0, 1), got {}",
            options.epsilon
        )));
    }
    Ok(())
}

fn run_improved(
    wg: &WeightedGraph,
    comps: Vec<Vec<VertexId>>,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    options: ImprovedOptions,
    arena: &mut PeelArena,
) -> Vec<Community> {
    let mut emission = TicEmission::new(wg, comps, k, r, aggregation, options);
    let mut results = Vec::with_capacity(r.min(1024));
    while let Some(c) = emission.next_community(wg, arena) {
        results.push(c);
    }
    results
}

/// Progressive emission for `TIC-IMPROVED` — the incremental hook
/// behind `ic_engine::Engine::submit` for the removal-decreasing
/// aggregations. The search loop of Algorithm 2 is a state machine
/// here: every pull advances it just far enough to *prove* the next
/// community's final rank, then yields it.
///
/// In exact mode (ε = 0) confirmations leave the candidate heap in
/// non-increasing value order, so a confirmed community whose value is
/// **strictly** above the best remaining candidate can never be
/// outranked by anything the search finds later — it is emitted
/// immediately. Value ties are held back until the boundary resolves
/// (the batch solver breaks them with `ranking_cmp` in its final sort;
/// the emitter does the same per tie group), so the emitted sequence is
/// bit-for-bit the batch result. Approximate mode (ε > 0) early-accepts
/// out of rank order and therefore buffers: everything is emitted only
/// once the search finishes, behind the same API.
///
/// Dropping the emitter abandons the remaining search (cancellation is
/// free). `run_improved` itself drives this machine to completion, so
/// there is exactly one implementation of Algorithm 2.
#[derive(Clone, Debug)]
pub struct TicEmission {
    k: usize,
    r: usize,
    aggregation: Aggregation,
    options: ImprovedOptions,
    /// Line-13 pruning needs the O(1) remove delta; aggregations
    /// without the `incremental_removal` certificate run unpruned.
    prune_with_delta: bool,
    candidates: Vec<Community>,
    explored: HashSet<u64>,
    in_results: HashSet<u64>,
    /// Confirmed communities in confirmation order (non-increasing value
    /// in exact mode).
    results: Vec<Community>,
    /// How many of `results` have been moved to `emit`.
    emitted: usize,
    emit: std::collections::VecDeque<Community>,
    fresh: Vec<Community>,
    finished: bool,
    /// Cooperative deadline: checkpointed in the per-vertex expansion
    /// loop; also handed to the arena so long cascades keep the shared
    /// flag fresh.
    budget: Option<Arc<Budget>>,
    /// Whether the search was cut short by its budget (the emitted
    /// sequence is then a certified prefix / best-so-far, not the full
    /// answer).
    aborted: bool,
}

impl TicEmission {
    /// Starts a progressive `TIC-IMPROVED` run against a snapshot
    /// (`ε = 0` exact, `ε > 0` approximate-buffered). The search itself
    /// runs lazily inside [`next_community`](Self::next_community).
    pub fn start_on(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        aggregation: Aggregation,
        epsilon: f64,
    ) -> Result<Self, SearchError> {
        let options = ImprovedOptions {
            epsilon,
            ..Default::default()
        };
        validate_improved(r, aggregation, &options)?;
        let level = snap.level(k);
        Ok(Self::new(
            snap.weighted(),
            level.components.clone(),
            k,
            r,
            aggregation,
            options,
        ))
    }

    fn new(
        wg: &WeightedGraph,
        comps: Vec<Vec<VertexId>>,
        k: usize,
        r: usize,
        aggregation: Aggregation,
        options: ImprovedOptions,
    ) -> Self {
        // Line 1-2: candidate list seeded with the k-core components.
        let mut candidates: Vec<Community> = comps
            .into_iter()
            .map(|c| community_from_vertices(wg, aggregation, c))
            .collect();
        candidates.sort_by(|a, b| a.ranking_cmp(b));
        if options.trim_candidates {
            candidates.truncate(r);
        }
        let explored: HashSet<u64> = candidates
            .iter()
            .map(|c| vertex_set_key(&c.vertices))
            .collect();
        TicEmission {
            k,
            r,
            aggregation,
            options,
            prune_with_delta: aggregation.certificates().incremental_removal,
            candidates,
            explored,
            in_results: HashSet::new(),
            results: Vec::new(),
            emitted: 0,
            emit: std::collections::VecDeque::new(),
            fresh: Vec::new(),
            finished: false,
            budget: None,
            aborted: false,
        }
    }

    /// Arms (or disarms) a cooperative deadline. On expiry the search
    /// stops at the next checkpoint: in exact mode every confirmed
    /// community whose value is **strictly** above the interrupted
    /// maximum is still emitted — children are strictly smaller under
    /// removal (Corollary 2), so that prefix is provably final, bit for
    /// bit — and in approximate mode everything confirmed so far is
    /// emitted as best-so-far. [`Self::deadline_aborted`] reports
    /// whether truncation happened.
    pub fn set_budget(&mut self, budget: Option<Arc<Budget>>) {
        self.budget = budget;
    }

    /// Whether the search was cut short by its budget (the emitted
    /// sequence is a proven prefix / best-so-far rather than the full
    /// answer).
    pub fn deadline_aborted(&self) -> bool {
        self.aborted
    }

    /// Pulls the next community in final rank order, advancing the
    /// search as little as possible. `wg` must be the graph the emission
    /// was started on; `arena` is the caller's (typically pooled) peel
    /// arena.
    pub fn next_community(
        &mut self,
        wg: &WeightedGraph,
        arena: &mut PeelArena,
    ) -> Option<Community> {
        loop {
            if let Some(c) = self.emit.pop_front() {
                return Some(c);
            }
            if self.finished {
                return None;
            }
            self.advance(wg, arena);
        }
    }

    /// One iteration of Algorithm 2's outer loop (or termination).
    fn advance(&mut self, wg: &WeightedGraph, arena: &mut PeelArena) {
        ic_fail::fail_point!("core::tic_advance");
        if self.results.len() >= self.r || self.candidates.is_empty() {
            self.finish();
            return;
        }
        if let Some(b) = &self.budget {
            if b.check() {
                self.deadline_abort(f64::INFINITY);
                return;
            }
        }
        // Pop the maximum candidate (kept sorted best-first).
        let lmax = self.candidates.remove(0);
        let sig = lmax.signature();
        if !self.in_results.contains(&sig) {
            self.in_results.insert(sig);
            self.results.push(lmax.clone());
            if self.results.len() == self.r {
                self.finish();
                return;
            }
        }
        let lb = (1.0 - self.options.epsilon) * lmax.value;
        // f(Lr): the value of the r-th best known candidate/result.
        let threshold = r_th_value(&self.results, &self.candidates, self.r);

        // One load per popped maximum; every deletion below is an
        // O(affected) journaled cascade instead of a full re-peel. The
        // articulation marks are the no-split certificate for the O(1)
        // fast path below.
        arena.set_budget(self.budget.clone());
        arena.load(wg.graph(), &lmax.vertices, self.k);
        arena.mark_articulation_points();
        let parent_mix = vertex_mix_sum(&lmax.vertices);
        let mut fresh = std::mem::take(&mut self.fresh);
        for &v in &lmax.vertices {
            // Deadline checkpoint between journaled deletions: aborting
            // here certifies every confirmation strictly above
            // `lmax.value` (children are strictly smaller, Corollary 2).
            // A bare flag load suffices — the arena's cascade polls the
            // shared budget and keeps the flag fresh, so ticking it
            // again here would only double the atomic traffic.
            if let Some(b) = &self.budget {
                if b.expired() {
                    self.fresh = fresh;
                    self.deadline_abort(lmax.value);
                    return;
                }
            }
            // Line 13: the pre-cascade value of Lmax ∖ {v} upper-bounds
            // every child it can produce. Available exactly when the
            // aggregation certifies an O(1) remove delta; otherwise the
            // search runs unpruned (still correct — pruning is an
            // optimization, not a correctness requirement).
            if self.options.prune_by_threshold && self.prune_with_delta {
                let upper = self
                    .aggregation
                    .value_after_removal(lmax.value, wg.weight(v));
                if upper <= threshold {
                    continue;
                }
            }
            expand_children(
                arena,
                wg,
                self.aggregation,
                lmax.value,
                &lmax.vertices,
                parent_mix,
                v,
                &mut self.explored,
                &mut fresh,
            );
            for child in fresh.drain(..) {
                // Line 16: ε-early acceptance.
                if self.options.epsilon > 0.0
                    && child.value >= lb
                    && self.results.len() < self.r
                    && !self.in_results.contains(&child.signature())
                {
                    self.in_results.insert(child.signature());
                    self.results.push(child.clone());
                }
                let pos = self
                    .candidates
                    .binary_search_by(|c| c.ranking_cmp(&child))
                    .unwrap_or_else(|p| p);
                self.candidates.insert(pos, child);
            }
        }
        self.fresh = fresh;
        // Line 19: keep the candidate list at top-r.
        if self.options.trim_candidates && self.candidates.len() > self.r {
            self.candidates.truncate(self.r);
        }
        self.drain_ready();
    }

    /// Exact mode only: moves every confirmed community whose value is
    /// strictly above the best remaining candidate into the emit queue.
    /// Such a community can never be outranked — future confirmations
    /// pop from the candidate heap, so their values are bounded by the
    /// current best candidate. Tie groups are sorted by `ranking_cmp`
    /// within the batch, reproducing the batch solver's final sort
    /// piecewise (value strictly separates successive batches).
    fn drain_ready(&mut self) {
        if self.options.epsilon > 0.0 {
            return; // buffered: early accepts break rank monotonicity
        }
        let bar = self
            .candidates
            .first()
            .map_or(f64::NEG_INFINITY, |c| c.value);
        let mut end = self.emitted;
        while end < self.results.len() && self.results[end].value.total_cmp(&bar).is_gt() {
            end += 1;
        }
        if end > self.emitted {
            let mut batch = self.results[self.emitted..end].to_vec();
            batch.sort_by(|a, b| a.ranking_cmp(b));
            self.emit.extend(batch);
            self.emitted = end;
        }
    }

    /// Deadline expiry: terminates the search, emitting only what is
    /// *provable* at this point. Exact mode emits confirmations whose
    /// value is strictly above `bar` (the interrupted maximum): every
    /// unexplored candidate and every future child is ≤ `bar`, so that
    /// prefix equals the full run's prefix bit for bit (tie groups
    /// strictly inside the range sort identically). Approximate mode has
    /// no rank certificate to preserve and flushes everything confirmed
    /// so far as best-so-far.
    fn deadline_abort(&mut self, bar: f64) {
        self.aborted = true;
        self.finished = true;
        let end = if self.options.epsilon > 0.0 {
            self.results.len()
        } else {
            let mut end = self.emitted;
            while end < self.results.len() && self.results[end].value.total_cmp(&bar).is_gt() {
                end += 1;
            }
            end
        };
        let mut batch = self.results[self.emitted..end].to_vec();
        batch.sort_by(|a, b| a.ranking_cmp(b));
        self.emit.extend(batch);
        // Everything past `end` is confirmed but uncertified at the
        // deadline; it is dropped, not emitted out of rank order.
        self.emitted = self.results.len();
    }

    /// Terminates the search and flushes every unemitted confirmation in
    /// `ranking_cmp` order (the batch solver's final sort).
    fn finish(&mut self) {
        self.finished = true;
        let mut rest = self.results[self.emitted..].to_vec();
        rest.sort_by(|a, b| a.ranking_cmp(b));
        self.emit.extend(rest);
        self.emitted = self.results.len();
    }
}

/// The value of the r-th best community among results ∪ candidates, or
/// `−∞` when fewer than `r` exist. Results are all ≥ any candidate, so
/// take results first.
fn r_th_value(results: &[Community], candidates: &[Community], r: usize) -> f64 {
    let have = results.len();
    if have >= r {
        return results[r - 1].value;
    }
    let need = r - have;
    if candidates.len() >= need {
        candidates[need - 1].value
    } else {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{exact_topr, oracle};
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    #[test]
    fn rejects_bad_params() {
        let wg = figure1();
        assert!(tic_improved(&wg, 2, 0, Aggregation::Sum, 0.0).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Sum, 1.0).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Sum, -0.1).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Average, 0.0).is_err());
        assert!(tic_improved(&wg, 2, 2, Aggregation::Min, 0.0).is_err());
    }

    #[test]
    fn figure1_exact_mode_matches_example1() {
        let wg = figure1();
        let top = tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
        assert_eq!(top[0].vertices, vs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[0].value, 203.0);
        assert_eq!(top[1].vertices, vs(&[1, 2, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[1].value, 195.0);
    }

    #[test]
    fn exact_mode_matches_oracle_for_deeper_r() {
        let wg = figure1();
        for r in [1, 2, 3, 5, 8] {
            let got = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Sum).unwrap();
            let got_vals: Vec<f64> = got.iter().map(|c| c.value).collect();
            let expect_vals: Vec<f64> = expect.iter().map(|c| c.value).collect();
            assert_eq!(got_vals, expect_vals, "r = {r}");
        }
    }

    #[test]
    fn exact_mode_matches_naive() {
        let wg = figure1();
        for r in [1, 2, 4, 6] {
            let a = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
            let b = oracle::sum_naive(&wg, 2, r, Aggregation::Sum).unwrap();
            let av: Vec<f64> = a.iter().map(|c| c.value).collect();
            let bv: Vec<f64> = b.iter().map(|c| c.value).collect();
            assert_eq!(av, bv, "r = {r}");
        }
    }

    #[test]
    fn matches_from_scratch_oracle() {
        let wg = figure1();
        for eps in [0.0, 0.1, 0.3] {
            for r in [1, 2, 4, 7] {
                assert_eq!(
                    tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap(),
                    crate::algo::oracle::tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap(),
                    "eps = {eps} r = {r}"
                );
            }
        }
    }

    #[test]
    fn approx_mode_satisfies_theorem6_bound() {
        let wg = figure1();
        for epsilon in [0.01, 0.05, 0.1, 0.2, 0.5] {
            for r in [1, 2, 3, 5] {
                let exact = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
                let approx = tic_improved(&wg, 2, r, Aggregation::Sum, epsilon).unwrap();
                assert_eq!(exact.len(), approx.len());
                let re = exact.last().unwrap().value;
                let ra = approx.last().unwrap().value;
                assert!(
                    ra >= (1.0 - epsilon) * re - 1e-9,
                    "eps={epsilon} r={r}: ra={ra} re={re}"
                );
            }
        }
    }

    #[test]
    fn snapshot_path_is_bit_identical() {
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for eps in [0.0, 0.1] {
            for r in [1, 3, 6] {
                assert_eq!(
                    tic_improved_on(&snap, 2, r, Aggregation::Sum, eps, &mut arena).unwrap(),
                    tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap(),
                    "eps = {eps} r = {r}"
                );
            }
        }
    }

    #[test]
    fn emission_prefix_equals_batch_for_every_r_and_epsilon() {
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for eps in [0.0, 0.1, 0.4] {
            for r in [1usize, 2, 4, 7, 50] {
                let full = tic_improved(&wg, 2, r, Aggregation::Sum, eps).unwrap();
                let mut em = TicEmission::start_on(&snap, 2, r, Aggregation::Sum, eps).unwrap();
                let mut got = Vec::new();
                while let Some(c) = em.next_community(&wg, &mut arena) {
                    got.push(c);
                }
                assert_eq!(got, full, "full drain eps={eps} r={r}");
                // Genuine prefix: pull n items, then stop (cancellation).
                for n in [1usize, full.len() / 2] {
                    let n = n.min(full.len());
                    let mut em = TicEmission::start_on(&snap, 2, r, Aggregation::Sum, eps).unwrap();
                    let mut prefix = Vec::new();
                    for _ in 0..n {
                        prefix.push(em.next_community(&wg, &mut arena).unwrap());
                    }
                    assert_eq!(
                        prefix.as_slice(),
                        &full[..n],
                        "prefix eps={eps} r={r} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn emission_holds_back_value_ties_until_resolved() {
        // Two disjoint triangles with identical weights: the top-2 sum
        // values tie at 9.0, so the emitter must not commit an order
        // until the boundary is proven; the final sequence still equals
        // the batch result bit for bit.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for r in [1usize, 2, 5] {
            let full = tic_improved(&wg, 2, r, Aggregation::Sum, 0.0).unwrap();
            let mut em = TicEmission::start_on(&snap, 2, r, Aggregation::Sum, 0.0).unwrap();
            let mut got = Vec::new();
            while let Some(c) = em.next_community(&wg, &mut arena) {
                got.push(c);
            }
            assert_eq!(got, full, "tie graph r={r}");
        }
    }

    #[test]
    fn budgeted_emission_yields_a_certified_prefix_or_best_so_far() {
        use std::time::Duration;
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        // Generous budget: identical to the unbudgeted drain, no abort.
        let full = tic_improved(&wg, 2, 7, Aggregation::Sum, 0.0).unwrap();
        let mut em = TicEmission::start_on(&snap, 2, 7, Aggregation::Sum, 0.0).unwrap();
        em.set_budget(Some(Arc::new(Budget::within(Duration::from_secs(3600)))));
        let mut got = Vec::new();
        while let Some(c) = em.next_community(&wg, &mut arena) {
            got.push(c);
        }
        assert_eq!(got, full);
        assert!(!em.deadline_aborted());
        // Already-expired budget: whatever is emitted is a bit-identical
        // prefix of the full answer, and the truncation is reported.
        for eps in [0.0, 0.2] {
            let full = tic_improved(&wg, 2, 7, Aggregation::Sum, eps).unwrap();
            let mut em = TicEmission::start_on(&snap, 2, 7, Aggregation::Sum, eps).unwrap();
            let expired = Arc::new(Budget::within(Duration::from_millis(0)));
            std::thread::sleep(Duration::from_millis(2));
            assert!(expired.check());
            em.set_budget(Some(expired));
            let mut got = Vec::new();
            while let Some(c) = em.next_community(&wg, &mut arena) {
                got.push(c);
            }
            assert!(em.deadline_aborted(), "eps={eps}");
            if eps == 0.0 {
                assert_eq!(got.as_slice(), &full[..got.len()], "certified prefix");
            }
            assert!(got.len() < full.len(), "expired budget cannot finish");
        }
        arena.set_budget(None);
    }

    #[test]
    fn sum_surplus_supported() {
        let wg = figure1();
        let agg = Aggregation::SumSurplus { alpha: 2.0 };
        let top = tic_improved(&wg, 2, 2, agg, 0.0).unwrap();
        assert_eq!(top[0].value, 203.0 + 22.0);
        assert_eq!(top[1].value, 195.0 + 20.0);
    }

    #[test]
    fn empty_kcore_returns_empty() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        assert!(tic_improved(&wg, 2, 5, Aggregation::Sum, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn ablation_options_do_not_change_results() {
        let wg = figure1();
        let base = tic_improved(&wg, 2, 4, Aggregation::Sum, 0.0).unwrap();
        for opts in [
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: false,
                trim_candidates: true,
            },
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: true,
                trim_candidates: false,
            },
            ImprovedOptions {
                epsilon: 0.0,
                prune_by_threshold: false,
                trim_candidates: false,
            },
        ] {
            let got = tic_improved_with_options(&wg, 2, 4, Aggregation::Sum, opts).unwrap();
            let gv: Vec<f64> = got.iter().map(|c| c.value).collect();
            let bv: Vec<f64> = base.iter().map(|c| c.value).collect();
            assert_eq!(gv, bv, "{opts:?}");
        }
    }

    #[test]
    fn two_components_with_disjoint_values() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0]).unwrap();
        let top = tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
        assert_eq!(top[0].value, 15.0);
        assert_eq!(top[1].value, 3.0);
    }
}
