//! Baselines for the node-domination aggregations: top-r search under
//! `min` (prior work: Li et al. VLDB'15, Bi et al. VLDB'18) and its mirror
//! image `max`.
//!
//! Under `min`, the k-influential communities are exactly the connected
//! components of the k-core of `G≥θ` (the graph restricted to weights
//! ≥ θ): each such component is maximal with value equal to its minimum
//! member weight. Peeling the global minimum-weight vertex (with degree
//! cascade) from the maximal k-core enumerates every such community right
//! before its minimum vertex disappears. `max` is symmetric (peel from
//! above). Two passes: the first records the peel timeline, the second
//! replays it and snapshots only the top-r communities — O(n+m + r·(n+m)).
//!
//! Both passes run on a single [`PeelArena`]: the k-core is loaded once
//! per pass and every deletion is an O(affected) committed cascade — no
//! per-event mask clones, no `HashSet` on the replay path (events are
//! marked in a flat bitmap), and component snapshots go through the
//! arena's reusable BFS buffer.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{BitSet, VertexId, WeightedGraph};
use ic_kcore::{kcore_mask, Budget, GraphSnapshot, PeelArena};
use std::collections::VecDeque;
use std::sync::Arc;

/// Top-r k-influential communities under `f = min`, best first.
pub(crate) fn min_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Min)
}

/// Top-r k-influential communities under `f = max`, best first.
pub(crate) fn max_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Max)
}

/// `min`-peeling against a [`GraphSnapshot`]: the k-core mask comes from
/// the snapshot's memoized level and the peel runs on the caller's
/// (typically pooled) arena. Output is bit-identical to the routed
/// per-graph peel (`Query::solve`).
pub fn min_topr_on(
    snap: &GraphSnapshot,
    k: usize,
    r: usize,
    arena: &mut PeelArena,
) -> Result<Vec<Community>, SearchError> {
    Ok(min_topr_multi_on(snap, k, &[r], arena)?
        .pop()
        .expect("one r"))
}

/// `max`-peeling against a [`GraphSnapshot`]; see [`min_topr_on`].
pub fn max_topr_on(
    snap: &GraphSnapshot,
    k: usize,
    r: usize,
    arena: &mut PeelArena,
) -> Result<Vec<Community>, SearchError> {
    Ok(max_topr_multi_on(snap, k, &[r], arena)?
        .pop()
        .expect("one r"))
}

/// Answers several top-r `min` queries over the same `k` with **one**
/// two-pass peel: the timeline (pass 1) and the component snapshots
/// (pass 2) are shared across every requested `r`, and only the
/// per-`r` event selection differs. Entry `i` of the result is
/// bit-identical to `min_topr(wg, k, rs[i])`. This is the batched
/// engine's r-family merge: `t` queries cost one peel instead of `t`.
pub fn min_topr_multi_on(
    snap: &GraphSnapshot,
    k: usize,
    rs: &[usize],
    arena: &mut PeelArena,
) -> Result<Vec<Vec<Community>>, SearchError> {
    for &r in rs {
        validate_k_r(r)?;
    }
    let level = snap.level(k);
    Ok(peel_topr_multi(
        snap.weighted(),
        &level.mask,
        k,
        rs,
        Extreme::Min,
        arena,
    ))
}

/// The `max` counterpart of [`min_topr_multi_on`].
pub fn max_topr_multi_on(
    snap: &GraphSnapshot,
    k: usize,
    rs: &[usize],
    arena: &mut PeelArena,
) -> Result<Vec<Vec<Community>>, SearchError> {
    for &r in rs {
        validate_k_r(r)?;
    }
    let level = snap.level(k);
    Ok(peel_topr_multi(
        snap.weighted(),
        &level.mask,
        k,
        rs,
        Extreme::Max,
        arena,
    ))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extreme {
    Min,
    Max,
}

/// Progressive, rank-order emission for the `min`/`max` peels — the
/// incremental hook behind `ic_engine::Engine::submit`.
///
/// [`MinMaxEmission::start_min`]/[`start_max`](MinMaxEmission::start_max)
/// run **one** stamped peel pass: every removal event records its value,
/// and every vertex records *which event* removed it
/// ([`PeelArena::journaled`]). The community witnessed by event `s` is
/// then reconstructible at any time, in any order, as the connected
/// component of the event vertex among vertices with removal stamp
/// ≥ `s` — no replay pass. Events are ranked `(value desc, seq asc)`
/// exactly like the batch solver, and
/// [`next_community`](MinMaxEmission::next_community) materializes
/// them lazily, one BFS
/// per pull (tie groups materialize together so the emitted order is
/// the batch solver's final `ranking_cmp` order).
///
/// **Prefix guarantee:** the first `n` communities pulled equal the
/// first `n` entries of the batch peel solvers with the same `(k,
/// r)`, bit for bit. Dropping the emitter simply skips the remaining
/// BFS work (cancellation is free).
#[derive(Clone, Debug)]
pub struct MinMaxEmission {
    aggregation: Aggregation,
    /// `removal_stamp[v]` = index of the event whose cascade removed
    /// `v`; `u32::MAX` for vertices outside the maximal k-core.
    removal_stamp: Vec<u32>,
    /// Selected events in emission (rank) order: `(seq, vertex, value)`.
    ranked: Vec<(u32, VertexId, f64)>,
    cursor: usize,
    /// Materialized tie group awaiting emission.
    pending: VecDeque<Community>,
    /// BFS scratch.
    visited: Vec<bool>,
    queue: Vec<VertexId>,
}

impl MinMaxEmission {
    /// Starts a progressive `min` emission: one stamped peel pass over
    /// the snapshot's `k`-core on the caller's arena, then lazy
    /// materialization. The arena is only used inside this call.
    pub fn start_min(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        arena: &mut PeelArena,
    ) -> Result<Self, SearchError> {
        Self::start(snap, k, r, Extreme::Min, arena)
    }

    /// The `max` counterpart of [`MinMaxEmission::start_min`].
    pub fn start_max(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        arena: &mut PeelArena,
    ) -> Result<Self, SearchError> {
        Self::start(snap, k, r, Extreme::Max, arena)
    }

    /// [`MinMaxEmission::start_min`] under a cooperative deadline: the
    /// stamped peel pass checkpoints `budget` between removal events
    /// (and the cascade itself keeps the shared flag fresh). Returns
    /// `Ok(None)` when the budget expires before the pass completes —
    /// the event ranking is only proven by the *full* peel, so an
    /// interrupted pass certifies nothing and the caller must report
    /// `DeadlineExceeded` rather than a partial answer.
    pub fn start_min_budgeted(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        arena: &mut PeelArena,
        budget: &Arc<Budget>,
    ) -> Result<Option<Self>, SearchError> {
        Self::start_impl(snap, k, r, Extreme::Min, arena, Some(budget))
    }

    /// The `max` counterpart of [`MinMaxEmission::start_min_budgeted`].
    pub fn start_max_budgeted(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        arena: &mut PeelArena,
        budget: &Arc<Budget>,
    ) -> Result<Option<Self>, SearchError> {
        Self::start_impl(snap, k, r, Extreme::Max, arena, Some(budget))
    }

    fn start(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        dir: Extreme,
        arena: &mut PeelArena,
    ) -> Result<Self, SearchError> {
        Ok(Self::start_impl(snap, k, r, dir, arena, None)?
            .expect("an unbudgeted start always completes"))
    }

    fn start_impl(
        snap: &GraphSnapshot,
        k: usize,
        r: usize,
        dir: Extreme,
        arena: &mut PeelArena,
        budget: Option<&Arc<Budget>>,
    ) -> Result<Option<Self>, SearchError> {
        validate_k_r(r)?;
        let wg = snap.weighted();
        let g = wg.graph();
        let level = snap.level(k);

        let mut order: Vec<u32> = level.mask.iter().map(|v| v as u32).collect();
        sort_peel_order(&mut order, wg, dir);

        // Stamped pass 1: identical event sequence to `peel_topr_multi`,
        // but each event also stamps the vertices its cascade removed.
        // Under a budget the cascade keeps the shared expiry flag fresh
        // and each event boundary checkpoints it; an expired pass proves
        // no ranking, so it is abandoned wholesale.
        let mut removal_stamp = vec![u32::MAX; g.num_vertices()];
        let mut events: Vec<(VertexId, f64)> = Vec::with_capacity(order.len());
        arena.set_budget(budget.cloned());
        arena.load(g, &order, k);
        for &v in &order {
            if let Some(b) = budget {
                if b.poll() {
                    arena.set_budget(None);
                    return Ok(None);
                }
            }
            if arena.is_live(v) {
                let seq = events.len() as u32;
                arena.remove_cascade(v);
                for u in arena.journaled() {
                    removal_stamp[u as usize] = seq;
                }
                arena.commit();
                events.push((v, wg.weight(v)));
            }
        }
        arena.set_budget(None);

        // Rank events (value desc, seq asc) and keep the top r — the
        // same selection rule as the batch path.
        let mut ranked_seqs: Vec<u32> = (0..events.len() as u32).collect();
        ranked_seqs.sort_by(|&a, &b| {
            events[b as usize]
                .1
                .total_cmp(&events[a as usize].1)
                .then_with(|| a.cmp(&b))
        });
        ranked_seqs.truncate(r);
        let ranked = ranked_seqs
            .into_iter()
            .map(|s| (s, events[s as usize].0, events[s as usize].1))
            .collect();

        Ok(Some(MinMaxEmission {
            aggregation: match dir {
                Extreme::Min => Aggregation::Min,
                Extreme::Max => Aggregation::Max,
            },
            removal_stamp,
            ranked,
            cursor: 0,
            pending: VecDeque::new(),
            visited: vec![false; g.num_vertices()],
            queue: Vec::new(),
        }))
    }

    /// Total communities this emission will yield (`min(r, #events)`).
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether the emission yields nothing (empty k-core).
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// Materializes the community of the ranked event at `i` with one
    /// BFS over still-live-at-that-event vertices.
    fn materialize(&mut self, wg: &WeightedGraph, i: usize) -> Community {
        let (seq, start, _) = self.ranked[i];
        let g = wg.graph();
        self.queue.clear();
        self.queue.push(start);
        self.visited[start as usize] = true;
        let mut head = 0;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            for &u in g.neighbors(x) {
                let ui = u as usize;
                let stamp = self.removal_stamp[ui];
                if stamp != u32::MAX && stamp >= seq && !self.visited[ui] {
                    self.visited[ui] = true;
                    self.queue.push(u);
                }
            }
        }
        for &u in &self.queue {
            self.visited[u as usize] = false;
        }
        community_from_vertices(wg, self.aggregation, self.queue.clone())
    }

    /// Pulls the next community in final rank order. `wg` must be the
    /// graph the emission was started on. Each pull costs one component
    /// BFS (a whole tie group materializes on its first pull).
    pub fn next_community(&mut self, wg: &WeightedGraph) -> Option<Community> {
        if let Some(c) = self.pending.pop_front() {
            return Some(c);
        }
        if self.cursor >= self.ranked.len() {
            return None;
        }
        // Find the run of events tied on value: within it, the final
        // order is decided by `ranking_cmp` over the materialized
        // communities (exactly the batch solver's final sort), so the
        // whole group materializes together.
        let lo = self.cursor;
        let v0 = self.ranked[lo].2;
        let mut hi = lo + 1;
        while hi < self.ranked.len() && self.ranked[hi].2.total_cmp(&v0).is_eq() {
            hi += 1;
        }
        self.cursor = hi;
        if hi - lo == 1 {
            return Some(self.materialize(wg, lo));
        }
        let mut group: Vec<Community> = (lo..hi).map(|i| self.materialize(wg, i)).collect();
        group.sort_by(|a, b| a.ranking_cmp(b));
        self.pending.extend(group);
        self.pending.pop_front()
    }
}

fn sort_peel_order(order: &mut [u32], wg: &WeightedGraph, dir: Extreme) {
    order.sort_unstable_by(|&a, &b| {
        let (wa, wb) = (wg.weight(a), wg.weight(b));
        let c = match dir {
            Extreme::Min => wa.total_cmp(&wb),
            Extreme::Max => wb.total_cmp(&wa),
        };
        c.then_with(|| a.cmp(&b))
    });
}

fn peel_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    dir: Extreme,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    let g = wg.graph();
    let core = kcore_mask(g, k);
    let mut arena = PeelArena::for_graph(g);
    Ok(peel_topr_multi(wg, &core, k, &[r], dir, &mut arena)
        .pop()
        .expect("one r in, one list out"))
}

/// Shared implementation: one timeline + one replay serving every
/// requested `r`. Entry `i` of the result answers `rs[i]`.
fn peel_topr_multi(
    wg: &WeightedGraph,
    core: &BitSet,
    k: usize,
    rs: &[usize],
    dir: Extreme,
    arena: &mut PeelArena,
) -> Vec<Vec<Community>> {
    let g = wg.graph();
    let r_max = rs.iter().copied().max().unwrap_or(0);

    // Peel order: ascending weight for min, descending for max; vertex id
    // breaks ties deterministically. Shared with the progressive
    // emission path so the two can never drift apart.
    let mut order: Vec<u32> = core.iter().map(|v| v as u32).collect();
    sort_peel_order(&mut order, wg, dir);

    // Pass 1: record the value of every extreme-vertex removal event.
    // Each visit of a still-live vertex is one event; the community it
    // witnesses is its component right before the removal.
    let mut event_values: Vec<f64> = Vec::with_capacity(order.len());
    arena.load(g, &order, k);
    for &v in &order {
        if arena.is_live(v) {
            event_values.push(wg.weight(v));
            arena.remove_cascade(v);
            arena.commit();
        }
    }

    // Rank events by value (sequence number for determinism). The top-r
    // events for any r are a prefix of this ranking, so one replay
    // snapshotting the r_max best serves every requested r.
    let mut ranked: Vec<usize> = (0..event_values.len()).collect();
    ranked.sort_by(|&a, &b| {
        event_values[b]
            .total_cmp(&event_values[a])
            .then_with(|| a.cmp(&b))
    });
    ranked.truncate(r_max);
    const UNSELECTED: usize = usize::MAX;
    let mut rank_of_seq = vec![UNSELECTED; event_values.len()];
    for (pos, &s) in ranked.iter().enumerate() {
        rank_of_seq[s] = pos;
    }

    // Pass 2: replay, snapshotting the component of each selected event
    // through the arena's reusable BFS buffer, indexed by event rank.
    let agg = match dir {
        Extreme::Min => Aggregation::Min,
        Extreme::Max => Aggregation::Max,
    };
    let mut snapshots: Vec<Option<Community>> = vec![None; ranked.len()];
    let mut snapshot: Vec<u32> = Vec::new();
    let mut seq = 0usize;
    arena.load(g, &order, k);
    for &v in &order {
        if !arena.is_live(v) {
            continue;
        }
        if rank_of_seq[seq] != UNSELECTED {
            arena.component_of_into(v, &mut snapshot);
            snapshots[rank_of_seq[seq]] = Some(community_from_vertices(wg, agg, snapshot.clone()));
        }
        seq += 1;
        arena.remove_cascade(v);
        arena.commit();
    }

    rs.iter()
        .map(|&r| {
            let mut results: Vec<Community> = snapshots[..r.min(snapshots.len())]
                .iter()
                .map(|c| c.clone().expect("every ranked event was replayed"))
                .collect();
            results.sort_by(|a, b| a.ranking_cmp(b));
            results
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_topr;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    #[test]
    fn figure1_min_top2_matches_example1() {
        let wg = figure1();
        let top = min_topr(&wg, 2, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        assert_eq!(top[1].vertices, vs(&[3, 9, 10]));
        assert_eq!(top[1].value, 8.0);
    }

    #[test]
    fn min_matches_exact_oracle() {
        let wg = figure1();
        for r in [1, 2, 3, 5] {
            let got = min_topr(&wg, 2, r).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Min).unwrap();
            assert_eq!(got, expect, "r = {r}");
        }
    }

    #[test]
    fn max_matches_exact_oracle() {
        let wg = figure1();
        for r in [1, 2, 3, 5] {
            let got = max_topr(&wg, 2, r).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Max).unwrap();
            assert_eq!(got, expect, "r = {r}");
        }
    }

    #[test]
    fn matches_from_scratch_oracle() {
        let wg = figure1();
        for r in [1, 2, 4, 7] {
            assert_eq!(
                min_topr(&wg, 2, r).unwrap(),
                crate::algo::oracle::min_topr(&wg, 2, r).unwrap(),
                "min r = {r}"
            );
            assert_eq!(
                max_topr(&wg, 2, r).unwrap(),
                crate::algo::oracle::max_topr(&wg, 2, r).unwrap(),
                "max r = {r}"
            );
        }
    }

    #[test]
    fn max_top1_contains_heaviest_core_vertex() {
        let wg = figure1();
        let top = max_topr(&wg, 2, 1).unwrap();
        // v1 (weight 62) is the heaviest vertex; the top-1 max community
        // is the whole 2-core containing it, value 62.
        assert_eq!(top[0].value, 62.0);
        assert!(top[0].contains(crate::figure1::v(1)));
    }

    #[test]
    fn nested_min_communities_k4() {
        // K4 with distinct weights: communities are {all} (min 1) and
        // {2,3,4-weight vertices} (min 2).
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let top = min_topr(&wg, 2, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![1, 2, 3]);
        assert_eq!(top[0].value, 2.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2, 3]);
        assert_eq!(top[1].value, 1.0);
    }

    #[test]
    fn empty_core_gives_empty_result() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        assert!(min_topr(&wg, 2, 3).unwrap().is_empty());
        assert!(max_topr(&wg, 2, 3).unwrap().is_empty());
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        assert!(min_topr(&wg, 2, 0).is_err());
    }

    #[test]
    fn snapshot_and_multi_r_paths_are_bit_identical() {
        use ic_kcore::GraphSnapshot;
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = ic_kcore::PeelArena::for_graph(snap.graph());
        let rs = [1usize, 2, 4, 7];
        let min_multi = min_topr_multi_on(&snap, 2, &rs, &mut arena).unwrap();
        let max_multi = max_topr_multi_on(&snap, 2, &rs, &mut arena).unwrap();
        for (i, &r) in rs.iter().enumerate() {
            assert_eq!(min_multi[i], min_topr(&wg, 2, r).unwrap(), "min r={r}");
            assert_eq!(max_multi[i], max_topr(&wg, 2, r).unwrap(), "max r={r}");
            assert_eq!(
                min_topr_on(&snap, 2, r, &mut arena).unwrap(),
                min_multi[i],
                "min_topr_on r={r}"
            );
            assert_eq!(
                max_topr_on(&snap, 2, r, &mut arena).unwrap(),
                max_multi[i],
                "max_topr_on r={r}"
            );
        }
    }

    #[test]
    fn multi_r_handles_ties_exactly_like_single_r() {
        // Two triangles with identical weights: events tie on value, so
        // per-r selection must break ties by sequence exactly as the
        // single-r path does (prefix slicing of the sorted result list
        // would get this wrong).
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        let snap = ic_kcore::GraphSnapshot::new(wg.clone());
        let mut arena = ic_kcore::PeelArena::for_graph(snap.graph());
        let multi = min_topr_multi_on(&snap, 2, &[1, 2, 5], &mut arena).unwrap();
        for (i, &r) in [1usize, 2, 5].iter().enumerate() {
            assert_eq!(multi[i], min_topr(&wg, 2, r).unwrap(), "r={r}");
        }
    }

    #[test]
    fn emission_prefix_equals_batch_for_every_r() {
        use ic_kcore::GraphSnapshot;
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for r in [1usize, 2, 4, 7, 100] {
            let mut min_em = MinMaxEmission::start_min(&snap, 2, r, &mut arena).unwrap();
            let mut got = Vec::new();
            while let Some(c) = min_em.next_community(&wg) {
                got.push(c);
            }
            assert_eq!(got, min_topr(&wg, 2, r).unwrap(), "min full drain r={r}");
            let mut max_em = MinMaxEmission::start_max(&snap, 2, r, &mut arena).unwrap();
            let mut got = Vec::new();
            while let Some(c) = max_em.next_community(&wg) {
                got.push(c);
            }
            assert_eq!(got, max_topr(&wg, 2, r).unwrap(), "max full drain r={r}");
        }
        // Genuine prefix semantics: pull n < r items and stop.
        let full = min_topr(&wg, 2, 7).unwrap();
        for n in 0..full.len() {
            let mut em = MinMaxEmission::start_min(&snap, 2, 7, &mut arena).unwrap();
            let mut prefix = Vec::new();
            for _ in 0..n {
                prefix.push(em.next_community(&wg).unwrap());
            }
            assert_eq!(prefix.as_slice(), &full[..n], "prefix n={n}");
        }
    }

    #[test]
    fn emission_handles_value_ties_like_the_batch_solver() {
        // Two equal-weight triangles force tied event values: the
        // emitter must materialize the tie group together and sort it by
        // ranking_cmp, exactly like the batch path's final sort.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        let snap = ic_kcore::GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for r in [1usize, 2, 5] {
            let mut em = MinMaxEmission::start_min(&snap, 2, r, &mut arena).unwrap();
            let mut got = Vec::new();
            while let Some(c) = em.next_community(&wg) {
                got.push(c);
            }
            assert_eq!(got, min_topr(&wg, 2, r).unwrap(), "tie graph r={r}");
        }
    }

    #[test]
    fn budgeted_start_completes_or_abandons_whole() {
        use std::time::Duration;
        let wg = figure1();
        let snap = ic_kcore::GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        // A generous budget behaves exactly like the unbudgeted start.
        let generous = Arc::new(Budget::within(Duration::from_secs(3600)));
        let mut em = MinMaxEmission::start_min_budgeted(&snap, 2, 7, &mut arena, &generous)
            .unwrap()
            .expect("generous budget completes the peel");
        let mut got = Vec::new();
        while let Some(c) = em.next_community(&wg) {
            got.push(c);
        }
        assert_eq!(got, min_topr(&wg, 2, 7).unwrap());
        // An already-expired budget abandons the pass: no partial ranking.
        let expired = Arc::new(Budget::within(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(expired.check());
        let none = MinMaxEmission::start_max_budgeted(&snap, 2, 7, &mut arena, &expired).unwrap();
        assert!(none.is_none(), "expired start certifies nothing");
        // The arena is back to unbudgeted use afterwards.
        assert_eq!(
            min_topr_on(&snap, 2, 3, &mut arena).unwrap(),
            min_topr(&wg, 2, 3).unwrap()
        );
    }

    #[test]
    fn emission_on_empty_core_is_empty() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        let snap = ic_kcore::GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        let mut em = MinMaxEmission::start_min(&snap, 2, 3, &mut arena).unwrap();
        assert!(em.is_empty());
        assert!(em.next_community(&wg).is_none());
    }

    #[test]
    fn duplicate_weights_are_handled() {
        // Two triangles with identical weights: two distinct communities
        // with equal values.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        let top = min_topr(&wg, 2, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].value, 3.0);
        assert_eq!(top[1].value, 3.0);
        assert!(!top[0].overlaps(&top[1]));
    }
}
