//! Baselines for the node-domination aggregations: top-r search under
//! `min` (prior work: Li et al. VLDB'15, Bi et al. VLDB'18) and its mirror
//! image `max`.
//!
//! Under `min`, the k-influential communities are exactly the connected
//! components of the k-core of `G≥θ` (the graph restricted to weights
//! ≥ θ): each such component is maximal with value equal to its minimum
//! member weight. Peeling the global minimum-weight vertex (with degree
//! cascade) from the maximal k-core enumerates every such community right
//! before its minimum vertex disappears. `max` is symmetric (peel from
//! above). Two passes: the first records the peel timeline, the second
//! replays it and snapshots only the top-r communities — O(n+m + r·(n+m)).

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{BitSet, WeightedGraph};
use ic_kcore::kcore_mask;
use std::collections::VecDeque;

/// Top-r k-influential communities under `f = min`, best first.
pub fn min_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Min)
}

/// Top-r k-influential communities under `f = max`, best first.
pub fn max_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Max)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extreme {
    Min,
    Max,
}

fn peel_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    dir: Extreme,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    let g = wg.graph();
    let core = kcore_mask(g, k);

    // Peel order: ascending weight for min, descending for max; vertex id
    // breaks ties deterministically.
    let mut order: Vec<u32> = core.iter().map(|v| v as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let (wa, wb) = (wg.weight(a), wg.weight(b));
        let c = match dir {
            Extreme::Min => wa.total_cmp(&wb),
            Extreme::Max => wb.total_cmp(&wa),
        };
        c.then_with(|| a.cmp(&b))
    });

    // Pass 1: record (event sequence number, value) per extreme-vertex
    // removal.
    let mut events: Vec<(usize, f64)> = Vec::new();
    simulate(g, k, &core, &order, |seq, v, _alive| {
        events.push((seq, wg.weight(v)));
    });

    // Select the top-r events by value (sequence number for determinism).
    events.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    events.truncate(r);
    let selected: std::collections::HashSet<usize> = events.iter().map(|&(s, _)| s).collect();

    // Pass 2: replay, snapshotting the component of each selected event.
    let mut results: Vec<Community> = Vec::with_capacity(selected.len());
    let agg = match dir {
        Extreme::Min => Aggregation::Min,
        Extreme::Max => Aggregation::Max,
    };
    simulate(g, k, &core, &order, |seq, v, alive| {
        if selected.contains(&seq) {
            let comp = ic_graph::component_of(g, alive, v);
            results.push(community_from_vertices(wg, agg, comp));
        }
    });

    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

/// Shared peel simulation. Visits the alive vertices in `order`; each
/// still-alive visit is an *event*: `on_event(seq, v, alive)` fires with
/// the alive mask **before** `v` (and its cascade) is removed. The event
/// vertex is the current extreme of its component, so the component is a
/// maximal community with value `w(v)`.
fn simulate<F: FnMut(usize, u32, &BitSet)>(
    g: &ic_graph::Graph,
    k: usize,
    core: &BitSet,
    order: &[u32],
    mut on_event: F,
) {
    let n = g.num_vertices();
    let mut alive = core.clone();
    let mut deg: Vec<u32> = vec![0; n];
    for v in alive.iter() {
        deg[v] = g.degree_within(v as u32, &alive) as u32;
    }
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut seq = 0usize;
    for &v in order {
        if !alive.contains(v as usize) {
            continue;
        }
        on_event(seq, v, &alive);
        seq += 1;
        // Remove v and cascade the degree constraint.
        alive.remove(v as usize);
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            for &u in g.neighbors(x) {
                if alive.contains(u as usize) {
                    deg[u as usize] -= 1;
                    if (deg[u as usize] as usize) < k {
                        alive.remove(u as usize);
                        queue.push_back(u);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_topr;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    #[test]
    fn figure1_min_top2_matches_example1() {
        let wg = figure1();
        let top = min_topr(&wg, 2, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        assert_eq!(top[1].vertices, vs(&[3, 9, 10]));
        assert_eq!(top[1].value, 8.0);
    }

    #[test]
    fn min_matches_exact_oracle() {
        let wg = figure1();
        for r in [1, 2, 3, 5] {
            let got = min_topr(&wg, 2, r).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Min).unwrap();
            assert_eq!(got, expect, "r = {r}");
        }
    }

    #[test]
    fn max_matches_exact_oracle() {
        let wg = figure1();
        for r in [1, 2, 3, 5] {
            let got = max_topr(&wg, 2, r).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Max).unwrap();
            assert_eq!(got, expect, "r = {r}");
        }
    }

    #[test]
    fn max_top1_contains_heaviest_core_vertex() {
        let wg = figure1();
        let top = max_topr(&wg, 2, 1).unwrap();
        // v1 (weight 62) is the heaviest vertex; the top-1 max community
        // is the whole 2-core containing it, value 62.
        assert_eq!(top[0].value, 62.0);
        assert!(top[0].contains(crate::figure1::v(1)));
    }

    #[test]
    fn nested_min_communities_k4() {
        // K4 with distinct weights: communities are {all} (min 1) and
        // {2,3,4-weight vertices} (min 2).
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let top = min_topr(&wg, 2, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![1, 2, 3]);
        assert_eq!(top[0].value, 2.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2, 3]);
        assert_eq!(top[1].value, 1.0);
    }

    #[test]
    fn empty_core_gives_empty_result() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        assert!(min_topr(&wg, 2, 3).unwrap().is_empty());
        assert!(max_topr(&wg, 2, 3).unwrap().is_empty());
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        assert!(min_topr(&wg, 2, 0).is_err());
    }

    #[test]
    fn duplicate_weights_are_handled() {
        // Two triangles with identical weights: two distinct communities
        // with equal values.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        let top = min_topr(&wg, 2, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].value, 3.0);
        assert_eq!(top[1].value, 3.0);
        assert!(!top[0].overlaps(&top[1]));
    }
}
