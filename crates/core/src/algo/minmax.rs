//! Baselines for the node-domination aggregations: top-r search under
//! `min` (prior work: Li et al. VLDB'15, Bi et al. VLDB'18) and its mirror
//! image `max`.
//!
//! Under `min`, the k-influential communities are exactly the connected
//! components of the k-core of `G≥θ` (the graph restricted to weights
//! ≥ θ): each such component is maximal with value equal to its minimum
//! member weight. Peeling the global minimum-weight vertex (with degree
//! cascade) from the maximal k-core enumerates every such community right
//! before its minimum vertex disappears. `max` is symmetric (peel from
//! above). Two passes: the first records the peel timeline, the second
//! replays it and snapshots only the top-r communities — O(n+m + r·(n+m)).
//!
//! Both passes run on a single [`PeelArena`]: the k-core is loaded once
//! per pass and every deletion is an O(affected) committed cascade — no
//! per-event mask clones, no `HashSet` on the replay path (events are
//! marked in a flat bitmap), and component snapshots go through the
//! arena's reusable BFS buffer.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{Aggregation, Community, SearchError};
use ic_graph::WeightedGraph;
use ic_kcore::{kcore_mask, PeelArena};

/// Top-r k-influential communities under `f = min`, best first.
pub fn min_topr(wg: &WeightedGraph, k: usize, r: usize) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Min)
}

/// Top-r k-influential communities under `f = max`, best first.
pub fn max_topr(wg: &WeightedGraph, k: usize, r: usize) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Max)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extreme {
    Min,
    Max,
}

fn peel_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    dir: Extreme,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    let g = wg.graph();
    let core = kcore_mask(g, k);

    // Peel order: ascending weight for min, descending for max; vertex id
    // breaks ties deterministically.
    let mut order: Vec<u32> = core.iter().map(|v| v as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let (wa, wb) = (wg.weight(a), wg.weight(b));
        let c = match dir {
            Extreme::Min => wa.total_cmp(&wb),
            Extreme::Max => wb.total_cmp(&wa),
        };
        c.then_with(|| a.cmp(&b))
    });

    let mut arena = PeelArena::for_graph(g);

    // Pass 1: record the value of every extreme-vertex removal event.
    // Each visit of a still-live vertex is one event; the community it
    // witnesses is its component right before the removal.
    let mut event_values: Vec<f64> = Vec::with_capacity(order.len());
    arena.load(g, &order, k);
    for &v in &order {
        if arena.is_live(v) {
            event_values.push(wg.weight(v));
            arena.remove_cascade(v);
            arena.commit();
        }
    }

    // Select the top-r events by value (sequence number for determinism)
    // into a flat bitmap — no hashing on the replay path.
    let mut ranked: Vec<usize> = (0..event_values.len()).collect();
    ranked.sort_by(|&a, &b| {
        event_values[b]
            .total_cmp(&event_values[a])
            .then_with(|| a.cmp(&b))
    });
    ranked.truncate(r);
    let mut selected = vec![false; event_values.len()];
    for &s in &ranked {
        selected[s] = true;
    }

    // Pass 2: replay, snapshotting the component of each selected event
    // through the arena's reusable BFS buffer.
    let mut results: Vec<Community> = Vec::with_capacity(ranked.len());
    let agg = match dir {
        Extreme::Min => Aggregation::Min,
        Extreme::Max => Aggregation::Max,
    };
    let mut snapshot: Vec<u32> = Vec::new();
    let mut seq = 0usize;
    arena.load(g, &order, k);
    for &v in &order {
        if !arena.is_live(v) {
            continue;
        }
        if selected[seq] {
            arena.component_of_into(v, &mut snapshot);
            results.push(community_from_vertices(wg, agg, snapshot.clone()));
        }
        seq += 1;
        arena.remove_cascade(v);
        arena.commit();
    }

    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_topr;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    #[test]
    fn figure1_min_top2_matches_example1() {
        let wg = figure1();
        let top = min_topr(&wg, 2, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        assert_eq!(top[1].vertices, vs(&[3, 9, 10]));
        assert_eq!(top[1].value, 8.0);
    }

    #[test]
    fn min_matches_exact_oracle() {
        let wg = figure1();
        for r in [1, 2, 3, 5] {
            let got = min_topr(&wg, 2, r).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Min).unwrap();
            assert_eq!(got, expect, "r = {r}");
        }
    }

    #[test]
    fn max_matches_exact_oracle() {
        let wg = figure1();
        for r in [1, 2, 3, 5] {
            let got = max_topr(&wg, 2, r).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Max).unwrap();
            assert_eq!(got, expect, "r = {r}");
        }
    }

    #[test]
    fn matches_from_scratch_oracle() {
        let wg = figure1();
        for r in [1, 2, 4, 7] {
            assert_eq!(
                min_topr(&wg, 2, r).unwrap(),
                crate::algo::oracle::min_topr(&wg, 2, r).unwrap(),
                "min r = {r}"
            );
            assert_eq!(
                max_topr(&wg, 2, r).unwrap(),
                crate::algo::oracle::max_topr(&wg, 2, r).unwrap(),
                "max r = {r}"
            );
        }
    }

    #[test]
    fn max_top1_contains_heaviest_core_vertex() {
        let wg = figure1();
        let top = max_topr(&wg, 2, 1).unwrap();
        // v1 (weight 62) is the heaviest vertex; the top-1 max community
        // is the whole 2-core containing it, value 62.
        assert_eq!(top[0].value, 62.0);
        assert!(top[0].contains(crate::figure1::v(1)));
    }

    #[test]
    fn nested_min_communities_k4() {
        // K4 with distinct weights: communities are {all} (min 1) and
        // {2,3,4-weight vertices} (min 2).
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let top = min_topr(&wg, 2, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![1, 2, 3]);
        assert_eq!(top[0].value, 2.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2, 3]);
        assert_eq!(top[1].value, 1.0);
    }

    #[test]
    fn empty_core_gives_empty_result() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        assert!(min_topr(&wg, 2, 3).unwrap().is_empty());
        assert!(max_topr(&wg, 2, 3).unwrap().is_empty());
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        assert!(min_topr(&wg, 2, 0).is_err());
    }

    #[test]
    fn duplicate_weights_are_handled() {
        // Two triangles with identical weights: two distinct communities
        // with equal values.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        let top = min_topr(&wg, 2, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].value, 3.0);
        assert_eq!(top[1].value, 3.0);
        assert!(!top[0].overlaps(&top[1]));
    }
}
