//! The paper's search algorithms.
//!
//! * [`sum_naive_on`] — Algorithm 1 (`SUM-NAÏVE`);
//! * [`tic_improved_on`] — Algorithm 2 (`TIC-IMPROVED`): exact with ε = 0
//!   ("Improve"), (1−ε)-approximate with ε > 0 ("Approx");
//! * [`exact_topr`] / [`exact_naive`] — Algorithm 3 (`TIC-EXACT`) and the
//!   maximality-aware exhaustive oracle;
//! * [`local_search`] — Algorithm 4 with `SumStrategy` / `AvgStrategy`,
//!   greedy or random;
//! * [`min_topr_on`] / [`max_topr_on`] — threshold-peeling baselines for the
//!   node-domination aggregations (prior work: Li et al. VLDB'15);
//! * [`nonoverlap`] — TONIC (non-overlapping) wrappers;
//! * [`par_local_search`] — multi-threaded local search (the paper's
//!   future-work direction).
//!
//! **Deprecation note (PR 3).** These free functions remain the
//! *algorithm* layer, but as serving *entry points* they are
//! soft-deprecated: they recompute the core decomposition per call and
//! know nothing of snapshots, caches, or family merges. New code should
//! route through [`crate::Query`] — `q.solve(&wg)` dispatches to the
//! right algorithm here, `q.solve_on(&snapshot, &mut arena)` reuses
//! memoized k-core state, and `ic_engine::Engine` adds batching,
//! progressive streams ([`Engine::submit`](../../ic_engine/struct.Engine.html#method.submit)),
//! and mutable-graph epochs on top. The routing table lives in one
//! place ([`crate::Query::solver`]); nothing outside this module should
//! hand-dispatch on aggregation again.

mod bb;
mod common;
mod exact;
mod improved;
mod index;
mod local_search;
mod minmax;
pub mod nonoverlap;
pub mod oracle;
mod par;
mod refine;
mod sum_naive;
mod truss;

pub use bb::{bb_avg_topr, bb_topr};
pub use exact::{all_communities, exact_naive, exact_topr};
pub use improved::{tic_improved_on, tic_improved_with_options, ImprovedOptions, TicEmission};
pub use index::{ExtremumIndex, IndexParts, MinCommunityIndex};
pub use local_search::{
    local_search, local_search_nonoverlapping, run_seed, run_seed_multi, LocalScratch,
    LocalSearchConfig, SeedTarget,
};
pub use minmax::{max_topr_multi_on, max_topr_on, min_topr_multi_on, min_topr_on, MinMaxEmission};
pub use par::{decode_ordered_f64, encode_ordered_f64, par_local_search};
pub use refine::{local_search_refined, refine_community};
pub use sum_naive::sum_naive_on;
pub use truss::{truss_min_topr, truss_sum_topr};

// The per-graph free-function entry points (`min_topr`, `max_topr`,
// `sum_naive`, `tic_improved`) were soft-deprecated in PR 3 and removed
// from the public surface in PR 4: route through [`crate::Query::solve`]
// / [`crate::Query::solve_on`] (or `ic_engine::Engine` when serving more
// than one query). They remain the crate-internal algorithm layer the
// router calls.
pub(crate) use improved::tic_improved;
pub(crate) use minmax::{max_topr, min_topr};

pub(crate) use common::community_from_vertices;
