//! Extension: hill-climbing refinement of heuristic communities.
//!
//! The paper's future work calls for stronger heuristics for the NP-hard
//! variants ("a possible direction would be carefully design pruning rules
//! and investigate approximation method", Section VIII). This module adds
//! a local-move refinement pass on top of Algorithm 4: given a valid
//! size-constrained community, repeatedly apply the best improving move
//! among
//!
//! * **add** — absorb a boundary vertex (if the size bound allows),
//! * **remove** — shed a member (if cohesion and connectivity survive),
//! * **swap** — exchange a member for a boundary vertex,
//!
//! until a local optimum is reached. Every intermediate candidate is a
//! valid community, so refinement can only improve the influence value —
//! a property the tests assert, along with the ablation experiment that
//! measures how much it helps.

use crate::algo::common::community_from_vertices;
use crate::algo::local_search::SubsetChecker;
use crate::{Aggregation, Community, SearchError};
use ic_graph::{VertexId, WeightedGraph};
use std::collections::BTreeSet;

/// Upper bound on refinement rounds (each round scans all moves once).
const MAX_ROUNDS: usize = 64;

/// Refines one community by steepest-ascent local moves. Returns a
/// community with `value >= community.value` that satisfies the same
/// constraints (`k`, optional `s`).
pub fn refine_community(
    wg: &WeightedGraph,
    k: usize,
    size_bound: Option<usize>,
    aggregation: Aggregation,
    community: &Community,
) -> Community {
    let g = wg.graph();
    let mut checker = SubsetChecker::new(g.num_vertices());
    let mut current: Vec<VertexId> = community.vertices.clone();
    let mut current_value = community.value;

    for _ in 0..MAX_ROUNDS {
        let members: BTreeSet<VertexId> = current.iter().copied().collect();
        // Boundary: non-members adjacent to the community.
        let mut boundary: BTreeSet<VertexId> = BTreeSet::new();
        for &v in &current {
            for &u in g.neighbors(v) {
                if !members.contains(&u) {
                    boundary.insert(u);
                }
            }
        }

        let mut best_move: Option<(f64, Vec<VertexId>)> = None;
        let mut consider = |cand: Vec<VertexId>, checker: &mut SubsetChecker| {
            if cand.len() <= k {
                return;
            }
            if let Some(s) = size_bound {
                if cand.len() > s {
                    return;
                }
            }
            if !checker.is_connected_kcore(g, &cand, k) {
                return;
            }
            let weights: Vec<f64> = cand.iter().map(|&v| wg.weight(v)).collect();
            let value = aggregation.evaluate(&weights, wg.total_weight());
            if value > current_value + 1e-12 && best_move.as_ref().is_none_or(|(bv, _)| value > *bv)
            {
                best_move = Some((value, cand));
            }
        };

        // Add moves.
        for &u in &boundary {
            let mut cand = current.clone();
            cand.push(u);
            consider(cand, &mut checker);
        }
        // Remove moves.
        if current.len() > k + 1 {
            for (i, _) in current.iter().enumerate() {
                let mut cand = current.clone();
                cand.swap_remove(i);
                consider(cand, &mut checker);
            }
        }
        // Swap moves.
        for (i, _) in current.iter().enumerate() {
            for &u in &boundary {
                let mut cand = current.clone();
                cand[i] = u;
                consider(cand, &mut checker);
            }
        }

        match best_move {
            Some((value, cand)) => {
                current = cand;
                current_value = value;
            }
            None => break,
        }
    }
    community_from_vertices(wg, aggregation, current)
}

/// Algorithm 4 followed by refinement of every result, re-ranked. The
/// result dominates plain `local_search` value-wise.
pub fn local_search_refined(
    wg: &WeightedGraph,
    config: &crate::algo::LocalSearchConfig,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    let base = crate::algo::local_search(wg, config, aggregation)?;
    let mut refined: Vec<Community> = base
        .iter()
        .map(|c| refine_community(wg, config.k, Some(config.s), aggregation, c))
        .collect();
    refined.sort_by(|a, b| a.ranking_cmp(b));
    refined.dedup_by(|a, b| a.vertices == b.vertices);
    Ok(refined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::LocalSearchConfig;
    use crate::figure1::{figure1, vs};
    use crate::verify::check_community;

    #[test]
    fn refinement_never_worsens_and_stays_valid() {
        let wg = figure1();
        for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min] {
            let base = crate::algo::local_search(
                &wg,
                &LocalSearchConfig {
                    k: 2,
                    r: 3,
                    s: 4,
                    greedy: false,
                },
                agg,
            )
            .unwrap();
            for c in &base {
                let refined = refine_community(&wg, 2, Some(4), agg, c);
                assert!(
                    refined.value >= c.value - 1e-12,
                    "{}: {} -> {}",
                    agg.name(),
                    c.value,
                    refined.value
                );
                check_community(&wg, 2, Some(4), agg, &refined).unwrap();
            }
        }
    }

    #[test]
    fn refinement_improves_a_suboptimal_seed() {
        // {v5, v6, v7} (avg 31/3 ≈ 10.33): steepest ascent swaps v5 (15)
        // for v11 (50), reaching {v6, v7, v11} (avg 22) — the second-best
        // avg community of the whole graph.
        let wg = figure1();
        let seed = Community::new(vs(&[5, 6, 7]), 31.0 / 3.0);
        let refined = refine_community(&wg, 2, Some(3), Aggregation::Average, &seed);
        assert_eq!(refined.vertices, vs(&[6, 7, 11]));
        assert!((refined.value - 22.0).abs() < 1e-9);
    }

    #[test]
    fn refinement_respects_size_bound() {
        let wg = figure1();
        let seed = Community::new(vs(&[3, 9, 10]), 38.0);
        let refined = refine_community(&wg, 2, Some(3), Aggregation::Sum, &seed);
        assert!(refined.len() <= 3);
        // Without the bound, sum refinement grows the community.
        let refined = refine_community(&wg, 2, None, Aggregation::Sum, &seed);
        assert!(refined.value > 38.0);
        check_community(&wg, 2, None, Aggregation::Sum, &refined).unwrap();
    }

    #[test]
    fn refined_local_search_dominates_plain() {
        let wg = figure1();
        let config = LocalSearchConfig {
            k: 2,
            r: 3,
            s: 4,
            greedy: false,
        };
        for agg in [Aggregation::Sum, Aggregation::Average] {
            let plain = crate::algo::local_search(&wg, &config, agg).unwrap();
            let refined = local_search_refined(&wg, &config, agg).unwrap();
            let pb = plain.first().map_or(f64::NEG_INFINITY, |c| c.value);
            let rb = refined.first().map_or(f64::NEG_INFINITY, |c| c.value);
            assert!(rb >= pb - 1e-12, "{}: {rb} < {pb}", agg.name());
            for c in &refined {
                check_community(&wg, 2, Some(4), agg, c).unwrap();
            }
        }
    }

    #[test]
    fn local_optimum_is_stable() {
        // The global optimum {v1,v2,v4} under avg cannot be improved.
        let wg = figure1();
        let seed = Community::new(vs(&[1, 2, 4]), 24.0);
        let refined = refine_community(&wg, 2, Some(4), Aggregation::Average, &seed);
        assert_eq!(refined.vertices, vs(&[1, 2, 4]));
        assert_eq!(refined.value, 24.0);
    }
}
