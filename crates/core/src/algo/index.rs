//! Extension: an ICP-style index for the classic `min` model.
//!
//! Li et al. (VLDB'15) and Bi et al. (VLDB'18) — the prior work the paper
//! builds on — answer top-r min queries from a precomputed structure
//! instead of re-peeling the graph. This module implements that idea: a
//! one-shot `O(n + m)`-space **nested community forest** built from a
//! single peel, from which
//!
//! * [`MinCommunityIndex::topr`] answers top-r queries in output-sensitive
//!   time (`O(r + Σ |community|)`),
//! * [`MinCommunityIndex::minimal_community_of`] returns the smallest
//!   community containing a vertex,
//! * [`MinCommunityIndex::chain_of`] lists the full nesting chain of
//!   communities around a vertex (innermost first).
//!
//! Every k-influential community under `min` corresponds to exactly one
//! node of the forest; a node's community is the union of the vertex
//! *batches* (min vertex + cascade victims) over its subtree.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{UnionFind, VertexId, WeightedGraph};
use ic_kcore::kcore_mask;
use std::collections::VecDeque;

/// One node of the nested community forest = one maximal community.
#[derive(Clone, Debug)]
struct IndexNode {
    /// `f(H) = min` weight of the community (the weight of `min_vertex`).
    value: f64,
    /// The vertex whose removal ended this community.
    min_vertex: VertexId,
    /// Vertices removed at this node's event (min vertex + cascade).
    batch: Vec<VertexId>,
    /// Child nodes (the communities the removal split this one into).
    children: Vec<u32>,
    /// Parent node, if any (the next-larger containing community).
    parent: Option<u32>,
    /// Community size (cached: |batch| + Σ child sizes).
    size: usize,
}

/// Precomputed index over all k-influential communities under `min`.
#[derive(Clone, Debug)]
pub struct MinCommunityIndex {
    k: usize,
    nodes: Vec<IndexNode>,
    /// Node ids sorted by (value desc, seq asc): the top-r answer order.
    ranked: Vec<u32>,
    /// For each vertex, the node whose batch contains it (None if the
    /// vertex is outside the maximal k-core).
    vertex_node: Vec<Option<u32>>,
}

impl MinCommunityIndex {
    /// Builds the index with one peel + one reverse union-find pass.
    pub fn build(wg: &WeightedGraph, k: usize) -> Self {
        let g = wg.graph();
        let n = g.num_vertices();
        let core = kcore_mask(g, k);

        // Forward peel, capturing per-event removal batches.
        let mut order: Vec<VertexId> = core.iter().map(|v| v as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            wg.weight(a)
                .total_cmp(&wg.weight(b))
                .then_with(|| a.cmp(&b))
        });
        let mut alive = core.clone();
        let mut deg: Vec<u32> = vec![0; n];
        for v in alive.iter() {
            deg[v] = g.degree_within(v as u32, &alive) as u32;
        }
        let mut events: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
        let mut queue: VecDeque<VertexId> = VecDeque::new();
        for &v in &order {
            if !alive.contains(v as usize) {
                continue;
            }
            let mut batch = vec![v];
            alive.remove(v as usize);
            queue.push_back(v);
            while let Some(x) = queue.pop_front() {
                for &u in g.neighbors(x) {
                    if alive.contains(u as usize) {
                        deg[u as usize] -= 1;
                        if (deg[u as usize] as usize) < k {
                            alive.remove(u as usize);
                            batch.push(u);
                            queue.push_back(u);
                        }
                    }
                }
            }
            events.push((v, batch));
        }

        // Reverse pass: re-add batches, union components, link children.
        let mut nodes: Vec<IndexNode> = Vec::with_capacity(events.len());
        let mut vertex_node: Vec<Option<u32>> = vec![None; n];
        let mut uf = UnionFind::new(n);
        let mut present = ic_graph::BitSet::new(n);
        // Root of a present component -> its latest claiming node.
        let mut root_node: Vec<Option<u32>> = vec![None; n];
        // Nodes are created in reverse event order, then re-indexed.
        for (seq, (min_vertex, batch)) in events.iter().enumerate().rev() {
            let mut in_batch = std::collections::HashSet::new();
            for &u in batch {
                present.insert(u as usize);
                in_batch.insert(u);
            }
            // Phase 1: collect the claims of the pre-existing components
            // this batch touches — their roots are still intact because no
            // cross-component union has happened yet.
            let mut children: Vec<u32> = Vec::new();
            for &u in batch {
                for &w in g.neighbors(u) {
                    if present.contains(w as usize) && !in_batch.contains(&w) {
                        let old_root = uf.find(w);
                        if let Some(c) = root_node[old_root as usize].take() {
                            children.push(c);
                        }
                    }
                }
            }
            // Phase 2: perform all unions (batch-internal and into the
            // old components).
            for &u in batch {
                for &w in g.neighbors(u) {
                    if present.contains(w as usize) {
                        uf.union(u, w);
                    }
                }
            }
            let new_root = uf.find(*min_vertex);
            let node_id = nodes.len() as u32;
            let size: usize = batch.len()
                + children
                    .iter()
                    .map(|&c| nodes[c as usize].size)
                    .sum::<usize>();
            for &c in &children {
                nodes[c as usize].parent = Some(node_id);
            }
            for &u in batch {
                vertex_node[u as usize] = Some(node_id);
            }
            nodes.push(IndexNode {
                value: wg.weight(*min_vertex),
                min_vertex: *min_vertex,
                batch: batch.clone(),
                children,
                parent: None,
                size,
            });
            root_node[new_root as usize] = Some(node_id);
            let _ = seq;
        }

        // Rank nodes by (value desc, forward seq asc). Nodes were created
        // in reverse order, so forward seq = events.len() - 1 - node_id.
        let mut ranked: Vec<u32> = (0..nodes.len() as u32).collect();
        ranked.sort_by(|&a, &b| {
            let (na, nb) = (&nodes[a as usize], &nodes[b as usize]);
            nb.value.total_cmp(&na.value).then_with(|| b.cmp(&a)) // larger node id = earlier event
        });

        MinCommunityIndex {
            k,
            nodes,
            ranked,
            vertex_node,
        }
    }

    /// The degree constraint this index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of maximal communities in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the k-core is empty (no communities exist).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn materialize(&self, node: u32) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.nodes[node as usize].size);
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id as usize];
            out.extend_from_slice(&n.batch);
            stack.extend_from_slice(&n.children);
        }
        out.sort_unstable();
        out
    }

    fn node_community(&self, wg: &WeightedGraph, node: u32) -> Community {
        community_from_vertices(wg, Aggregation::Min, self.materialize(node))
    }

    /// Answers a top-r query in output-sensitive time. Results are
    /// identical to the routed `min` peel (`Query::solve`) on the same graph.
    pub fn topr(&self, wg: &WeightedGraph, r: usize) -> Result<Vec<Community>, SearchError> {
        validate_k_r(r)?;
        let mut out: Vec<Community> = self
            .ranked
            .iter()
            .take(r)
            .map(|&id| self.node_community(wg, id))
            .collect();
        out.sort_by(|a, b| a.ranking_cmp(b));
        Ok(out)
    }

    /// The smallest community containing `v` (None when `v` is outside
    /// the maximal k-core).
    pub fn minimal_community_of(&self, wg: &WeightedGraph, v: VertexId) -> Option<Community> {
        let node = self.vertex_node.get(v as usize).copied().flatten()?;
        Some(self.node_community(wg, node))
    }

    /// The nesting chain of communities containing `v`, innermost first,
    /// as `(value, size)` pairs — each step is a strictly larger maximal
    /// community with a smaller (or equal) min value.
    pub fn chain_of(&self, v: VertexId) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        let mut cur = self.vertex_node.get(v as usize).copied().flatten();
        while let Some(id) = cur {
            let n = &self.nodes[id as usize];
            out.push((n.value, n.size));
            cur = n.parent;
        }
        out
    }

    /// The min vertex of each indexed community, for diagnostics.
    pub fn min_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.nodes.iter().map(|n| n.min_vertex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::min_topr;
    use crate::figure1::figure1;
    use ic_graph::graph_from_edges;

    #[test]
    fn index_topr_matches_online_min_on_figure1() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        for r in [1usize, 2, 3, 5, 10] {
            let from_index = idx.topr(&wg, r).unwrap();
            let online = min_topr(&wg, 2, r).unwrap();
            assert_eq!(from_index, online, "r = {r}");
        }
    }

    #[test]
    fn index_counts_all_communities() {
        // K4 with distinct weights has exactly 2 maximal min communities.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.k(), 2);
    }

    #[test]
    fn minimal_community_and_chain() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        // Vertex 3 (weight 4) lives innermost in {1,2,3}, then {0,1,2,3}.
        let minimal = idx.minimal_community_of(&wg, 3).unwrap();
        assert_eq!(minimal.vertices, vec![1, 2, 3]);
        assert_eq!(minimal.value, 2.0);
        let chain = idx.chain_of(3);
        assert_eq!(chain, vec![(2.0, 3), (1.0, 4)]);
        // Vertex 0 (weight 1) only belongs to the outer community.
        let minimal = idx.minimal_community_of(&wg, 0).unwrap();
        assert_eq!(minimal.vertices, vec![0, 1, 2, 3]);
        assert_eq!(idx.chain_of(0), vec![(1.0, 4)]);
    }

    #[test]
    fn vertices_outside_core_have_no_community() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0; 4]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert!(idx.minimal_community_of(&wg, 3).is_none());
        assert!(idx.chain_of(3).is_empty());
    }

    #[test]
    fn empty_core_gives_empty_index() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert!(idx.is_empty());
        assert!(idx.topr(&wg, 3).unwrap().is_empty());
    }

    #[test]
    fn chains_are_properly_nested() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        for v in 0..11u32 {
            let chain = idx.chain_of(v);
            // Sizes strictly increase, values non-increase along the chain.
            for w in chain.windows(2) {
                assert!(w[0].1 < w[1].1, "sizes must grow: {chain:?}");
                assert!(w[0].0 >= w[1].0, "values must not grow: {chain:?}");
            }
        }
    }

    #[test]
    fn batches_partition_the_core() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        let mut seen = std::collections::HashSet::new();
        for node in &idx.nodes {
            for &v in &node.batch {
                assert!(seen.insert(v), "vertex {v} in two batches");
            }
        }
        assert_eq!(seen.len(), 11); // figure 1's 2-core is the whole graph
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert!(idx.topr(&wg, 0).is_err());
    }
}
