//! Precomputed **extremum community forests**: index-served top-r for
//! every peel-extremum aggregation.
//!
//! Li et al. (VLDB'15) and Bi et al. (VLDB'18) — the prior work the paper
//! builds on — answer top-r `min` queries from a precomputed structure
//! instead of re-peeling the graph. [`ExtremumIndex`] generalizes that
//! idea to *any* aggregation whose [`Certificates`](crate::Certificates)
//! declare [`peel_extremum`](crate::Certificates::peel_extremum) — `min`
//! and `max` built-ins, plus user-defined functions certified with the
//! same property. One peel plus one reverse union-find pass builds an
//! `O(n + m)`-space **nested community forest** for a `(k, direction)`
//! pair, from which
//!
//! * [`ExtremumIndex::topr`] answers top-r queries in output-sensitive
//!   `O(r + Σ |community|)` time, bit-identical to the online peel
//!   solvers (`Query::solve` routed to `MinPeel`/`MaxPeel`);
//! * [`ExtremumIndex::minimal_community_of`] returns the smallest
//!   community containing a vertex;
//! * [`ExtremumIndex::chain_of`] lists the full nesting chain of
//!   communities around a vertex (innermost first).
//!
//! Every k-influential community under the peel direction corresponds to
//! exactly one node of the forest; a node's community is the union of the
//! vertex *batches* (extreme vertex + cascade victims) over its subtree.
//!
//! The forest is stored flat (structure-of-arrays, `u32` ids and
//! offsets), which is what makes it **persistable**: `ic-store` writes
//! the arrays byte-for-byte into its `ICS1` format and reassembles them
//! through [`ExtremumIndex::from_parts`], whose structural validation
//! makes a corrupt or inconsistent file fail closed instead of serving a
//! silently wrong forest. [`ExtremumIndex::cached`] memoizes a forest on
//! a [`GraphSnapshot`] so the batched engine serves every exact-tie
//! peel-extremum query from it; a snapshot swapped in after a graph
//! update starts with an empty extension cache, which is exactly the
//! staleness story — stale forests are never consulted, and rebuild
//! lazily per `(k, direction)` on the next query.
//!
//! [`MinCommunityIndex`] survives as a thin wrapper over the `min`
//! direction for pre-PR-5 callers.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{Aggregation, Community, Extremum, SearchError};
use ic_graph::{UnionFind, VertexId, WeightedGraph};
use ic_kcore::{kcore_mask, GraphSnapshot};
use std::sync::Arc;

/// Sentinel for "no node" in the flat `u32` id arrays.
const NONE: u32 = u32::MAX;

/// Precomputed nested community forest over all k-influential
/// communities of one `(k, peel direction)` pair. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtremumIndex {
    k: usize,
    extremum: Extremum,
    num_vertices: usize,
    /// Per node: the community's value (the extreme member weight —
    /// the weight of `event_vertex`).
    values: Vec<f64>,
    /// Per node: the vertex whose removal ended this community. Always
    /// the first entry of the node's batch.
    event_vertex: Vec<VertexId>,
    /// Per node: the next-larger containing community ([`NONE`] at a
    /// forest root).
    parent: Vec<u32>,
    /// Per node: community size (`|batch| + Σ child sizes`).
    size: Vec<u32>,
    /// `batch_offsets[i]..batch_offsets[i+1]` indexes `batch_vertices`.
    batch_offsets: Vec<u32>,
    /// Concatenated removal batches (extreme vertex + cascade victims);
    /// the batches partition the maximal k-core.
    batch_vertices: Vec<VertexId>,
    /// `child_offsets[i]..child_offsets[i+1]` indexes `child_ids`.
    child_offsets: Vec<u32>,
    /// Concatenated child node ids.
    child_ids: Vec<u32>,
    /// All node ids sorted by (value desc, event seq asc): the top-r
    /// answer order, matching the peel solvers' event selection.
    ranked: Vec<u32>,
    /// Per vertex: the node whose batch contains it ([`NONE`] outside
    /// the maximal k-core).
    vertex_node: Vec<u32>,
}

/// Borrowed view of an [`ExtremumIndex`]'s flat arrays — exactly what
/// `ic-store` persists and what [`ExtremumIndex::from_parts`] accepts
/// back (as owned vectors).
#[derive(Clone, Copy, Debug)]
pub struct IndexParts<'a> {
    /// Degree constraint the forest was built for.
    pub k: usize,
    /// Peel direction.
    pub extremum: Extremum,
    /// Vertex count of the graph the forest describes.
    pub num_vertices: usize,
    /// Per-node community values.
    pub values: &'a [f64],
    /// Per-node event vertices.
    pub event_vertex: &'a [VertexId],
    /// Per-node parent links (`u32::MAX` at roots).
    pub parent: &'a [u32],
    /// Per-node community sizes.
    pub size: &'a [u32],
    /// Batch offsets (`len = nodes + 1`).
    pub batch_offsets: &'a [u32],
    /// Concatenated batch vertices.
    pub batch_vertices: &'a [VertexId],
    /// Child offsets (`len = nodes + 1`).
    pub child_offsets: &'a [u32],
    /// Concatenated child ids.
    pub child_ids: &'a [u32],
    /// Rank order (permutation of node ids).
    pub ranked: &'a [u32],
    /// Per-vertex containing node (`u32::MAX` outside the k-core).
    pub vertex_node: &'a [u32],
}

impl ExtremumIndex {
    /// Builds the forest with one peel + one reverse union-find pass.
    pub fn build(wg: &WeightedGraph, k: usize, extremum: Extremum) -> Self {
        let core: Vec<VertexId> = kcore_mask(wg.graph(), k).iter().map(|v| v as u32).collect();
        Self::build_from_core(wg, k, extremum, core)
    }

    /// [`ExtremumIndex::build`] against a snapshot's memoized core level
    /// (no from-scratch k-core extraction).
    pub fn build_on(snap: &GraphSnapshot, k: usize, extremum: Extremum) -> Self {
        let core: Vec<VertexId> = snap.level(k).mask.iter().map(|v| v as u32).collect();
        Self::build_from_core(snap.weighted(), k, extremum, core)
    }

    /// The forest for `(k, extremum)` memoized on `snap`, built on first
    /// use. This is the engine's index-serving entry point: every batch
    /// and every process sharing the snapshot shares one forest, and a
    /// post-update snapshot (new epoch) rebuilds lazily instead of
    /// serving stale structure.
    pub fn cached(snap: &GraphSnapshot, k: usize, extremum: Extremum) -> Arc<ExtremumIndex> {
        snap.extension(k, Self::tag(extremum), || Self::build_on(snap, k, extremum))
    }

    /// Seeds `snap`'s extension cache with a prebuilt forest (e.g. one
    /// loaded from an `ic-store` file). Returns `false` when that
    /// `(k, direction)` slot is already populated.
    ///
    /// # Panics
    /// Panics when the forest describes a different vertex count than
    /// the snapshot's graph.
    pub fn seed(snap: &GraphSnapshot, index: ExtremumIndex) -> bool {
        assert_eq!(
            index.num_vertices,
            snap.weighted().num_vertices(),
            "forest built for a different vertex set"
        );
        let (k, tag) = (index.k, Self::tag(index.extremum));
        snap.seed_extension(k, tag, Arc::new(index))
    }

    /// Every forest memoized on `snap`, in ascending `(k, direction)`
    /// order — the persistence walk of `Engine::persist`.
    pub fn memoized(snap: &GraphSnapshot) -> Vec<Arc<ExtremumIndex>> {
        snap.memoized_extensions::<ExtremumIndex>()
            .into_iter()
            .map(|(_, _, idx)| idx)
            .collect()
    }

    /// Stable extension tag of a peel direction.
    fn tag(extremum: Extremum) -> u8 {
        match extremum {
            Extremum::Min => 0,
            Extremum::Max => 1,
        }
    }

    fn build_from_core(
        wg: &WeightedGraph,
        k: usize,
        extremum: Extremum,
        mut order: Vec<VertexId>,
    ) -> Self {
        let g = wg.graph();
        let n = g.num_vertices();

        // Peel order: ascending weight for min, descending for max;
        // vertex id breaks ties — the exact order of the online peel
        // solvers, so event sequences (and hence tie-breaks) can never
        // drift apart.
        order.sort_unstable_by(|&a, &b| {
            let (wa, wb) = (wg.weight(a), wg.weight(b));
            let c = match extremum {
                Extremum::Min => wa.total_cmp(&wb),
                Extremum::Max => wb.total_cmp(&wa),
            };
            c.then_with(|| a.cmp(&b))
        });

        // Forward peel, capturing per-event removal batches.
        let mut alive = ic_graph::BitSet::new(n);
        for &v in &order {
            alive.insert(v as usize);
        }
        let mut deg: Vec<u32> = vec![0; n];
        for &v in &order {
            deg[v as usize] = g.degree_within(v, &alive) as u32;
        }
        let mut events: Vec<Vec<VertexId>> = Vec::new();
        let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
        for &v in &order {
            if !alive.contains(v as usize) {
                continue;
            }
            let mut batch = vec![v];
            alive.remove(v as usize);
            queue.push_back(v);
            while let Some(x) = queue.pop_front() {
                for &u in g.neighbors(x) {
                    if alive.contains(u as usize) {
                        deg[u as usize] -= 1;
                        if (deg[u as usize] as usize) < k {
                            alive.remove(u as usize);
                            batch.push(u);
                            queue.push_back(u);
                        }
                    }
                }
            }
            events.push(batch);
        }
        let nodes = events.len();

        // Reverse pass: re-add batches, union components, link children.
        // Node id == forward event sequence number.
        let mut values = vec![0.0f64; nodes];
        let mut event_vertex = vec![0u32; nodes];
        let mut parent = vec![NONE; nodes];
        let mut size = vec![0u32; nodes];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        let mut vertex_node = vec![NONE; n];
        let mut uf = UnionFind::new(n);
        let mut present = ic_graph::BitSet::new(n);
        let mut in_batch = ic_graph::BitSet::new(n);
        // Root of a present component -> its latest claiming node.
        let mut root_node: Vec<u32> = vec![NONE; n];
        for (seq, batch) in events.iter().enumerate().rev() {
            let seq = seq as u32;
            for &u in batch {
                present.insert(u as usize);
                in_batch.insert(u as usize);
            }
            // Phase 1: collect the claims of the pre-existing components
            // this batch touches — their roots are still intact because
            // no cross-component union has happened yet.
            let mut sz = batch.len() as u32;
            for &u in batch {
                for &w in g.neighbors(u) {
                    if present.contains(w as usize) && !in_batch.contains(w as usize) {
                        let old_root = uf.find(w) as usize;
                        let c = root_node[old_root];
                        if c != NONE {
                            root_node[old_root] = NONE;
                            parent[c as usize] = seq;
                            sz += size[c as usize];
                            children[seq as usize].push(c);
                        }
                    }
                }
            }
            // Phase 2: perform all unions (batch-internal and into the
            // old components).
            for &u in batch {
                for &w in g.neighbors(u) {
                    if present.contains(w as usize) {
                        uf.union(u, w);
                    }
                }
                vertex_node[u as usize] = seq;
                in_batch.remove(u as usize);
            }
            let extreme = batch[0];
            values[seq as usize] = wg.weight(extreme);
            event_vertex[seq as usize] = extreme;
            size[seq as usize] = sz;
            root_node[uf.find(extreme) as usize] = seq;
        }

        // Rank nodes by (value desc, event seq asc) — the peel solvers'
        // event-selection order.
        let mut ranked: Vec<u32> = (0..nodes as u32).collect();
        ranked.sort_by(|&a, &b| {
            values[b as usize]
                .total_cmp(&values[a as usize])
                .then_with(|| a.cmp(&b))
        });

        // Flatten batches and children.
        let mut batch_offsets = Vec::with_capacity(nodes + 1);
        let mut batch_vertices = Vec::new();
        batch_offsets.push(0u32);
        for batch in &events {
            batch_vertices.extend_from_slice(batch);
            batch_offsets.push(batch_vertices.len() as u32);
        }
        let mut child_offsets = Vec::with_capacity(nodes + 1);
        let mut child_ids = Vec::new();
        child_offsets.push(0u32);
        for c in &children {
            child_ids.extend_from_slice(c);
            child_offsets.push(child_ids.len() as u32);
        }

        ExtremumIndex {
            k,
            extremum,
            num_vertices: n,
            values,
            event_vertex,
            parent,
            size,
            batch_offsets,
            batch_vertices,
            child_offsets,
            child_ids,
            ranked,
            vertex_node,
        }
    }

    /// Default ceiling on [`ExtremumIndex::repair`]'s re-peeled region,
    /// as a fraction of the new k-core: past this the localized repair
    /// stops paying off against a full rebuild and `repair` declines.
    pub const REPAIR_REGION_LIMIT: f64 = 0.5;

    /// Incrementally repairs this forest after a batch of edge updates,
    /// re-peeling **only** the cascade's touched region and splicing the
    /// result into the untouched remainder. Returns a forest
    /// **bit-identical** to `ExtremumIndex::build(new_wg, k, extremum)`
    /// (property-tested in `tests/store.rs`), or `None` when the repair
    /// is not worthwhile or not provably sound:
    ///
    /// * the touched region spans more than `region_limit` of the new
    ///   k-core (fall back to a full — typically lazy — rebuild);
    /// * the inputs describe a different vertex set than this forest;
    /// * a consistency probe fails (a `touched` set that under-reports
    ///   the cascade would otherwise splice stale structure).
    ///
    /// `new_cores` are the post-update core numbers (the maintainer has
    /// them incrementally); `touched` is the union of the cascade
    /// journal's touched vertices over the applied updates
    /// (`CascadeRecord::touched` — must cover every vertex whose core
    /// number or incident edge set changed, which the journal
    /// guarantees). Weights must be unchanged (the vertex set is fixed;
    /// updates are edge-only).
    ///
    /// **Why splicing is sound.** Old forest components containing no
    /// touched vertex keep their vertex set (no member crossed the
    /// `core ≥ k` threshold — that would be a journaled delta), their
    /// induced edges (a changed edge journals both endpoints), and hence
    /// their connectivity and their entire peel-event subsequence: the
    /// global peel visits vertices in `(weight, id)` order, and events
    /// inside a component depend only on that component's structure and
    /// the relative order of its own vertices. The re-peeled region is
    /// the union of the *complete* new-graph components reachable from
    /// any touched or dirty-component vertex, so everything outside it
    /// is exactly such an untouched component. Merging the two event
    /// lists by peel key reproduces the full rebuild's event sequence —
    /// and therefore its node ids, ranks, and tie-breaks — exactly.
    pub fn repair(
        &self,
        new_wg: &WeightedGraph,
        new_cores: &[u32],
        touched: &[VertexId],
        region_limit: f64,
    ) -> Option<ExtremumIndex> {
        let n = self.num_vertices;
        if new_wg.num_vertices() != n || new_cores.len() != n {
            return None;
        }
        let g = new_wg.graph();
        let k = self.k;
        let in_new_core = |v: usize| new_cores[v] as usize >= k;
        let nodes = self.values.len();

        // Old component roots: `parent[i] < i` by construction (a parent
        // event precedes its children in the reverse pass), so one
        // ascending sweep resolves every node's root.
        let mut comp_root = vec![0u32; nodes];
        for i in 0..nodes {
            comp_root[i] = if self.parent[i] == NONE {
                i as u32
            } else {
                debug_assert!((self.parent[i] as usize) < i);
                comp_root[self.parent[i] as usize]
            };
        }

        // Dirty old components: any component holding a touched vertex
        // must be re-peeled wholesale (a departed member re-shapes the
        // peel of the survivors it left behind).
        let mut dirty = vec![false; nodes];
        for &v in touched {
            if let Some(&node) = self.vertex_node.get(v as usize) {
                if node != NONE {
                    dirty[comp_root[node as usize] as usize] = true;
                }
            }
        }

        // Seed the region: survivors of dirty components plus touched
        // vertices now inside the k-core (entrants), then grow to the
        // complete new-graph components containing any seed.
        let mut region_mask = ic_graph::BitSet::new(n);
        let mut region: Vec<VertexId> = Vec::new();
        let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
        let seed = |v: VertexId,
                    region_mask: &mut ic_graph::BitSet,
                    region: &mut Vec<VertexId>,
                    queue: &mut std::collections::VecDeque<VertexId>| {
            if in_new_core(v as usize) && !region_mask.contains(v as usize) {
                region_mask.insert(v as usize);
                region.push(v);
                queue.push_back(v);
            }
        };
        for i in 0..nodes {
            if dirty[comp_root[i] as usize] {
                for &v in self.batch(i as u32) {
                    seed(v, &mut region_mask, &mut region, &mut queue);
                }
            }
        }
        for &v in touched {
            if (v as usize) < n {
                seed(v, &mut region_mask, &mut region, &mut queue);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if in_new_core(w as usize) && !region_mask.contains(w as usize) {
                    region_mask.insert(w as usize);
                    region.push(w);
                    queue.push_back(w);
                }
            }
        }

        let core_size = (0..n).filter(|&v| in_new_core(v)).count();
        if (region.len() as f64) > region_limit * core_size as f64 {
            return None;
        }

        // Preserved components: untouched and disjoint from the region
        // (all-or-nothing — an untouched component stays connected, so
        // one member inside the region pulls the whole component in,
        // testable at the root's event vertex).
        let mut preserved = vec![false; nodes];
        for (i, keep) in preserved.iter_mut().enumerate() {
            let r = comp_root[i] as usize;
            *keep = !dirty[r] && !region_mask.contains(self.event_vertex[r] as usize);
        }
        // Consistency probe: a preserved batch vertex must still be in
        // the k-core and outside the region; otherwise `touched` did not
        // cover the cascade and splicing would be unsound.
        for i in preserved
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
        {
            for &v in self.batch(i as u32) {
                if !in_new_core(v as usize) || region_mask.contains(v as usize) {
                    debug_assert!(false, "repair fed an under-reporting touched set");
                    return None;
                }
            }
        }

        // Re-peel the region in isolation: `build_from_core` peels the
        // subgraph induced on its `order` argument, which is exactly the
        // region's complete components.
        let sub = Self::build_from_core(new_wg, k, self.extremum, region);

        // Merge the preserved and re-peeled event lists by peel key.
        // Both are already in key order (old seq order restricted to a
        // subset, and the sub-build's own seq order), so a two-way merge
        // reproduces the full rebuild's global event sequence.
        let old_events: Vec<u32> = (0..nodes as u32)
            .filter(|&i| preserved[i as usize])
            .collect();
        let sub_events: Vec<u32> = (0..sub.values.len() as u32).collect();
        let key_less = |a: VertexId, b: VertexId| -> bool {
            let (wa, wb) = (new_wg.weight(a), new_wg.weight(b));
            let c = match self.extremum {
                Extremum::Min => wa.total_cmp(&wb),
                Extremum::Max => wb.total_cmp(&wa),
            };
            c.then_with(|| a.cmp(&b)) == std::cmp::Ordering::Less
        };
        let total = old_events.len() + sub_events.len();
        // Per-source maps from source node id to merged node id.
        let mut old_map = vec![NONE; nodes];
        let mut sub_map = vec![NONE; sub.values.len()];
        // Merged order as (source, source id): source 0 = preserved old,
        // source 1 = sub.
        let mut merged: Vec<(u8, u32)> = Vec::with_capacity(total);
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_events.len() || j < sub_events.len() {
            let take_old = match (old_events.get(i), sub_events.get(j)) {
                (Some(&a), Some(&b)) => {
                    key_less(self.event_vertex[a as usize], sub.event_vertex[b as usize])
                }
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_old {
                old_map[old_events[i] as usize] = merged.len() as u32;
                merged.push((0, old_events[i]));
                i += 1;
            } else {
                sub_map[sub_events[j] as usize] = merged.len() as u32;
                merged.push((1, sub_events[j]));
                j += 1;
            }
        }

        // Assemble the merged forest.
        let mut values = Vec::with_capacity(total);
        let mut event_vertex = Vec::with_capacity(total);
        let mut parent = Vec::with_capacity(total);
        let mut size = Vec::with_capacity(total);
        let mut batch_offsets = Vec::with_capacity(total + 1);
        let mut batch_vertices = Vec::new();
        let mut child_offsets = Vec::with_capacity(total + 1);
        let mut child_ids = Vec::new();
        batch_offsets.push(0u32);
        child_offsets.push(0u32);
        for &(source, id) in &merged {
            let (src, map): (&ExtremumIndex, &[u32]) = if source == 0 {
                (self, &old_map)
            } else {
                (&sub, &sub_map)
            };
            values.push(src.values[id as usize]);
            event_vertex.push(src.event_vertex[id as usize]);
            let p = src.parent[id as usize];
            parent.push(if p == NONE { NONE } else { map[p as usize] });
            size.push(src.size[id as usize]);
            batch_vertices.extend_from_slice(src.batch(id));
            batch_offsets.push(batch_vertices.len() as u32);
            for &c in src.children(id) {
                child_ids.push(map[c as usize]);
            }
            child_offsets.push(child_ids.len() as u32);
        }
        let mut vertex_node = vec![NONE; n];
        for (seq, &(source, id)) in merged.iter().enumerate() {
            let src: &ExtremumIndex = if source == 0 { self } else { &sub };
            for &v in src.batch(id) {
                vertex_node[v as usize] = seq as u32;
            }
        }
        // Rank order: both sources are sorted by (value desc, source seq
        // asc) and the maps are monotone, so each remapped list is
        // sorted by (value desc, merged seq asc) — merge them.
        let mut ranked = Vec::with_capacity(total);
        let old_ranked: Vec<u32> = self
            .ranked
            .iter()
            .filter(|&&id| preserved[id as usize])
            .map(|&id| old_map[id as usize])
            .collect();
        let sub_ranked: Vec<u32> = sub.ranked.iter().map(|&id| sub_map[id as usize]).collect();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_ranked.len() || j < sub_ranked.len() {
            let take_old = match (old_ranked.get(i), sub_ranked.get(j)) {
                (Some(&a), Some(&b)) => match values[b as usize].total_cmp(&values[a as usize]) {
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => a < b,
                    std::cmp::Ordering::Less => true,
                },
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_old {
                ranked.push(old_ranked[i]);
                i += 1;
            } else {
                ranked.push(sub_ranked[j]);
                j += 1;
            }
        }

        let repaired = ExtremumIndex {
            k,
            extremum: self.extremum,
            num_vertices: n,
            values,
            event_vertex,
            parent,
            size,
            batch_offsets,
            batch_vertices,
            child_offsets,
            child_ids,
            ranked,
            vertex_node,
        };
        debug_assert!(
            {
                let p = repaired.parts();
                ExtremumIndex::from_parts(
                    p.k,
                    p.extremum,
                    p.num_vertices,
                    p.values.to_vec(),
                    p.event_vertex.to_vec(),
                    p.parent.to_vec(),
                    p.size.to_vec(),
                    p.batch_offsets.to_vec(),
                    p.batch_vertices.to_vec(),
                    p.child_offsets.to_vec(),
                    p.child_ids.to_vec(),
                    p.ranked.to_vec(),
                    p.vertex_node.to_vec(),
                )
                .is_ok()
            },
            "repaired forest failed structural validation"
        );
        Some(repaired)
    }

    /// The degree constraint this forest was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The peel direction this forest serves.
    pub fn extremum(&self) -> Extremum {
        self.extremum
    }

    /// Vertex count of the graph the forest describes.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Total number of maximal communities in the graph.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the k-core is empty (no communities exist).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether this forest answers queries under `aggregation`: the
    /// declared [`peel_extremum`](crate::Certificates::peel_extremum)
    /// certificate must match the forest's direction. User-defined
    /// aggregations certified `peel_extremum` are served exactly like
    /// the built-ins.
    pub fn serves(&self, aggregation: Aggregation) -> bool {
        aggregation.certificates().peel_extremum == Some(self.extremum)
    }

    /// The built-in aggregation of the forest's direction, used to
    /// evaluate materialized communities — the same call the peel
    /// solvers make, so values are bit-identical by construction.
    fn aggregation(&self) -> Aggregation {
        match self.extremum {
            Extremum::Min => Aggregation::Min,
            Extremum::Max => Aggregation::Max,
        }
    }

    fn batch(&self, node: u32) -> &[VertexId] {
        let (lo, hi) = (
            self.batch_offsets[node as usize] as usize,
            self.batch_offsets[node as usize + 1] as usize,
        );
        &self.batch_vertices[lo..hi]
    }

    fn children(&self, node: u32) -> &[u32] {
        let (lo, hi) = (
            self.child_offsets[node as usize] as usize,
            self.child_offsets[node as usize + 1] as usize,
        );
        &self.child_ids[lo..hi]
    }

    fn materialize(&self, node: u32) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.size[node as usize] as usize);
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            out.extend_from_slice(self.batch(id));
            stack.extend_from_slice(self.children(id));
        }
        out.sort_unstable();
        out
    }

    fn node_community(&self, wg: &WeightedGraph, node: u32) -> Community {
        community_from_vertices(wg, self.aggregation(), self.materialize(node))
    }

    /// Answers a top-r query in output-sensitive time. Results are
    /// bit-identical to the routed peel (`Query::solve` /
    /// `Engine::run_batch`) on the same graph, ties included.
    pub fn topr(&self, wg: &WeightedGraph, r: usize) -> Result<Vec<Community>, SearchError> {
        validate_k_r(r)?;
        let mut out: Vec<Community> = self
            .ranked
            .iter()
            .take(r)
            .map(|&id| self.node_community(wg, id))
            .collect();
        out.sort_by(|a, b| a.ranking_cmp(b));
        Ok(out)
    }

    /// The smallest community containing `v` (None when `v` is outside
    /// the maximal k-core).
    pub fn minimal_community_of(&self, wg: &WeightedGraph, v: VertexId) -> Option<Community> {
        let node = *self.vertex_node.get(v as usize)?;
        if node == NONE {
            return None;
        }
        Some(self.node_community(wg, node))
    }

    /// The nesting chain of communities containing `v`, innermost first,
    /// as `(value, size)` pairs — each step is a strictly larger maximal
    /// community whose value moves against the peel direction (smaller
    /// for `min`, larger for `max`) or stays equal.
    pub fn chain_of(&self, v: VertexId) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        let mut cur = self.vertex_node.get(v as usize).copied().unwrap_or(NONE);
        while cur != NONE {
            out.push((self.values[cur as usize], self.size[cur as usize] as usize));
            cur = self.parent[cur as usize];
        }
        out
    }

    /// The extreme (peel-event) vertex of each indexed community, for
    /// diagnostics.
    pub fn extreme_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.event_vertex.iter().copied()
    }

    /// Borrowed view of the flat arrays for persistence (`ic-store`).
    pub fn parts(&self) -> IndexParts<'_> {
        IndexParts {
            k: self.k,
            extremum: self.extremum,
            num_vertices: self.num_vertices,
            values: &self.values,
            event_vertex: &self.event_vertex,
            parent: &self.parent,
            size: &self.size,
            batch_offsets: &self.batch_offsets,
            batch_vertices: &self.batch_vertices,
            child_offsets: &self.child_offsets,
            child_ids: &self.child_ids,
            ranked: &self.ranked,
            vertex_node: &self.vertex_node,
        }
    }

    /// Reassembles a forest from persisted arrays, validating every
    /// structural invariant so a corrupt or inconsistent file **fails
    /// closed** with a description instead of producing a forest that
    /// serves silently wrong answers: array arities, monotone offsets,
    /// in-bounds ids, batch/vertex partition consistency, parent/child
    /// mutuality, size sums, finite values, and the `(value desc, seq
    /// asc)` rank order are all checked in `O(n + forest)` time.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        k: usize,
        extremum: Extremum,
        num_vertices: usize,
        values: Vec<f64>,
        event_vertex: Vec<VertexId>,
        parent: Vec<u32>,
        size: Vec<u32>,
        batch_offsets: Vec<u32>,
        batch_vertices: Vec<VertexId>,
        child_offsets: Vec<u32>,
        child_ids: Vec<u32>,
        ranked: Vec<u32>,
        vertex_node: Vec<u32>,
    ) -> Result<Self, String> {
        let nodes = values.len();
        let arity_ok = event_vertex.len() == nodes
            && parent.len() == nodes
            && size.len() == nodes
            && ranked.len() == nodes
            && batch_offsets.len() == nodes + 1
            && child_offsets.len() == nodes + 1
            && vertex_node.len() == num_vertices;
        if !arity_ok {
            return Err(format!(
                "forest array arity mismatch ({} nodes, {} vertices declared)",
                nodes, num_vertices
            ));
        }
        let offsets_ok = |offsets: &[u32], total: usize, what: &str| -> Result<(), String> {
            if offsets.first() != Some(&0) {
                return Err(format!("{what} offsets do not start at 0"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{what} offsets decrease"));
            }
            if *offsets.last().expect("nodes + 1 >= 1") as usize != total {
                return Err(format!("{what} offsets do not cover the value array"));
            }
            Ok(())
        };
        offsets_ok(&batch_offsets, batch_vertices.len(), "batch")?;
        offsets_ok(&child_offsets, child_ids.len(), "child")?;
        if batch_vertices.iter().any(|&v| v as usize >= num_vertices) {
            return Err("batch vertex out of bounds".into());
        }
        let mut claimed = vec![false; num_vertices];
        for &v in &batch_vertices {
            if std::mem::replace(&mut claimed[v as usize], true) {
                return Err(format!("vertex {v} appears in two batches"));
            }
        }
        let mut child_seen = vec![false; nodes];
        for i in 0..nodes {
            if !values[i].is_finite() {
                return Err(format!("non-finite forest value at node {i}"));
            }
            let (blo, bhi) = (batch_offsets[i] as usize, batch_offsets[i + 1] as usize);
            if blo == bhi {
                return Err(format!("empty batch at node {i}"));
            }
            if batch_vertices[blo] != event_vertex[i] {
                return Err(format!("node {i} batch does not start at its event vertex"));
            }
            if parent[i] != NONE && parent[i] as usize >= nodes {
                return Err(format!("parent of node {i} out of bounds"));
            }
            let mut sz = (bhi - blo) as u64;
            for &c in &child_ids[child_offsets[i] as usize..child_offsets[i + 1] as usize] {
                if c as usize >= nodes {
                    return Err(format!("child of node {i} out of bounds"));
                }
                if std::mem::replace(&mut child_seen[c as usize], true) {
                    return Err(format!("node {c} is a child of two parents"));
                }
                if parent[c as usize] != i as u32 {
                    return Err(format!("child {c} does not point back to parent {i}"));
                }
                sz += size[c as usize] as u64;
            }
            if sz != size[i] as u64 {
                return Err(format!("size of node {i} does not match its subtree"));
            }
        }
        for (i, &p) in parent.iter().enumerate() {
            if p != NONE && !child_seen[i] {
                return Err(format!("node {i} has a parent but is nobody's child"));
            }
        }
        let mut rank_seen = vec![false; nodes];
        for &id in &ranked {
            if id as usize >= nodes || std::mem::replace(&mut rank_seen[id as usize], true) {
                return Err("rank order is not a permutation of the nodes".into());
            }
        }
        if ranked.windows(2).any(|w| {
            match values[w[1] as usize].total_cmp(&values[w[0] as usize]) {
                std::cmp::Ordering::Greater => true, // better value ranked later
                std::cmp::Ordering::Equal => w[1] < w[0], // tie broken against seq order
                std::cmp::Ordering::Less => false,
            }
        }) {
            return Err("rank order violates (value desc, seq asc)".into());
        }
        // vertex_node ↔ batch agreement in O(n): every batched vertex
        // must map to exactly its batch's node, and every unbatched
        // vertex to NONE (batches were already proven disjoint above).
        for i in 0..nodes {
            for &v in &batch_vertices[batch_offsets[i] as usize..batch_offsets[i + 1] as usize] {
                if vertex_node[v as usize] != i as u32 {
                    return Err(format!(
                        "vertex {v} does not map back to its batch node {i}"
                    ));
                }
            }
        }
        for (v, &node) in vertex_node.iter().enumerate() {
            if node == NONE {
                if claimed[v] {
                    return Err(format!("vertex {v} is batched but marked outside the core"));
                }
            } else if !claimed[v] {
                return Err(format!("vertex {v} maps to a node but is in no batch"));
            }
        }
        Ok(ExtremumIndex {
            k,
            extremum,
            num_vertices,
            values,
            event_vertex,
            parent,
            size,
            batch_offsets,
            batch_vertices,
            child_offsets,
            child_ids,
            ranked,
            vertex_node,
        })
    }
}

/// The classic `min`-model index of prior work (ICP-style), kept as a
/// thin wrapper over the `min` direction of [`ExtremumIndex`].
#[derive(Clone, Debug)]
pub struct MinCommunityIndex(ExtremumIndex);

impl MinCommunityIndex {
    /// Builds the index with one peel + one reverse union-find pass.
    pub fn build(wg: &WeightedGraph, k: usize) -> Self {
        MinCommunityIndex(ExtremumIndex::build(wg, k, Extremum::Min))
    }

    /// The degree constraint this index was built for.
    pub fn k(&self) -> usize {
        self.0.k()
    }

    /// Total number of maximal communities in the graph.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the k-core is empty (no communities exist).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Answers a top-r query in output-sensitive time. Results are
    /// identical to the routed `min` peel (`Query::solve`) on the same
    /// graph.
    pub fn topr(&self, wg: &WeightedGraph, r: usize) -> Result<Vec<Community>, SearchError> {
        self.0.topr(wg, r)
    }

    /// The smallest community containing `v` (None when `v` is outside
    /// the maximal k-core).
    pub fn minimal_community_of(&self, wg: &WeightedGraph, v: VertexId) -> Option<Community> {
        self.0.minimal_community_of(wg, v)
    }

    /// The nesting chain of communities containing `v`, innermost first,
    /// as `(value, size)` pairs.
    pub fn chain_of(&self, v: VertexId) -> Vec<(f64, usize)> {
        self.0.chain_of(v)
    }

    /// The min vertex of each indexed community, for diagnostics.
    pub fn min_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.0.extreme_vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{max_topr, min_topr};
    use crate::figure1::figure1;
    use ic_graph::graph_from_edges;

    #[test]
    fn index_topr_matches_online_min_on_figure1() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        for r in [1usize, 2, 3, 5, 10] {
            let from_index = idx.topr(&wg, r).unwrap();
            let online = min_topr(&wg, 2, r).unwrap();
            assert_eq!(from_index, online, "r = {r}");
        }
    }

    #[test]
    fn max_index_matches_online_max() {
        let wg = figure1();
        let idx = ExtremumIndex::build(&wg, 2, Extremum::Max);
        for r in [1usize, 2, 3, 5, 10] {
            assert_eq!(
                idx.topr(&wg, r).unwrap(),
                max_topr(&wg, 2, r).unwrap(),
                "r = {r}"
            );
        }
    }

    #[test]
    fn both_directions_match_the_peel_under_value_ties() {
        // Two equal-weight triangles: events tie on value, so the rank
        // order's sequence tie-break must match the peel's exactly.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![3.0; 6]).unwrap();
        for r in [1usize, 2, 5] {
            let min_idx = ExtremumIndex::build(&wg, 2, Extremum::Min);
            assert_eq!(
                min_idx.topr(&wg, r).unwrap(),
                min_topr(&wg, 2, r).unwrap(),
                "min r = {r}"
            );
            let max_idx = ExtremumIndex::build(&wg, 2, Extremum::Max);
            assert_eq!(
                max_idx.topr(&wg, r).unwrap(),
                max_topr(&wg, 2, r).unwrap(),
                "max r = {r}"
            );
        }
    }

    #[test]
    fn build_on_matches_build_and_caches_per_snapshot() {
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let direct = ExtremumIndex::build(&wg, 2, Extremum::Min);
        let on_snap = ExtremumIndex::build_on(&snap, 2, Extremum::Min);
        assert_eq!(direct, on_snap);
        let a = ExtremumIndex::cached(&snap, 2, Extremum::Min);
        let b = ExtremumIndex::cached(&snap, 2, Extremum::Min);
        assert!(Arc::ptr_eq(&a, &b), "forest must be memoized");
        assert_eq!(*a, direct);
        // The two directions occupy distinct slots.
        let m = ExtremumIndex::cached(&snap, 2, Extremum::Max);
        assert_eq!(m.extremum(), Extremum::Max);
    }

    #[test]
    fn serves_reads_the_peel_certificate() {
        let wg = figure1();
        let idx = ExtremumIndex::build(&wg, 2, Extremum::Min);
        assert!(idx.serves(Aggregation::Min));
        assert!(!idx.serves(Aggregation::Max));
        assert!(!idx.serves(Aggregation::Sum));
        let max_idx = ExtremumIndex::build(&wg, 2, Extremum::Max);
        assert!(max_idx.serves(Aggregation::Max));
        assert!(!max_idx.serves(Aggregation::Min));
    }

    #[test]
    fn parts_round_trip_is_lossless() {
        let wg = figure1();
        for extremum in [Extremum::Min, Extremum::Max] {
            let idx = ExtremumIndex::build(&wg, 2, extremum);
            let p = idx.parts();
            let back = ExtremumIndex::from_parts(
                p.k,
                p.extremum,
                p.num_vertices,
                p.values.to_vec(),
                p.event_vertex.to_vec(),
                p.parent.to_vec(),
                p.size.to_vec(),
                p.batch_offsets.to_vec(),
                p.batch_vertices.to_vec(),
                p.child_offsets.to_vec(),
                p.child_ids.to_vec(),
                p.ranked.to_vec(),
                p.vertex_node.to_vec(),
            )
            .unwrap();
            assert_eq!(back, idx);
        }
    }

    type Mutator<'m> = &'m dyn Fn(&mut Vec<f64>, &mut Vec<u32>, &mut Vec<u32>);

    #[test]
    fn from_parts_rejects_inconsistent_arrays() {
        let wg = figure1();
        let idx = ExtremumIndex::build(&wg, 2, Extremum::Min);
        let p = idx.parts();
        let rebuild = |mutate: Mutator<'_>| {
            let mut values = p.values.to_vec();
            let mut ranked = p.ranked.to_vec();
            let mut size = p.size.to_vec();
            mutate(&mut values, &mut ranked, &mut size);
            ExtremumIndex::from_parts(
                p.k,
                p.extremum,
                p.num_vertices,
                values,
                p.event_vertex.to_vec(),
                p.parent.to_vec(),
                size,
                p.batch_offsets.to_vec(),
                p.batch_vertices.to_vec(),
                p.child_offsets.to_vec(),
                p.child_ids.to_vec(),
                ranked,
                p.vertex_node.to_vec(),
            )
        };
        // Arity mismatch.
        assert!(rebuild(&|values, _, _| {
            values.pop();
        })
        .is_err());
        // Non-finite value.
        assert!(rebuild(&|values, _, _| values[0] = f64::NAN).is_err());
        // Rank order not a permutation.
        assert!(rebuild(&|_, ranked, _| ranked[0] = ranked[1]).is_err());
        // Size inconsistent with the subtree.
        assert!(rebuild(&|_, _, size| size[0] += 1).is_err());
        // Rank order violating (value desc, seq asc).
        assert!(rebuild(&|_, ranked, _| ranked.reverse()).is_err());
    }

    #[test]
    fn repair_matches_full_rebuild_after_updates() {
        use ic_kcore::{CoreMaintainer, EdgeUpdate};
        let wg = figure1();
        // One removed edge, one inserted edge (first absent pair found).
        let (ru, rv) = wg.graph().edges().next().unwrap();
        let (mut iu, mut iv) = (0u32, 0u32);
        'outer: for u in 0..wg.num_vertices() as u32 {
            for v in (u + 1)..wg.num_vertices() as u32 {
                if !wg.graph().neighbors(u).contains(&v) {
                    (iu, iv) = (u, v);
                    break 'outer;
                }
            }
        }
        for extremum in [Extremum::Min, Extremum::Max] {
            let idx = ExtremumIndex::build(&wg, 2, extremum);
            let mut m = CoreMaintainer::from_graph(wg.graph());
            let mut touched = Vec::new();
            for update in [
                EdgeUpdate::Remove { u: ru, v: rv },
                EdgeUpdate::Insert { u: iu, v: iv },
            ] {
                touched.extend(m.apply_recorded(update).touched);
            }
            let new_wg = ic_graph::WeightedGraph::new(m.to_graph(), wg.weights().to_vec()).unwrap();
            let repaired = idx
                .repair(&new_wg, m.core_numbers(), &touched, 1.0)
                .expect("limit 1.0 always repairs");
            assert_eq!(repaired, ExtremumIndex::build(&new_wg, 2, extremum));
        }
    }

    #[test]
    fn repair_declines_oversized_regions_and_foreign_graphs() {
        use ic_kcore::{CoreMaintainer, EdgeUpdate};
        let wg = figure1();
        let idx = ExtremumIndex::build(&wg, 2, Extremum::Min);
        let (u, v) = wg.graph().edges().next().unwrap();
        let mut m = CoreMaintainer::from_graph(wg.graph());
        let touched = m.apply_recorded(EdgeUpdate::Remove { u, v }).touched;
        let new_wg = ic_graph::WeightedGraph::new(m.to_graph(), wg.weights().to_vec()).unwrap();
        // A zero limit refuses any non-empty region.
        assert!(idx
            .repair(&new_wg, m.core_numbers(), &touched, 0.0)
            .is_none());
        // A forest for a different vertex count is rejected outright.
        let small = ic_graph::WeightedGraph::unit_weights(graph_from_edges(3, &[(0, 1), (1, 2)]));
        assert!(idx.repair(&small, &[1, 1, 1], &touched, 1.0).is_none());
    }

    #[test]
    fn index_counts_all_communities() {
        // K4 with distinct weights has exactly 2 maximal min communities.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.k(), 2);
    }

    #[test]
    fn minimal_community_and_chain() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        // Vertex 3 (weight 4) lives innermost in {1,2,3}, then {0,1,2,3}.
        let minimal = idx.minimal_community_of(&wg, 3).unwrap();
        assert_eq!(minimal.vertices, vec![1, 2, 3]);
        assert_eq!(minimal.value, 2.0);
        let chain = idx.chain_of(3);
        assert_eq!(chain, vec![(2.0, 3), (1.0, 4)]);
        // Vertex 0 (weight 1) only belongs to the outer community.
        let minimal = idx.minimal_community_of(&wg, 0).unwrap();
        assert_eq!(minimal.vertices, vec![0, 1, 2, 3]);
        assert_eq!(idx.chain_of(0), vec![(1.0, 4)]);
    }

    #[test]
    fn vertices_outside_core_have_no_community() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0; 4]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert!(idx.minimal_community_of(&wg, 3).is_none());
        assert!(idx.chain_of(3).is_empty());
    }

    #[test]
    fn empty_core_gives_empty_index() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let wg = ic_graph::WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert!(idx.is_empty());
        assert!(idx.topr(&wg, 3).unwrap().is_empty());
    }

    #[test]
    fn chains_are_properly_nested() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        for v in 0..11u32 {
            let chain = idx.chain_of(v);
            // Sizes strictly increase, values non-increase along the chain.
            for w in chain.windows(2) {
                assert!(w[0].1 < w[1].1, "sizes must grow: {chain:?}");
                assert!(w[0].0 >= w[1].0, "values must not grow: {chain:?}");
            }
        }
        // Max direction: values must not *shrink* outward.
        let idx = ExtremumIndex::build(&wg, 2, Extremum::Max);
        for v in 0..11u32 {
            let chain = idx.chain_of(v);
            for w in chain.windows(2) {
                assert!(w[0].1 < w[1].1, "sizes must grow: {chain:?}");
                assert!(w[0].0 <= w[1].0, "values must not shrink: {chain:?}");
            }
        }
    }

    #[test]
    fn batches_partition_the_core() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        let mut seen = std::collections::HashSet::new();
        for v in &idx.0.batch_vertices {
            assert!(seen.insert(*v), "vertex {v} in two batches");
        }
        assert_eq!(seen.len(), 11); // figure 1's 2-core is the whole graph
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        let idx = MinCommunityIndex::build(&wg, 2);
        assert!(idx.topr(&wg, 0).is_err());
    }
}
