//! Algorithm 1 (`SUM-NAÏVE`): the baseline polynomial-time solver for
//! removal-decreasing aggregations (`sum`, `sum-surplus`).
//!
//! Every retained community is split by deleting each of its vertices in
//! turn; the remains are cascade-peeled back to connected k-cores and the
//! top-r list is updated. Correct because the influence value strictly
//! decreases under vertex removal (Corollary 2), so a community outside
//! the running top-r can never have a top-r descendant. Complexity
//! `O(n · r · (n + m))` in the worst case.
//!
//! The inner loop runs on the zero-rebuild [`PeelArena`]: a community is
//! loaded (degrees computed) once, then each candidate deletion is a
//! journaled cascade + rollback touching only the affected frontier.
//! Children are deduplicated by an order-independent set key straight off
//! the arena's component buffer, so duplicate children (reachable via
//! several deletion orders) cost no allocation at all. The from-scratch
//! formulation is preserved as [`crate::algo::oracle::sum_naive`], which
//! the property tests hold this implementation to.

use crate::algo::common::{
    components_as_communities, expand_children, require_corollary2, validate_k_r, vertex_mix_sum,
    vertex_set_key,
};
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::{VertexId, WeightedGraph};
use ic_kcore::{GraphSnapshot, PeelArena};
use std::collections::HashSet;

/// Algorithm 1 against a [`GraphSnapshot`]: the k-core components come
/// from the snapshot's memoized level and the peel runs on the caller's
/// (typically pooled) arena. Returns the top-r communities, best first.
///
/// The aggregation must declare the removal-decreasing certificate
/// (Corollary 2: `sum`, `sum-surplus` with α ≥ 0, or any custom
/// function certifying it); others are rejected with
/// [`SearchError::UnsupportedAggregation`]. The per-graph free-function
/// wrapper was removed in PR 4 — this snapshot entry point (and the
/// from-scratch [`crate::algo::oracle::sum_naive`] reference) are the
/// two remaining ways to run Algorithm 1.
pub fn sum_naive_on(
    snap: &GraphSnapshot,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    arena: &mut PeelArena,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    require_corollary2("sum_naive", aggregation)?;
    let level = snap.level(k);
    Ok(sum_naive_with(
        snap.weighted(),
        level.components.clone(),
        k,
        r,
        aggregation,
        arena,
    ))
}

fn sum_naive_with(
    wg: &WeightedGraph,
    comps: Vec<Vec<VertexId>>,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    arena: &mut PeelArena,
) -> Vec<Community> {
    let g = wg.graph();

    // Lines 1-2: disjoint connected components of the maximal k-core seed
    // the list and the expansion worklist.
    let mut list = TopList::new(r);
    let mut worklist: Vec<Community> = Vec::new();
    let mut explored: HashSet<u64> = HashSet::new();
    for c in components_as_communities(wg, aggregation, comps) {
        explored.insert(vertex_set_key(&c.vertices));
        if list.insert(c.clone()) {
            worklist.push(c);
        }
    }

    let mut children: Vec<Community> = Vec::new();
    // Lines 3-10: split every retained community by each of its vertices.
    // A community evicted from the list before its turn cannot spawn a
    // top-r descendant (Corollary 2: children are strictly worse than the
    // parent, which is already beaten by r better communities), so it is
    // skipped without loading.
    while let Some(parent) = worklist.pop() {
        let psig = parent.signature();
        if !list
            .items()
            .iter()
            .any(|c| c.signature() == psig && c.vertices == parent.vertices)
        {
            continue;
        }
        arena.load(g, &parent.vertices, k);
        arena.mark_articulation_points();
        let parent_mix = vertex_mix_sum(&parent.vertices);
        for &v in &parent.vertices {
            expand_children(
                arena,
                wg,
                aggregation,
                parent.value,
                &parent.vertices,
                parent_mix,
                v,
                &mut explored,
                &mut children,
            );
        }
        for child in children.drain(..) {
            // A child strictly below the r-th value of a full list cannot
            // be retained; skip the insert (and its clone) outright. Ties
            // still go through — the ranking tie-break may prefer them.
            if list.len() == r && child.value < list.threshold() {
                continue;
            }
            if list.insert(child.clone()) {
                worklist.push(child);
            }
        }
    }
    list.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_topr;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    /// Per-graph test harness around [`sum_naive_on`] (the free-function
    /// entry point was removed in PR 4).
    fn sum_naive(
        wg: &WeightedGraph,
        k: usize,
        r: usize,
        aggregation: Aggregation,
    ) -> Result<Vec<Community>, SearchError> {
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        sum_naive_on(&snap, k, r, aggregation, &mut arena)
    }

    #[test]
    fn rejects_unsupported_aggregations() {
        let wg = figure1();
        for agg in [
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Average,
            Aggregation::WeightDensity { beta: 1.0 },
            Aggregation::BalancedDensity,
            Aggregation::SumSurplus { alpha: -2.0 },
        ] {
            assert!(
                matches!(
                    sum_naive(&wg, 2, 2, agg),
                    Err(SearchError::UnsupportedAggregation { .. })
                ),
                "{} should be rejected",
                agg.name()
            );
        }
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        assert!(sum_naive(&wg, 2, 0, Aggregation::Sum).is_err());
    }

    #[test]
    fn figure1_example1_sum_top2() {
        let wg = figure1();
        let top = sum_naive(&wg, 2, 2, Aggregation::Sum).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[0].value, 203.0);
        assert_eq!(top[1].vertices, vs(&[1, 2, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[1].value, 195.0);
    }

    #[test]
    fn figure1_deeper_r_matches_oracle() {
        let wg = figure1();
        for r in [1, 3, 5, 8] {
            let got = sum_naive(&wg, 2, r, Aggregation::Sum).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Sum).unwrap();
            let got_vals: Vec<f64> = got.iter().map(|c| c.value).collect();
            let expect_vals: Vec<f64> = expect.iter().map(|c| c.value).collect();
            assert_eq!(got_vals, expect_vals, "r = {r}");
        }
    }

    #[test]
    fn matches_from_scratch_oracle() {
        let wg = figure1();
        for r in [1, 2, 4, 6, 9] {
            assert_eq!(
                sum_naive(&wg, 2, r, Aggregation::Sum).unwrap(),
                crate::algo::oracle::sum_naive(&wg, 2, r, Aggregation::Sum).unwrap(),
                "r = {r}"
            );
        }
    }

    #[test]
    fn empty_kcore_returns_empty() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 4]).unwrap();
        let top = sum_naive(&wg, 2, 3, Aggregation::Sum).unwrap();
        assert!(top.is_empty());
    }

    #[test]
    fn disjoint_components_rank_independently() {
        // Two triangles with different totals.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0]).unwrap();
        let top = sum_naive(&wg, 2, 2, Aggregation::Sum).unwrap();
        assert_eq!(top[0].vertices, vec![3, 4, 5]);
        assert_eq!(top[0].value, 15.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2]);
        assert_eq!(top[1].value, 3.0);
    }

    #[test]
    fn sum_surplus_is_supported() {
        let wg = figure1();
        let agg = Aggregation::SumSurplus { alpha: 1.0 };
        let top = sum_naive(&wg, 2, 2, agg).unwrap();
        // Whole graph: 203 + 11; minus v3: 195 + 10.
        assert_eq!(top[0].value, 214.0);
        assert_eq!(top[1].value, 205.0);
    }

    #[test]
    fn snapshot_path_is_bit_identical() {
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for r in [1, 2, 5, 9] {
            assert_eq!(
                sum_naive_on(&snap, 2, r, Aggregation::Sum, &mut arena).unwrap(),
                sum_naive(&wg, 2, r, Aggregation::Sum).unwrap(),
                "r = {r}"
            );
        }
    }

    #[test]
    fn r_larger_than_community_count() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0]).unwrap();
        let top = sum_naive(&wg, 2, 10, Aggregation::Sum).unwrap();
        // Only the triangle exists (removing any vertex kills the 2-core).
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].value, 6.0);
    }
}
