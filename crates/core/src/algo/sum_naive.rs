//! Algorithm 1 (`SUM-NAÏVE`): the baseline polynomial-time solver for
//! removal-decreasing aggregations (`sum`, `sum-surplus`).
//!
//! One pass over all vertices; each vertex is deleted from every current
//! top-r community containing it, the remains are cascade-peeled back to
//! connected k-cores, and the top-r list is updated. Correct because the
//! influence value strictly decreases under vertex removal (Corollary 2),
//! so a community outside the running top-r can never have a top-r
//! descendant. Complexity `O(n · r · (n + m))`.

use crate::algo::common::{
    components_as_communities, require_corollary2, validate_k_r,
};
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::WeightedGraph;
use ic_kcore::{maximal_kcore_components, PeelScratch};

/// Runs Algorithm 1. Returns the top-r communities, best first. The
/// aggregation must satisfy Corollary 2 (`sum`, or `sum-surplus` with
/// α ≥ 0); others are rejected with
/// [`SearchError::UnsupportedAggregation`].
pub fn sum_naive(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    require_corollary2("sum_naive", aggregation)?;

    let g = wg.graph();
    let n = g.num_vertices();

    // Lines 1-2: disjoint connected components of the maximal k-core.
    let comps = maximal_kcore_components(g, k);
    let mut list = TopList::new(r);
    for c in components_as_communities(wg, aggregation, comps) {
        list.insert(c);
    }

    let mut scratch = PeelScratch::new(n);
    // Lines 3-10: for every vertex, split every retained community that
    // contains it.
    for v in 0..n as u32 {
        let mut children: Vec<Community> = Vec::new();
        for community in list.items() {
            if community.contains(v) {
                let parts = scratch.connected_kcores(g, &community.vertices, Some(v), k);
                children.extend(components_as_communities(wg, aggregation, parts));
            }
        }
        for child in children {
            list.insert(child);
        }
    }
    Ok(list.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_topr;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    #[test]
    fn rejects_unsupported_aggregations() {
        let wg = figure1();
        for agg in [
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Average,
            Aggregation::WeightDensity { beta: 1.0 },
            Aggregation::BalancedDensity,
            Aggregation::SumSurplus { alpha: -2.0 },
        ] {
            assert!(
                matches!(
                    sum_naive(&wg, 2, 2, agg),
                    Err(SearchError::UnsupportedAggregation { .. })
                ),
                "{} should be rejected",
                agg.name()
            );
        }
    }

    #[test]
    fn rejects_r_zero() {
        let wg = figure1();
        assert!(sum_naive(&wg, 2, 0, Aggregation::Sum).is_err());
    }

    #[test]
    fn figure1_example1_sum_top2() {
        let wg = figure1();
        let top = sum_naive(&wg, 2, 2, Aggregation::Sum).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[0].value, 203.0);
        assert_eq!(top[1].vertices, vs(&[1, 2, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[1].value, 195.0);
    }

    #[test]
    fn figure1_deeper_r_matches_oracle() {
        let wg = figure1();
        for r in [1, 3, 5, 8] {
            let got = sum_naive(&wg, 2, r, Aggregation::Sum).unwrap();
            let expect = exact_topr(&wg, 2, r, None, Aggregation::Sum).unwrap();
            let got_vals: Vec<f64> = got.iter().map(|c| c.value).collect();
            let expect_vals: Vec<f64> = expect.iter().map(|c| c.value).collect();
            assert_eq!(got_vals, expect_vals, "r = {r}");
        }
    }

    #[test]
    fn empty_kcore_returns_empty() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 4]).unwrap();
        let top = sum_naive(&wg, 2, 3, Aggregation::Sum).unwrap();
        assert!(top.is_empty());
    }

    #[test]
    fn disjoint_components_rank_independently() {
        // Two triangles with different totals.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0]).unwrap();
        let top = sum_naive(&wg, 2, 2, Aggregation::Sum).unwrap();
        assert_eq!(top[0].vertices, vec![3, 4, 5]);
        assert_eq!(top[0].value, 15.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2]);
        assert_eq!(top[1].value, 3.0);
    }

    #[test]
    fn sum_surplus_is_supported() {
        let wg = figure1();
        let agg = Aggregation::SumSurplus { alpha: 1.0 };
        let top = sum_naive(&wg, 2, 2, agg).unwrap();
        // Whole graph: 203 + 11; minus v3: 195 + 10.
        assert_eq!(top[0].value, 214.0);
        assert_eq!(top[1].value, 205.0);
    }

    #[test]
    fn r_larger_than_community_count() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0]).unwrap();
        let top = sum_naive(&wg, 2, 10, Aggregation::Sum).unwrap();
        // Only the triangle exists (removing any vertex kills the 2-core).
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].value, 6.0);
    }
}
