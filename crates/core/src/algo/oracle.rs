//! From-scratch re-peel reference solvers.
//!
//! These are the pre-arena implementations of the four rewritten solvers:
//! every deletion step re-computes internal degrees over the whole
//! community ([`ic_kcore::PeelScratch`]) or clones mask state per pass.
//! They are kept for two purposes:
//!
//! 1. **Correctness oracle** — the property tests assert the incremental
//!    [`PeelArena`](ic_kcore::PeelArena)-based solvers in [`crate::algo`]
//!    produce *identical* top-r output (communities and values);
//! 2. **Perf baseline** — `ic-bench`'s `peel_baseline` binary measures
//!    these against the incremental solvers in the same run and records
//!    the speedup in `BENCH_peel.json`.
//!
//! Do not use these in production paths; they are deliberately the slow,
//! allocation-happy formulation.

use crate::algo::common::{
    community_from_vertices, components_as_communities, require_corollary2, validate_k_r,
};
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::{BitSet, WeightedGraph};
use ic_kcore::{kcore_mask, maximal_kcore_components, PeelScratch};
use std::collections::{HashSet, VecDeque};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extreme {
    Min,
    Max,
}

/// From-scratch top-r under `f = min` (two mask-cloning peel passes).
pub fn min_topr(wg: &WeightedGraph, k: usize, r: usize) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Min)
}

/// From-scratch top-r under `f = max`.
pub fn max_topr(wg: &WeightedGraph, k: usize, r: usize) -> Result<Vec<Community>, SearchError> {
    peel_topr(wg, k, r, Extreme::Max)
}

fn peel_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    dir: Extreme,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    let g = wg.graph();
    let core = kcore_mask(g, k);

    let mut order: Vec<u32> = core.iter().map(|v| v as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let (wa, wb) = (wg.weight(a), wg.weight(b));
        let c = match dir {
            Extreme::Min => wa.total_cmp(&wb),
            Extreme::Max => wb.total_cmp(&wa),
        };
        c.then_with(|| a.cmp(&b))
    });

    // Pass 1: record (event sequence number, value) per extreme-vertex
    // removal.
    let mut events: Vec<(usize, f64)> = Vec::new();
    simulate(g, k, &core, &order, |seq, v, _alive| {
        events.push((seq, wg.weight(v)));
    });

    events.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    events.truncate(r);
    let selected: HashSet<usize> = events.iter().map(|&(s, _)| s).collect();

    // Pass 2: replay, snapshotting the component of each selected event.
    let mut results: Vec<Community> = Vec::with_capacity(selected.len());
    let agg = match dir {
        Extreme::Min => Aggregation::Min,
        Extreme::Max => Aggregation::Max,
    };
    simulate(g, k, &core, &order, |seq, v, alive| {
        if selected.contains(&seq) {
            let comp = ic_graph::component_of(g, alive, v);
            results.push(community_from_vertices(wg, agg, comp));
        }
    });

    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

fn simulate<F: FnMut(usize, u32, &BitSet)>(
    g: &ic_graph::Graph,
    k: usize,
    core: &BitSet,
    order: &[u32],
    mut on_event: F,
) {
    let n = g.num_vertices();
    let mut alive = core.clone();
    let mut deg: Vec<u32> = vec![0; n];
    for v in alive.iter() {
        deg[v] = g.degree_within(v as u32, &alive) as u32;
    }
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut seq = 0usize;
    for &v in order {
        if !alive.contains(v as usize) {
            continue;
        }
        on_event(seq, v, &alive);
        seq += 1;
        alive.remove(v as usize);
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            for &u in g.neighbors(x) {
                if alive.contains(u as usize) {
                    deg[u as usize] -= 1;
                    if (deg[u as usize] as usize) < k {
                        alive.remove(u as usize);
                        queue.push_back(u);
                    }
                }
            }
        }
    }
}

/// From-scratch Algorithm 1: every split re-computes internal degrees over
/// the whole community via [`PeelScratch`].
pub fn sum_naive(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    require_corollary2("oracle::sum_naive", aggregation)?;

    let g = wg.graph();
    let n = g.num_vertices();

    let comps = maximal_kcore_components(g, k);
    let mut list = TopList::new(r);
    for c in components_as_communities(wg, aggregation, comps) {
        list.insert(c);
    }

    let mut scratch = PeelScratch::new(n);
    for v in 0..n as u32 {
        let mut children: Vec<Community> = Vec::new();
        for community in list.items() {
            if community.contains(v) {
                let parts = scratch.connected_kcores(g, &community.vertices, Some(v), k);
                children.extend(components_as_communities(wg, aggregation, parts));
            }
        }
        for child in children {
            list.insert(child);
        }
    }
    Ok(list.into_vec())
}

/// From-scratch Algorithm 2 (exact for `epsilon = 0`, Approx otherwise):
/// every expansion re-peels via [`PeelScratch`] and deduplicates through
/// sorted-list FNV signatures.
pub fn tic_improved(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    aggregation: Aggregation,
    epsilon: f64,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    require_corollary2("oracle::tic_improved", aggregation)?;
    if !(0.0..1.0).contains(&epsilon) {
        return Err(SearchError::InvalidParams(format!(
            "epsilon must be in [0, 1), got {epsilon}"
        )));
    }

    let g = wg.graph();
    let n = g.num_vertices();

    let comps = maximal_kcore_components(g, k);
    let mut candidates: Vec<Community> = comps
        .into_iter()
        .map(|c| community_from_vertices(wg, aggregation, c))
        .collect();
    candidates.sort_by(|a, b| a.ranking_cmp(b));
    candidates.truncate(r);

    let mut explored: HashSet<u64> = candidates.iter().map(|c| c.signature()).collect();
    let mut results: Vec<Community> = Vec::with_capacity(r);
    let mut in_results: HashSet<u64> = HashSet::new();
    let mut scratch = PeelScratch::new(n);

    while results.len() < r && !candidates.is_empty() {
        let lmax = candidates.remove(0);
        let sig = lmax.signature();
        if !in_results.contains(&sig) {
            in_results.insert(sig);
            results.push(lmax.clone());
            if results.len() == r {
                break;
            }
        }
        let lb = (1.0 - epsilon) * lmax.value;
        let threshold = r_th_value(&results, &candidates, r);
        let prune_with_delta = aggregation.certificates().incremental_removal;

        for &v in &lmax.vertices {
            // Line-13 pruning needs the O(1) remove-delta certificate;
            // removal-decreasing aggregations without it run unpruned
            // (matching the arena solver's gating, bit for bit).
            if prune_with_delta {
                let upper = aggregation.value_after_removal(lmax.value, wg.weight(v));
                if upper <= threshold {
                    continue;
                }
            }
            let parts = scratch.connected_kcores(g, &lmax.vertices, Some(v), k);
            for part in parts {
                let child = community_from_vertices(wg, aggregation, part);
                if !explored.insert(child.signature()) {
                    continue;
                }
                if epsilon > 0.0
                    && child.value >= lb
                    && results.len() < r
                    && !in_results.contains(&child.signature())
                {
                    in_results.insert(child.signature());
                    results.push(child.clone());
                }
                let pos = candidates
                    .binary_search_by(|c| c.ranking_cmp(&child))
                    .unwrap_or_else(|p| p);
                candidates.insert(pos, child);
            }
        }
        if candidates.len() > r {
            candidates.truncate(r);
        }
    }

    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

fn r_th_value(results: &[Community], candidates: &[Community], r: usize) -> f64 {
    let have = results.len();
    if have >= r {
        return results[r - 1].value;
    }
    let need = r - have;
    if candidates.len() >= need {
        candidates[need - 1].value
    } else {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, vs};

    #[test]
    fn oracle_minmax_matches_figure1() {
        let wg = figure1();
        let top = min_topr(&wg, 2, 2).unwrap();
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        let top = max_topr(&wg, 2, 1).unwrap();
        assert_eq!(top[0].value, 62.0);
    }

    #[test]
    fn oracle_sum_solvers_match_figure1() {
        let wg = figure1();
        let naive = sum_naive(&wg, 2, 2, Aggregation::Sum).unwrap();
        assert_eq!(naive[0].value, 203.0);
        assert_eq!(naive[1].value, 195.0);
        let imp = tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
        assert_eq!(naive, imp);
    }
}
