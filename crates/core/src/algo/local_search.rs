//! Algorithm 4 (`LOCAL SEARCH`) for the NP-hard / size-constrained
//! problems, with the paper's two strategies:
//!
//! * **`SumStrategy`** (used for `sum`-like aggregations): take the seed's
//!   s-nearest-neighbor pool, then drop the last vertex until the
//!   candidate induces a connected k-core;
//! * **`AvgStrategy`** (used for `avg` and every other aggregation): test
//!   every prefix of the pool; greedy mode accepts the first qualifying
//!   prefix (pool sorted descending by weight, so later prefixes only
//!   dilute), random mode keeps the best qualifying prefix.
//!
//! The pool is collected by truncated BFS (the paper's "s-nearest
//! neighbors of `v_i`, exploring 2-hop neighbors when needed"). `greedy`
//! sorts the pool by descending influence, `random` keeps BFS order —
//! these are the paper's Greedy and Random variants (Figs 6–13).

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{AggregateState, Aggregation, Community, SearchError, TopList};
use ic_graph::{truncated_bfs_within, BitSet, Graph, VertexId, WeightedGraph};
use ic_kcore::kcore_mask;
use std::collections::VecDeque;

/// Configuration for [`local_search`].
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchConfig {
    /// Degree constraint `k`.
    pub k: usize,
    /// Result count `r`.
    pub r: usize,
    /// Community size bound `s` (must exceed `k`).
    pub s: usize,
    /// Greedy (weight-sorted pools) vs Random (BFS-ordered pools).
    pub greedy: bool,
}

/// Runs Algorithm 4: top-r size-constrained k-influential community search
/// under any aggregation. Heuristic (the problem is NP-hard, Theorem 4);
/// results are valid communities but not guaranteed optimal.
pub fn local_search(
    wg: &WeightedGraph,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_params(config)?;
    let g = wg.graph();
    let core = kcore_mask(g, config.k);
    let mut list = TopList::new(config.r);
    let mut checker = SubsetChecker::new(g.num_vertices());

    for seed in core.iter() {
        run_seed(wg, g, &core, seed as VertexId, config, aggregation, &mut checker, &mut list);
    }
    Ok(list.into_vec())
}

/// Non-overlapping variant: once a community is accepted its vertices are
/// removed from the graph (the paper's TONIC adaptation of Algorithm 4).
/// Seeds are visited in descending weight order in greedy mode so the most
/// influential regions are claimed first.
pub fn local_search_nonoverlapping(
    wg: &WeightedGraph,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_params(config)?;
    let g = wg.graph();
    let mut core = kcore_mask(g, config.k);
    let mut checker = SubsetChecker::new(g.num_vertices());
    let mut results: Vec<Community> = Vec::with_capacity(config.r);

    let mut seeds: Vec<u32> = core.iter().map(|v| v as u32).collect();
    if config.greedy {
        seeds.sort_by(|&a, &b| {
            wg.weight(b)
                .total_cmp(&wg.weight(a))
                .then_with(|| a.cmp(&b))
        });
    }

    for &seed in &seeds {
        if results.len() == config.r {
            break;
        }
        if !core.contains(seed as usize) {
            continue;
        }
        // Single-slot list: accept the seed's best candidate, if any.
        let mut single = TopList::new(1);
        run_seed(wg, g, &core, seed, config, aggregation, &mut checker, &mut single);
        if let Some(found) = single.into_vec().pop() {
            for &v in &found.vertices {
                core.remove(v as usize);
            }
            results.push(found);
        }
    }
    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

pub(crate) fn validate_params(config: &LocalSearchConfig) -> Result<(), SearchError> {
    validate_k_r(config.r)?;
    if config.s <= config.k {
        return Err(SearchError::InvalidParams(format!(
            "size bound s = {} must exceed k = {} (a k-core needs at least k+1 vertices)",
            config.s, config.k
        )));
    }
    Ok(())
}

/// Collects the seed's pool and applies the aggregation's strategy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_seed(
    wg: &WeightedGraph,
    g: &Graph,
    core: &BitSet,
    seed: VertexId,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
    checker: &mut SubsetChecker,
    list: &mut TopList,
) {
    // Line 4: the s-nearest-neighbor pool via truncated BFS. In greedy
    // mode the BFS visits each layer in descending weight order, so when a
    // layer must be cut to fit `s`, the influential members survive (the
    // paper leaves the tie-break unspecified; random mode uses plain BFS
    // order).
    let mut pool = if config.greedy {
        influence_layered_pool(wg, g, core, seed, config.s)
    } else {
        truncated_bfs_within(g, core, seed, config.s)
    };
    if pool.len() <= config.k {
        return; // cannot host a k-core
    }
    // Lines 5-6: greedy sorts by descending influence (seed kept first —
    // the pool must stay anchored at the seed for locality).
    if config.greedy {
        pool[1..].sort_by(|&a, &b| {
            wg.weight(b)
                .total_cmp(&wg.weight(a))
                .then_with(|| a.cmp(&b))
        });
    }
    match aggregation {
        Aggregation::Sum | Aggregation::SumSurplus { .. } => {
            sum_strategy(wg, g, &pool, config, aggregation, checker, list);
        }
        _ => {
            prefix_strategy(wg, g, &pool, config, aggregation, checker, list);
        }
    }
}

/// Truncated BFS where every layer is visited in descending weight order:
/// the pool still consists of nearest neighbors (layer by layer), but
/// within the layer that exceeds the size budget, the most influential
/// vertices are kept.
fn influence_layered_pool(
    wg: &WeightedGraph,
    g: &Graph,
    mask: &BitSet,
    seed: VertexId,
    limit: usize,
) -> Vec<VertexId> {
    let mut pool = Vec::with_capacity(limit);
    if limit == 0 || !mask.contains(seed as usize) {
        return pool;
    }
    let mut visited = BitSet::new(g.num_vertices());
    visited.insert(seed as usize);
    let mut layer: Vec<VertexId> = vec![seed];
    while !layer.is_empty() && pool.len() < limit {
        for &v in &layer {
            if pool.len() == limit {
                return pool;
            }
            pool.push(v);
        }
        let mut next: Vec<VertexId> = Vec::new();
        for &v in &layer {
            for &u in g.neighbors(v) {
                if mask.contains(u as usize) && !visited.contains(u as usize) {
                    visited.insert(u as usize);
                    next.push(u);
                }
            }
        }
        next.sort_by(|&a, &b| {
            wg.weight(b)
                .total_cmp(&wg.weight(a))
                .then_with(|| a.cmp(&b))
        });
        layer = next;
    }
    pool
}

/// Procedure `SumStrategy`: start from the full pool, drop the last vertex
/// until the candidate is a connected k-core with a competitive value.
fn sum_strategy(
    wg: &WeightedGraph,
    g: &Graph,
    pool: &[VertexId],
    config: &LocalSearchConfig,
    aggregation: Aggregation,
    checker: &mut SubsetChecker,
    list: &mut TopList,
) {
    let mut candidate: Vec<VertexId> = pool.to_vec();
    let mut state = AggregateState::new(aggregation, wg.total_weight());
    for &v in &candidate {
        state.add(wg.weight(v));
    }
    while candidate.len() > config.k && state.value() > list.threshold() {
        if checker.is_connected_kcore(g, &candidate, config.k) {
            list.insert(community_from_vertices(wg, aggregation, candidate));
            return;
        }
        let dropped = candidate.pop().expect("candidate non-empty");
        state.remove(wg.weight(dropped));
    }
}

/// Procedure `AvgStrategy` generalized to any aggregation: test every
/// prefix of the pool; greedy accepts the first qualifying prefix, random
/// keeps the best.
fn prefix_strategy(
    wg: &WeightedGraph,
    g: &Graph,
    pool: &[VertexId],
    config: &LocalSearchConfig,
    aggregation: Aggregation,
    checker: &mut SubsetChecker,
    list: &mut TopList,
) {
    let mut state = AggregateState::new(aggregation, wg.total_weight());
    let mut candidate: Vec<VertexId> = Vec::with_capacity(pool.len());
    let mut best: Option<Community> = None;
    for &v in pool {
        candidate.push(v);
        state.add(wg.weight(v));
        if candidate.len() > config.k
            && state.value() > list.threshold()
            && checker.is_connected_kcore(g, &candidate, config.k)
        {
            let community = community_from_vertices(wg, aggregation, candidate.clone());
            if config.greedy {
                list.insert(community);
                return;
            }
            let better = best
                .as_ref()
                .map_or(true, |b| community.ranking_cmp(b).is_lt());
            if better {
                best = Some(community);
            }
        }
    }
    if let Some(b) = best {
        list.insert(b);
    }
}

/// Stamped-array scratch for "is this vertex list a connected k-core?"
/// checks in `O(Σ_{v ∈ C} d(v))` without allocation per call.
pub(crate) struct SubsetChecker {
    stamp: Vec<u32>,
    visited: Vec<u32>,
    generation: u32,
    queue: VecDeque<VertexId>,
}

impl SubsetChecker {
    pub(crate) fn new(n: usize) -> Self {
        SubsetChecker {
            stamp: vec![0; n],
            visited: vec![0; n],
            generation: 0,
            queue: VecDeque::new(),
        }
    }

    pub(crate) fn is_connected_kcore(&mut self, g: &Graph, vertices: &[VertexId], k: usize) -> bool {
        if vertices.is_empty() {
            return false;
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.visited.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        let generation = self.generation;
        for &v in vertices {
            self.stamp[v as usize] = generation;
        }
        // Minimum internal degree.
        for &v in vertices {
            let d = g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.stamp[u as usize] == generation)
                .count();
            if d < k {
                return false;
            }
        }
        // Connectivity.
        self.queue.clear();
        self.queue.push_back(vertices[0]);
        self.visited[vertices[0] as usize] = generation;
        let mut reached = 0usize;
        while let Some(x) = self.queue.pop_front() {
            reached += 1;
            for &u in g.neighbors(x) {
                let ui = u as usize;
                if self.stamp[ui] == generation && self.visited[ui] != generation {
                    self.visited[ui] = generation;
                    self.queue.push_back(u);
                }
            }
        }
        reached == vertices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, vs};
    use crate::verify::check_community;

    fn cfg(k: usize, r: usize, s: usize, greedy: bool) -> LocalSearchConfig {
        LocalSearchConfig { k, r, s, greedy }
    }

    #[test]
    fn rejects_bad_params() {
        let wg = figure1();
        assert!(local_search(&wg, &cfg(2, 0, 5, true), Aggregation::Sum).is_err());
        assert!(local_search(&wg, &cfg(3, 2, 3, true), Aggregation::Sum).is_err());
    }

    #[test]
    fn results_are_valid_size_bounded_communities() {
        let wg = figure1();
        for greedy in [true, false] {
            for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min] {
                let res = local_search(&wg, &cfg(2, 3, 4, greedy), agg).unwrap();
                assert!(!res.is_empty(), "{} greedy={greedy}", agg.name());
                for c in &res {
                    check_community(&wg, 2, Some(4), agg, c).unwrap_or_else(|e| {
                        panic!("{} greedy={greedy}: {:?} -> {e:?}", agg.name(), c.vertices)
                    });
                }
            }
        }
    }

    #[test]
    fn greedy_avg_finds_the_best_triangle() {
        let wg = figure1();
        let res = local_search(&wg, &cfg(2, 3, 3, true), Aggregation::Average).unwrap();
        // {v1, v2, v4} (avg 24) is discoverable from seed v1/v2/v4 pools.
        assert_eq!(res[0].vertices, vs(&[1, 2, 4]));
        assert_eq!(res[0].value, 24.0);
    }

    #[test]
    fn sum_strategy_finds_the_example_community() {
        let wg = figure1();
        let res = local_search(&wg, &cfg(2, 5, 4, true), Aggregation::Sum).unwrap();
        // With s = 4, {v3, v6, v9, v10} (sum 40) is one of Example 1's
        // size-constrained communities; greedy should rank a community
        // with value >= 40 on top.
        assert!(res[0].value >= 40.0, "top value {}", res[0].value);
        for c in &res {
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn greedy_beats_random_on_power_law_graph() {
        // The effectiveness claim of Figs 12-13: on heavy-tailed graphs
        // with PageRank weights, the greedy strategy's r-th influence
        // value dominates random's. (Pointwise dominance does not hold on
        // arbitrary tiny fixtures; the claim is about realistic inputs.)
        let spec = ic_gen::datasets::by_name(ic_gen::datasets::Profile::Quick, "email").unwrap();
        let wg = spec.generate_weighted();
        for agg in [Aggregation::Sum, Aggregation::Average] {
            let greedy = local_search(&wg, &cfg(4, 5, 20, true), agg).unwrap();
            let random = local_search(&wg, &cfg(4, 5, 20, false), agg).unwrap();
            let gv = greedy.last().map_or(f64::NEG_INFINITY, |c| c.value);
            let rv = random.last().map_or(f64::NEG_INFINITY, |c| c.value);
            assert!(
                gv >= rv - 1e-12,
                "{}: greedy {gv} < random {rv}",
                agg.name()
            );
        }
    }

    #[test]
    fn nonoverlapping_results_are_disjoint() {
        let wg = figure1();
        for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min] {
            let res =
                local_search_nonoverlapping(&wg, &cfg(2, 3, 4, true), agg).unwrap();
            assert!(crate::algo::nonoverlap::is_nonoverlapping(&res), "{}", agg.name());
            for c in &res {
                check_community(&wg, 2, Some(4), agg, c).unwrap();
            }
        }
    }

    #[test]
    fn min_aggregation_uses_prefix_strategy() {
        let wg = figure1();
        let res = local_search(&wg, &cfg(2, 2, 3, true), Aggregation::Min).unwrap();
        // Best min triangle is {v5, v7, v8} with value 12.
        assert_eq!(res[0].value, 12.0);
    }

    #[test]
    fn weight_density_and_balanced_density_run() {
        let wg = figure1();
        let res =
            local_search(&wg, &cfg(2, 2, 5, true), Aggregation::WeightDensity { beta: 1.0 })
                .unwrap();
        assert!(!res.is_empty());
        // Balanced density: communities below half the total weight rank
        // -inf; the solver must not return them as positive hits.
        let res = local_search(&wg, &cfg(2, 2, 8, true), Aggregation::BalancedDensity).unwrap();
        for c in &res {
            if c.value.is_finite() {
                let w: f64 = c.vertices.iter().map(|&v| wg.weight(v)).sum();
                assert!(2.0 * w > wg.total_weight());
            }
        }
    }

    #[test]
    fn checker_detects_all_cases() {
        let wg = figure1();
        let g = wg.graph();
        let mut ch = SubsetChecker::new(g.num_vertices());
        assert!(ch.is_connected_kcore(g, &vs(&[1, 2, 4]), 2));
        assert!(!ch.is_connected_kcore(g, &vs(&[1, 2]), 2)); // degree 1
        assert!(!ch.is_connected_kcore(g, &vs(&[1, 2, 4, 5, 7, 8]), 2)); // disconnected
        assert!(!ch.is_connected_kcore(g, &[], 0));
        // Repeated calls stay correct.
        assert!(ch.is_connected_kcore(g, &vs(&[3, 9, 10]), 2));
    }
}
