//! Algorithm 4 (`LOCAL SEARCH`) for the NP-hard / size-constrained
//! problems, with the paper's two strategies:
//!
//! * **`SumStrategy`** (used for `sum`-like aggregations): take the seed's
//!   s-nearest-neighbor pool, then drop the last vertex until the
//!   candidate induces a connected k-core;
//! * **`AvgStrategy`** (used for `avg` and every other aggregation): test
//!   every prefix of the pool; greedy mode accepts the first qualifying
//!   prefix (pool sorted descending by weight, so later prefixes only
//!   dilute), random mode keeps the best qualifying prefix.
//!
//! The pool is collected by truncated BFS (the paper's "s-nearest
//! neighbors of `v_i`, exploring 2-hop neighbors when needed"). `greedy`
//! sorts the pool by descending influence, `random` keeps BFS order —
//! these are the paper's Greedy and Random variants (Figs 6–13).
//!
//! The per-seed machinery is zero-rebuild: one [`LocalScratch`] per query
//! holds epoch-stamped visitation marks, the pool buffers, and an
//! **incremental candidate degree tracker**. Growing or shrinking the
//! candidate by one vertex updates internal degrees and a below-k
//! violation counter in `O(d(v))`, so the k-core test per prefix is O(1)
//! instead of a full candidate rescan, and connectivity BFS only runs for
//! prefixes that already pass the degree and threshold checks.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{AggregateState, Aggregation, Community, SearchError, TopList};
use ic_graph::{BitSet, Graph, VertexId, WeightedGraph};
use ic_kcore::kcore_mask;
use std::collections::VecDeque;

/// Configuration for [`local_search`].
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchConfig {
    /// Degree constraint `k`.
    pub k: usize,
    /// Result count `r`.
    pub r: usize,
    /// Community size bound `s` (must exceed `k`).
    pub s: usize,
    /// Greedy (weight-sorted pools) vs Random (BFS-ordered pools).
    pub greedy: bool,
}

/// Runs Algorithm 4: top-r size-constrained k-influential community search
/// under any aggregation. Heuristic (the problem is NP-hard, Theorem 4);
/// results are valid communities but not guaranteed optimal.
pub fn local_search(
    wg: &WeightedGraph,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_params(config)?;
    let g = wg.graph();
    let core = kcore_mask(g, config.k);
    let mut list = TopList::new(config.r);
    let mut scratch = LocalScratch::new(g.num_vertices());

    for seed in core.iter() {
        run_seed(
            wg,
            g,
            &core,
            seed as VertexId,
            config,
            aggregation,
            &mut scratch,
            &mut list,
        );
    }
    Ok(list.into_vec())
}

/// Non-overlapping variant: once a community is accepted its vertices are
/// removed from the graph (the paper's TONIC adaptation of Algorithm 4).
/// Seeds are visited in descending weight order in greedy mode so the most
/// influential regions are claimed first.
pub fn local_search_nonoverlapping(
    wg: &WeightedGraph,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_params(config)?;
    let g = wg.graph();
    let mut core = kcore_mask(g, config.k);
    let mut scratch = LocalScratch::new(g.num_vertices());
    let mut results: Vec<Community> = Vec::with_capacity(config.r);

    let mut seeds: Vec<u32> = core.iter().map(|v| v as u32).collect();
    if config.greedy {
        seeds.sort_by(|&a, &b| {
            wg.weight(b)
                .total_cmp(&wg.weight(a))
                .then_with(|| a.cmp(&b))
        });
    }

    for &seed in &seeds {
        if results.len() == config.r {
            break;
        }
        if !core.contains(seed as usize) {
            continue;
        }
        // Single-slot list: accept the seed's best candidate, if any.
        let mut single = TopList::new(1);
        run_seed(
            wg,
            g,
            &core,
            seed,
            config,
            aggregation,
            &mut scratch,
            &mut single,
        );
        if let Some(found) = single.into_vec().pop() {
            for &v in &found.vertices {
                core.remove(v as usize);
            }
            results.push(found);
        }
    }
    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

pub(crate) fn validate_params(config: &LocalSearchConfig) -> Result<(), SearchError> {
    validate_k_r(config.r)?;
    if config.s <= config.k {
        return Err(SearchError::InvalidParams(format!(
            "size bound s = {} must exceed k = {} (a k-core needs at least k+1 vertices)",
            config.s, config.k
        )));
    }
    Ok(())
}

/// One consumer of a shared seed expansion in [`run_seed_multi`]: an
/// aggregation paired with the top-r list collecting its results.
pub struct SeedTarget<'a> {
    /// Aggregation this target evaluates candidates under.
    pub aggregation: Aggregation,
    /// The target's own top-r list (its capacity is the query's `r`;
    /// its threshold/floor drive the target's pruning independently).
    pub list: &'a mut TopList,
}

/// Expands one seed of Algorithm 4: collects the seed's s-nearest-
/// neighbor pool and applies the aggregation's strategy, inserting any
/// qualifying candidate into `list`.
///
/// This is the seed-level building block behind [`local_search`]; it is
/// public so multi-threaded drivers (`par_local_search`, the batched
/// engine) can distribute seeds across workers while sharing pruning
/// state through `list`'s threshold/floor. `core` must be the maximal
/// k-core mask of `wg` for `config.k`, and `scratch` a
/// [`LocalScratch`] sized to the graph. Calling this for every vertex of
/// `core` in ascending order against one list reproduces `local_search`
/// exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_seed(
    wg: &WeightedGraph,
    g: &Graph,
    core: &BitSet,
    seed: VertexId,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
    scratch: &mut LocalScratch,
    list: &mut TopList,
) {
    let mut targets = [SeedTarget { aggregation, list }];
    run_seed_multi(
        wg,
        g,
        core,
        seed,
        config.k,
        config.s,
        config.greedy,
        scratch,
        &mut targets,
    );
}

/// [`run_seed`] for several queries at once: builds the seed's pool
/// **once** and applies each target's strategy to it. Queries that share
/// `(k, s, greedy)` — any aggregation, any `r` — can be answered in one
/// pass over the seeds; each target's outcome is bit-identical to a
/// solo [`run_seed`] sweep, because the pool depends only on
/// `(k, s, greedy)` and each strategy reads nothing but the pool and its
/// own list. This is the batched engine's local-search family merge.
#[allow(clippy::too_many_arguments)]
pub fn run_seed_multi(
    wg: &WeightedGraph,
    g: &Graph,
    core: &BitSet,
    seed: VertexId,
    k: usize,
    s: usize,
    greedy: bool,
    scratch: &mut LocalScratch,
    targets: &mut [SeedTarget<'_>],
) {
    // Line 4: the s-nearest-neighbor pool via truncated BFS. In greedy
    // mode the BFS visits each layer in descending weight order, so when a
    // layer must be cut to fit `s`, the influential members survive (the
    // paper leaves the tie-break unspecified; random mode uses plain BFS
    // order).
    scratch.build_pool(wg, g, core, seed, s, greedy);
    let mut pool = std::mem::take(&mut scratch.pool);
    if pool.len() <= k {
        scratch.pool = pool;
        return; // cannot host a k-core
    }
    // Lines 5-6: greedy sorts by descending influence (seed kept first —
    // the pool must stay anchored at the seed for locality).
    if greedy {
        pool[1..].sort_by(|&a, &b| {
            wg.weight(b)
                .total_cmp(&wg.weight(a))
                .then_with(|| a.cmp(&b))
        });
    }
    for target in targets {
        // Strategy selection by certificate: the drop-from-full-pool
        // `SumStrategy` needs the candidate's value to track the pool
        // cheaply as it shrinks, which is exactly the O(1) remove-delta
        // certificate (`sum`, `sum-surplus`, and any custom function
        // declaring it). Everything else — `avg`, the order-statistics
        // functions, opaque custom aggregations — walks pool prefixes.
        if target.aggregation.certificates().incremental_removal {
            sum_strategy(wg, g, &pool, k, target.aggregation, scratch, target.list);
        } else {
            prefix_strategy(
                wg,
                g,
                &pool,
                k,
                greedy,
                target.aggregation,
                scratch,
                target.list,
            );
        }
    }
    scratch.pool = pool;
}

/// Procedure `SumStrategy`: start from the full pool, drop the last vertex
/// until the candidate is a connected k-core with a competitive value.
fn sum_strategy(
    wg: &WeightedGraph,
    g: &Graph,
    pool: &[VertexId],
    k: usize,
    aggregation: Aggregation,
    scratch: &mut LocalScratch,
    list: &mut TopList,
) {
    let mut state = AggregateState::new(aggregation, wg.total_weight());
    scratch.begin_candidate(k);
    for &v in pool {
        scratch.push(g, v);
        state.add(wg.weight(v));
    }
    let mut len = pool.len();
    while len > k && state.value() > list.threshold() {
        if scratch.is_kcore() && scratch.is_connected(g, pool[0]) {
            list.insert(community_from_vertices(
                wg,
                aggregation,
                pool[..len].to_vec(),
            ));
            return;
        }
        len -= 1;
        let dropped = pool[len];
        scratch.pop(g, dropped);
        state.remove(wg.weight(dropped));
    }
}

/// Procedure `AvgStrategy` generalized to any aggregation: test every
/// prefix of the pool; greedy accepts the first qualifying prefix, random
/// keeps the best.
#[allow(clippy::too_many_arguments)]
fn prefix_strategy(
    wg: &WeightedGraph,
    g: &Graph,
    pool: &[VertexId],
    k: usize,
    greedy: bool,
    aggregation: Aggregation,
    scratch: &mut LocalScratch,
    list: &mut TopList,
) {
    let mut state = AggregateState::new(aggregation, wg.total_weight());
    let mut best: Option<Community> = None;
    scratch.begin_candidate(k);
    for (i, &v) in pool.iter().enumerate() {
        scratch.push(g, v);
        state.add(wg.weight(v));
        if i + 1 > k
            && state.value() > list.threshold()
            && scratch.is_kcore()
            && scratch.is_connected(g, pool[0])
        {
            let community = community_from_vertices(wg, aggregation, pool[..=i].to_vec());
            if greedy {
                list.insert(community);
                return;
            }
            let better = best
                .as_ref()
                .is_none_or(|b| community.ranking_cmp(b).is_lt());
            if better {
                best = Some(community);
            }
        }
    }
    if let Some(b) = best {
        list.insert(b);
    }
}

/// Per-query scratch for the local-search strategies: pool building
/// buffers plus an incremental candidate degree tracker. Everything is
/// epoch-stamped; nothing allocates after the first few seeds warm the
/// buffers up. One instance per worker thread; see [`run_seed`].
pub struct LocalScratch {
    // Pool building.
    pool: Vec<VertexId>,
    layer: Vec<VertexId>,
    next_layer: Vec<VertexId>,
    visited: Vec<u32>,
    visit_epoch: u32,
    // Incremental candidate state.
    in_cand: Vec<u32>,
    cand_epoch: u32,
    deg: Vec<u32>,
    below_k: usize,
    cand_len: usize,
    k: usize,
    // Connectivity BFS.
    bfs_visited: Vec<u32>,
    bfs_epoch: u32,
    queue: VecDeque<VertexId>,
}

impl LocalScratch {
    /// Creates scratch state for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        LocalScratch {
            pool: Vec::new(),
            layer: Vec::new(),
            next_layer: Vec::new(),
            visited: vec![0; n],
            visit_epoch: 0,
            in_cand: vec![0; n],
            cand_epoch: 0,
            deg: vec![0; n],
            below_k: 0,
            cand_len: 0,
            k: 0,
            bfs_visited: vec![0; n],
            bfs_epoch: 0,
            queue: VecDeque::new(),
        }
    }

    fn bump(epoch: &mut u32, stamps: &mut [u32]) -> u32 {
        if *epoch == u32::MAX {
            stamps.fill(0);
            *epoch = 0;
        }
        *epoch += 1;
        *epoch
    }

    /// Truncated BFS pool into `self.pool`: plain FIFO order in random
    /// mode, per-layer descending-weight order in greedy mode (so the
    /// layer that exceeds the size budget keeps its most influential
    /// members).
    fn build_pool(
        &mut self,
        wg: &WeightedGraph,
        g: &Graph,
        mask: &BitSet,
        seed: VertexId,
        limit: usize,
        greedy: bool,
    ) {
        self.pool.clear();
        if limit == 0 || !mask.contains(seed as usize) {
            return;
        }
        let visit = Self::bump(&mut self.visit_epoch, &mut self.visited);
        self.visited[seed as usize] = visit;
        self.layer.clear();
        self.layer.push(seed);
        while !self.layer.is_empty() && self.pool.len() < limit {
            for i in 0..self.layer.len() {
                if self.pool.len() == limit {
                    return;
                }
                self.pool.push(self.layer[i]);
            }
            self.next_layer.clear();
            for i in 0..self.layer.len() {
                let v = self.layer[i];
                for &u in g.neighbors(v) {
                    if mask.contains(u as usize) && self.visited[u as usize] != visit {
                        self.visited[u as usize] = visit;
                        self.next_layer.push(u);
                    }
                }
            }
            if greedy {
                self.next_layer.sort_by(|&a, &b| {
                    wg.weight(b)
                        .total_cmp(&wg.weight(a))
                        .then_with(|| a.cmp(&b))
                });
            }
            std::mem::swap(&mut self.layer, &mut self.next_layer);
        }
    }

    /// Starts an empty candidate with degree constraint `k`.
    pub(crate) fn begin_candidate(&mut self, k: usize) {
        Self::bump(&mut self.cand_epoch, &mut self.in_cand);
        self.k = k;
        self.below_k = 0;
        self.cand_len = 0;
    }

    /// Adds `v` to the candidate, updating internal degrees and the
    /// below-k violation counter in `O(d(v))`.
    pub(crate) fn push(&mut self, g: &Graph, v: VertexId) {
        let epoch = self.cand_epoch;
        let k = self.k as u32;
        let mut dv = 0u32;
        for &u in g.neighbors(v) {
            let ui = u as usize;
            if self.in_cand[ui] == epoch {
                dv += 1;
                self.deg[ui] += 1;
                if self.deg[ui] == k {
                    self.below_k -= 1; // u crossed up to the constraint
                }
            }
        }
        self.in_cand[v as usize] = epoch;
        self.deg[v as usize] = dv;
        if dv < k {
            self.below_k += 1;
        }
        self.cand_len += 1;
    }

    /// Removes `v` (must be in the candidate) in `O(d(v))`.
    pub(crate) fn pop(&mut self, g: &Graph, v: VertexId) {
        let epoch = self.cand_epoch;
        let k = self.k as u32;
        debug_assert_eq!(self.in_cand[v as usize], epoch, "pop of a non-member");
        self.in_cand[v as usize] = 0;
        if self.deg[v as usize] < k {
            self.below_k -= 1;
        }
        for &u in g.neighbors(v) {
            let ui = u as usize;
            if self.in_cand[ui] == epoch {
                self.deg[ui] -= 1;
                if self.deg[ui] + 1 == k {
                    self.below_k += 1; // u dropped below the constraint
                }
            }
        }
        self.cand_len -= 1;
    }

    /// O(1): does every candidate member meet the degree constraint?
    pub(crate) fn is_kcore(&self) -> bool {
        self.cand_len > 0 && self.below_k == 0
    }

    /// BFS connectivity check over the candidate, `O(Σ_{v} d(v))`. Only
    /// called for candidates that already pass [`Self::is_kcore`].
    pub(crate) fn is_connected(&mut self, g: &Graph, start: VertexId) -> bool {
        if self.cand_len == 0 || self.in_cand[start as usize] != self.cand_epoch {
            return false;
        }
        let visit = Self::bump(&mut self.bfs_epoch, &mut self.bfs_visited);
        self.queue.clear();
        self.queue.push_back(start);
        self.bfs_visited[start as usize] = visit;
        let mut reached = 0usize;
        while let Some(x) = self.queue.pop_front() {
            reached += 1;
            for &u in g.neighbors(x) {
                let ui = u as usize;
                if self.in_cand[ui] == self.cand_epoch && self.bfs_visited[ui] != visit {
                    self.bfs_visited[ui] = visit;
                    self.queue.push_back(u);
                }
            }
        }
        reached == self.cand_len
    }
}

/// Stamped-array scratch for "is this vertex list a connected k-core?"
/// checks in `O(Σ_{v ∈ C} d(v))` without allocation per call. Used by the
/// refinement pass; the local-search strategies themselves use the
/// incremental [`LocalScratch`] tracker instead.
pub(crate) struct SubsetChecker {
    stamp: Vec<u32>,
    visited: Vec<u32>,
    generation: u32,
    queue: VecDeque<VertexId>,
}

impl SubsetChecker {
    pub(crate) fn new(n: usize) -> Self {
        SubsetChecker {
            stamp: vec![0; n],
            visited: vec![0; n],
            generation: 0,
            queue: VecDeque::new(),
        }
    }

    pub(crate) fn is_connected_kcore(
        &mut self,
        g: &Graph,
        vertices: &[VertexId],
        k: usize,
    ) -> bool {
        if vertices.is_empty() {
            return false;
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.visited.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        let generation = self.generation;
        for &v in vertices {
            self.stamp[v as usize] = generation;
        }
        // Minimum internal degree.
        for &v in vertices {
            let d = g
                .neighbors(v)
                .iter()
                .filter(|&&u| self.stamp[u as usize] == generation)
                .count();
            if d < k {
                return false;
            }
        }
        // Connectivity.
        self.queue.clear();
        self.queue.push_back(vertices[0]);
        self.visited[vertices[0] as usize] = generation;
        let mut reached = 0usize;
        while let Some(x) = self.queue.pop_front() {
            reached += 1;
            for &u in g.neighbors(x) {
                let ui = u as usize;
                if self.stamp[ui] == generation && self.visited[ui] != generation {
                    self.visited[ui] = generation;
                    self.queue.push_back(u);
                }
            }
        }
        reached == vertices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, vs};
    use crate::verify::check_community;

    fn cfg(k: usize, r: usize, s: usize, greedy: bool) -> LocalSearchConfig {
        LocalSearchConfig { k, r, s, greedy }
    }

    #[test]
    fn rejects_bad_params() {
        let wg = figure1();
        assert!(local_search(&wg, &cfg(2, 0, 5, true), Aggregation::Sum).is_err());
        assert!(local_search(&wg, &cfg(3, 2, 3, true), Aggregation::Sum).is_err());
    }

    #[test]
    fn results_are_valid_size_bounded_communities() {
        let wg = figure1();
        for greedy in [true, false] {
            for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min] {
                let res = local_search(&wg, &cfg(2, 3, 4, greedy), agg).unwrap();
                assert!(!res.is_empty(), "{} greedy={greedy}", agg.name());
                for c in &res {
                    check_community(&wg, 2, Some(4), agg, c).unwrap_or_else(|e| {
                        panic!("{} greedy={greedy}: {:?} -> {e:?}", agg.name(), c.vertices)
                    });
                }
            }
        }
    }

    #[test]
    fn greedy_avg_finds_the_best_triangle() {
        let wg = figure1();
        let res = local_search(&wg, &cfg(2, 3, 3, true), Aggregation::Average).unwrap();
        // {v1, v2, v4} (avg 24) is discoverable from seed v1/v2/v4 pools.
        assert_eq!(res[0].vertices, vs(&[1, 2, 4]));
        assert_eq!(res[0].value, 24.0);
    }

    #[test]
    fn sum_strategy_finds_the_example_community() {
        let wg = figure1();
        let res = local_search(&wg, &cfg(2, 5, 4, true), Aggregation::Sum).unwrap();
        // With s = 4, {v3, v6, v9, v10} (sum 40) is one of Example 1's
        // size-constrained communities; greedy should rank a community
        // with value >= 40 on top.
        assert!(res[0].value >= 40.0, "top value {}", res[0].value);
        for c in &res {
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn greedy_beats_random_on_power_law_graph() {
        // The effectiveness claim of Figs 12-13: on heavy-tailed graphs
        // with PageRank weights, the greedy strategy's r-th influence
        // value dominates random's. (Pointwise dominance does not hold on
        // arbitrary tiny fixtures; the claim is about realistic inputs.)
        let spec = ic_gen::datasets::by_name(ic_gen::datasets::Profile::Quick, "email").unwrap();
        let wg = spec.generate_weighted();
        for agg in [Aggregation::Sum, Aggregation::Average] {
            let greedy = local_search(&wg, &cfg(4, 5, 20, true), agg).unwrap();
            let random = local_search(&wg, &cfg(4, 5, 20, false), agg).unwrap();
            let gv = greedy.last().map_or(f64::NEG_INFINITY, |c| c.value);
            let rv = random.last().map_or(f64::NEG_INFINITY, |c| c.value);
            assert!(
                gv >= rv - 1e-12,
                "{}: greedy {gv} < random {rv}",
                agg.name()
            );
        }
    }

    #[test]
    fn nonoverlapping_results_are_disjoint() {
        let wg = figure1();
        for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min] {
            let res = local_search_nonoverlapping(&wg, &cfg(2, 3, 4, true), agg).unwrap();
            assert!(
                crate::algo::nonoverlap::is_nonoverlapping(&res),
                "{}",
                agg.name()
            );
            for c in &res {
                check_community(&wg, 2, Some(4), agg, c).unwrap();
            }
        }
    }

    #[test]
    fn min_aggregation_uses_prefix_strategy() {
        let wg = figure1();
        let res = local_search(&wg, &cfg(2, 2, 3, true), Aggregation::Min).unwrap();
        // Best min triangle is {v5, v7, v8} with value 12.
        assert_eq!(res[0].value, 12.0);
    }

    #[test]
    fn weight_density_and_balanced_density_run() {
        let wg = figure1();
        let res = local_search(
            &wg,
            &cfg(2, 2, 5, true),
            Aggregation::WeightDensity { beta: 1.0 },
        )
        .unwrap();
        assert!(!res.is_empty());
        // Balanced density: communities below half the total weight rank
        // -inf; the solver must not return them as positive hits.
        let res = local_search(&wg, &cfg(2, 2, 8, true), Aggregation::BalancedDensity).unwrap();
        for c in &res {
            if c.value.is_finite() {
                let w: f64 = c.vertices.iter().map(|&v| wg.weight(v)).sum();
                assert!(2.0 * w > wg.total_weight());
            }
        }
    }

    #[test]
    fn incremental_tracker_matches_subset_checker() {
        let wg = figure1();
        let g = wg.graph();
        let n = g.num_vertices();
        let mut scratch = LocalScratch::new(n);
        let mut checker = SubsetChecker::new(n);
        // Grow a candidate vertex by vertex and compare the incremental
        // verdict against the from-scratch checker at every step.
        for k in 1..4usize {
            let order: Vec<u32> = (0..n as u32).collect();
            scratch.begin_candidate(k);
            let mut current: Vec<u32> = Vec::new();
            for &v in &order {
                scratch.push(g, v);
                current.push(v);
                let incremental = scratch.is_kcore() && scratch.is_connected(g, current[0]);
                let reference = checker.is_connected_kcore(g, &current, k);
                assert_eq!(incremental, reference, "k={k} grow {current:?}");
            }
            // Shrink from the back, comparing again.
            while let Some(v) = current.pop() {
                scratch.pop(g, v);
                if current.is_empty() {
                    break;
                }
                let incremental = scratch.is_kcore() && scratch.is_connected(g, current[0]);
                let reference = checker.is_connected_kcore(g, &current, k);
                assert_eq!(incremental, reference, "k={k} shrink {current:?}");
            }
        }
    }

    #[test]
    fn checker_detects_all_cases() {
        let wg = figure1();
        let g = wg.graph();
        let mut ch = SubsetChecker::new(g.num_vertices());
        assert!(ch.is_connected_kcore(g, &vs(&[1, 2, 4]), 2));
        assert!(!ch.is_connected_kcore(g, &vs(&[1, 2]), 2)); // degree 1
        assert!(!ch.is_connected_kcore(g, &vs(&[1, 2, 4, 5, 7, 8]), 2)); // disconnected
        assert!(!ch.is_connected_kcore(g, &[], 0));
        // Repeated calls stay correct.
        assert!(ch.is_connected_kcore(g, &vs(&[3, 9, 10]), 2));
    }
}
