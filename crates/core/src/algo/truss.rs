//! Extension: influential community search under the **k-truss** model.
//!
//! The paper builds its community model on the k-core but explicitly
//! points at the k-truss as the other established cohesiveness metric
//! (Section I / related work). This module ports the two tractable
//! solvers to trusses:
//!
//! * [`truss_min_topr`] — the `min` aggregation (classic influential
//!   communities): communities are the edge-connected components of the
//!   k-truss of `G≥θ`, enumerated by threshold peeling with triangle-
//!   support cascades (the truss analog of `algo::min_topr`);
//! * [`truss_sum_topr`] — the `sum` aggregation over disjoint k-truss
//!   components (the truss analog of the TONIC `sum` shortcut).
//!
//! A truss community is *stronger* than a core community: every member
//! edge participates in `k − 2` triangles inside the community, so the
//! result groups are clique-ier. Both solvers are exact for their
//! semantics; tests cross-validate against threshold recomputation.

use crate::algo::common::{community_from_vertices, validate_k_r};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{Graph, VertexId, WeightedGraph};
use std::collections::VecDeque;

/// Top-r influential communities under `min` with k-truss cohesiveness.
pub fn truss_min_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if k < 2 {
        return Err(SearchError::InvalidParams(format!(
            "truss order k = {k} must be at least 2"
        )));
    }
    let g = wg.graph();

    // Peel order: ascending weight, ties by id.
    let mut order: Vec<VertexId> = (0..g.num_vertices() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        wg.weight(a)
            .total_cmp(&wg.weight(b))
            .then_with(|| a.cmp(&b))
    });

    // Pass 1: event timeline.
    let mut events: Vec<(usize, f64)> = Vec::new();
    simulate_truss_peel(g, k, &order, |seq, v, _state| {
        events.push((seq, wg.weight(v)));
    });
    events.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    events.truncate(r);
    let selected: std::collections::HashSet<usize> = events.iter().map(|&(s, _)| s).collect();

    // Pass 2: snapshot the selected communities.
    let mut results: Vec<Community> = Vec::new();
    simulate_truss_peel(g, k, &order, |seq, v, state| {
        if selected.contains(&seq) {
            let comp = state.component_of(v);
            results.push(community_from_vertices(wg, Aggregation::Min, comp));
        }
    });
    results.sort_by(|a, b| a.ranking_cmp(b));
    Ok(results)
}

/// Top-r **disjoint** k-truss components ranked by `sum` (the truss analog
/// of the non-overlapping sum shortcut: components are disjoint, and under
/// a size-proportional aggregation each component dominates its subsets).
pub fn truss_sum_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if k < 2 {
        return Err(SearchError::InvalidParams(format!(
            "truss order k = {k} must be at least 2"
        )));
    }
    let comps = ic_kcore::maximal_ktruss_components(wg.graph(), k);
    let mut communities: Vec<Community> = comps
        .into_iter()
        .map(|c| community_from_vertices(wg, Aggregation::Sum, c))
        .collect();
    communities.sort_by(|a, b| a.ranking_cmp(b));
    communities.truncate(r);
    Ok(communities)
}

/// Alive-edge state during the truss peel.
struct TrussState<'g> {
    g: &'g Graph,
    edges: Vec<(VertexId, VertexId)>,
    /// "Not yet processed": triangles are accounted exactly once — by the
    /// first of their edges to be *processed* (dequeued), whose two
    /// companions are still alive at that moment.
    alive: Vec<bool>,
    /// Queued-for-removal flag (an edge can be queued while still alive).
    in_queue: Vec<bool>,
    support: Vec<u32>,
    /// Alive incident edge count per vertex.
    alive_degree: Vec<u32>,
}

impl<'g> TrussState<'g> {
    fn edge_id(&self, u: VertexId, v: VertexId) -> usize {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).expect("edge exists")
    }

    fn vertex_alive(&self, v: VertexId) -> bool {
        self.alive_degree[v as usize] > 0
    }

    /// Removes edge `e`, cascading the (k−2)-support constraint. Edges are
    /// marked dead when *processed*, not when queued, so a triangle whose
    /// edges fall in the same batch is still accounted exactly once (by
    /// whichever edge is dequeued first).
    fn remove_edge_cascade(&mut self, e: usize, k: usize, queue: &mut VecDeque<usize>) {
        if !self.alive[e] || self.in_queue[e] {
            return;
        }
        self.in_queue[e] = true;
        queue.push_back(e);
        while let Some(e) = queue.pop_front() {
            self.alive[e] = false;
            let (u, v) = self.edges[e];
            self.alive_degree[u as usize] -= 1;
            self.alive_degree[v as usize] -= 1;
            // For every triangle (u, v, w) not yet accounted by an earlier
            // processed edge, both companions lose one support.
            let mut companions: Vec<(usize, usize)> = Vec::new();
            merge_common(self.g, u, v, |w| {
                let eu = self.edge_id(u, w);
                let ev = self.edge_id(v, w);
                if self.alive[eu] && self.alive[ev] {
                    companions.push((eu, ev));
                }
            });
            for (eu, ev) in companions {
                for other in [eu, ev] {
                    self.support[other] = self.support[other].saturating_sub(1);
                    if (self.support[other] as usize) + 2 < k && !self.in_queue[other] {
                        self.in_queue[other] = true;
                        queue.push_back(other);
                    }
                }
            }
        }
    }

    /// The vertices reachable from `v` along alive edges (sorted).
    fn component_of(&self, v: VertexId) -> Vec<VertexId> {
        let n = self.g.num_vertices();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        let mut comp = Vec::new();
        seen[v as usize] = true;
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            comp.push(x);
            for &u in self.g.neighbors(x) {
                if !seen[u as usize] && self.alive[self.edge_id(x, u)] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        comp.sort_unstable();
        comp
    }
}

/// Runs the threshold peel: initializes to the maximal k-truss, then
/// removes vertices in `order`; each removal of a still-alive vertex is an
/// event (fired *before* the removal).
fn simulate_truss_peel<F: FnMut(usize, VertexId, &TrussState)>(
    g: &Graph,
    k: usize,
    order: &[VertexId],
    mut on_event: F,
) {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let m = edges.len();
    let mut state = TrussState {
        g,
        edges,
        alive: vec![true; m],
        in_queue: vec![false; m],
        support: vec![0; m],
        alive_degree: (0..g.num_vertices())
            .map(|v| g.degree(v as u32) as u32)
            .collect(),
    };
    // Initial supports.
    for e in 0..m {
        let (u, v) = state.edges[e];
        let mut s = 0u32;
        merge_common(g, u, v, |_| s += 1);
        state.support[e] = s;
    }
    // Peel to the maximal k-truss.
    let mut queue = VecDeque::new();
    for e in 0..m {
        if state.alive[e] && (state.support[e] as usize) + 2 < k {
            state.remove_edge_cascade(e, k, &mut queue);
        }
    }
    // Threshold peel.
    let mut seq = 0usize;
    for &v in order {
        if !state.vertex_alive(v) {
            continue;
        }
        on_event(seq, v, &state);
        seq += 1;
        let incident: Vec<usize> = g
            .neighbors(v)
            .iter()
            .map(|&u| state.edge_id(v, u))
            .filter(|&e| state.alive[e])
            .collect();
        for e in incident {
            state.remove_edge_cascade(e, k, &mut queue);
        }
    }
}

fn merge_common<F: FnMut(VertexId)>(g: &Graph, u: VertexId, v: VertexId, mut f: F) {
    let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
    while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => a = &a[1..],
            std::cmp::Ordering::Greater => b = &b[1..],
            std::cmp::Ordering::Equal => {
                f(x);
                a = &a[1..];
                b = &b[1..];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_graph::graph_from_edges;

    /// Brute-force oracle: distinct truss communities over all thresholds.
    fn oracle_min(wg: &WeightedGraph, k: usize, r: usize) -> Vec<Community> {
        let g = wg.graph();
        let mut thresholds: Vec<f64> = (0..g.num_vertices()).map(|v| wg.weight(v as u32)).collect();
        thresholds.sort_by(f64::total_cmp);
        thresholds.dedup();
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<Community> = Vec::new();
        for &theta in &thresholds {
            // Subgraph on vertices with weight >= theta.
            let keep: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| wg.weight(v) >= theta)
                .collect();
            let sub = ic_graph::induce(g, &keep);
            for comp in ic_kcore::maximal_ktruss_components(&sub.graph, k) {
                let original: Vec<u32> = comp.iter().map(|&lv| sub.to_original(lv)).collect();
                let c = community_from_vertices(wg, Aggregation::Min, original);
                if c.value == theta && seen.insert(c.vertices.clone()) {
                    out.push(c);
                }
            }
        }
        out.sort_by(|a, b| a.ranking_cmp(b));
        out.truncate(r);
        out
    }

    fn two_k4s_with_bridge() -> WeightedGraph {
        // K4 {0..3} (weights 1..4), bridge 3-4, K4 {4..7} (weights 10..13).
        let mut edges = vec![];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        edges.push((3, 4));
        let g = graph_from_edges(8, &edges);
        WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0]).unwrap()
    }

    #[test]
    fn min_truss_on_two_cliques() {
        let wg = two_k4s_with_bridge();
        let top = truss_min_topr(&wg, 4, 3).unwrap();
        // Best community: the heavy K4 (min 10); then its 3-subsets are
        // not 4-trusses, so next is... within the heavy K4 at theta=11:
        // K3 is not a 4-truss. So second distinct community is the light
        // K4 with min 1.
        assert_eq!(top[0].vertices, vec![4, 5, 6, 7]);
        assert_eq!(top[0].value, 10.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2, 3]);
        assert_eq!(top[1].value, 1.0);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn min_truss_matches_oracle_on_figure1() {
        let wg = crate::figure1::figure1();
        for k in [3usize, 4] {
            for r in [1usize, 2, 4] {
                let got = truss_min_topr(&wg, k, r).unwrap();
                let expect = oracle_min(&wg, k, r);
                assert_eq!(got, expect, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn min_truss_matches_oracle_on_clique_chain() {
        let wg = two_k4s_with_bridge();
        for k in [3usize, 4] {
            for r in [1usize, 3, 5] {
                let got = truss_min_topr(&wg, k, r).unwrap();
                let expect = oracle_min(&wg, k, r);
                assert_eq!(got, expect, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn sum_truss_components() {
        let wg = two_k4s_with_bridge();
        let top = truss_sum_topr(&wg, 4, 5).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![4, 5, 6, 7]);
        assert_eq!(top[0].value, 46.0);
        assert_eq!(top[1].value, 10.0);
    }

    #[test]
    fn truss_communities_are_cliquier_than_core_communities() {
        // Figure 1 at k = 3: the 3-core can be sparse, but every 3-truss
        // community is triangle-connected.
        let wg = crate::figure1::figure1();
        let top = truss_min_topr(&wg, 3, 3).unwrap();
        for c in &top {
            // Every edge inside a 3-truss community lies in >= 1 triangle
            // within the community.
            let g = wg.graph();
            for (i, &u) in c.vertices.iter().enumerate() {
                for &v in c.vertices.iter().skip(i + 1) {
                    if g.has_edge(u, v) {
                        let common = c
                            .vertices
                            .iter()
                            .filter(|&&w| w != u && w != v && g.has_edge(u, w) && g.has_edge(v, w))
                            .count();
                        assert!(common >= 1, "edge ({u},{v}) in no triangle");
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_bad_params() {
        let wg = two_k4s_with_bridge();
        assert!(truss_min_topr(&wg, 1, 3).is_err());
        assert!(truss_min_topr(&wg, 4, 0).is_err());
        assert!(truss_sum_topr(&wg, 0, 3).is_err());
    }

    #[test]
    fn graph_without_triangles_has_no_truss_communities() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let wg = WeightedGraph::new(g, vec![1.0; 4]).unwrap();
        assert!(truss_min_topr(&wg, 3, 3).unwrap().is_empty());
        assert!(truss_sum_topr(&wg, 3, 3).unwrap().is_empty());
    }
}
