use crate::{Aggregation, Community, SearchError};
use ic_graph::{VertexId, WeightedGraph};

/// Builds a [`Community`] from a vertex list, evaluating its influence
/// value under `aggregation`.
pub(crate) fn community_from_vertices(
    wg: &WeightedGraph,
    aggregation: Aggregation,
    vertices: Vec<VertexId>,
) -> Community {
    let weights: Vec<f64> = vertices.iter().map(|&v| wg.weight(v)).collect();
    let value = aggregation.evaluate(&weights, wg.total_weight());
    Community::new(vertices, value)
}

/// Converts connected k-core components into valued communities.
pub(crate) fn components_as_communities(
    wg: &WeightedGraph,
    aggregation: Aggregation,
    components: Vec<Vec<VertexId>>,
) -> Vec<Community> {
    components
        .into_iter()
        .map(|c| community_from_vertices(wg, aggregation, c))
        .collect()
}

/// Shared parameter validation for every solver.
pub(crate) fn validate_k_r(r: usize) -> Result<(), SearchError> {
    if r == 0 {
        return Err(SearchError::InvalidParams(
            "result count r must be positive".into(),
        ));
    }
    Ok(())
}

/// Ensures the aggregation declares the removal-decreasing certificate
/// (Corollary 2, required by Algorithms 1 and 2).
pub(crate) fn require_removal_decreasing(
    algorithm: &'static str,
    aggregation: Aggregation,
) -> Result<(), SearchError> {
    if aggregation.certificates().removal_decreasing {
        Ok(())
    } else {
        Err(SearchError::UnsupportedAggregation {
            algorithm,
            aggregation,
            reason: "requires the removal-decreasing certificate (Corollary 2: the influence \
                     value strictly decreases when vertices are removed); use local_search or \
                     exact_topr instead",
        })
    }
}

pub(crate) use require_removal_decreasing as require_corollary2;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-vertex mix for the order-independent set key. Exposed separately
/// so callers can maintain the running sum incrementally (subtracting a
/// deleted vertex's mix instead of re-hashing the whole set).
pub(crate) fn vertex_mix(v: VertexId) -> u64 {
    splitmix64(v as u64)
}

/// Sum of per-vertex mixes over a set (commutative, subtractable).
pub(crate) fn vertex_mix_sum(vertices: &[VertexId]) -> u64 {
    vertices
        .iter()
        .fold(0u64, |acc, &v| acc.wrapping_add(vertex_mix(v)))
}

/// Finalizes a mix sum + size into the set key.
pub(crate) fn finalize_set_key(mix_sum: u64, len: usize) -> u64 {
    splitmix64(mix_sum ^ (len as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
}

/// Order-independent 64-bit key of a vertex set: the wrapping sum of a
/// per-vertex mix, finalized with the set size. Lets the arena-based
/// solvers deduplicate children straight off the unsorted BFS component
/// buffer — no sort, no materialization — at the same (negligible)
/// collision risk the seed already accepted for its sorted-list FNV
/// signatures.
pub(crate) fn vertex_set_key(vertices: &[VertexId]) -> u64 {
    finalize_set_key(vertex_mix_sum(vertices), vertices.len())
}

/// Shared child-expansion step of the arena-based Corollary-2 solvers
/// (`sum_naive`, `tic_improved`): deletes `victim` from the loaded
/// parent, appends every *new* child community to `out`, and rolls the
/// arena back.
///
/// The arena must hold the parent (same vertex list as
/// `parent_vertices`) with articulation points marked; `parent_mix` is
/// `vertex_mix_sum(parent_vertices)`. When the deletion neither cascades
/// nor hits an articulation point, the only child is
/// `parent ∖ {victim}`: its dedup key is an O(1) subtraction and no
/// component walk happens. Otherwise the surviving components come off
/// the arena's reusable buffer, deduplicated before any allocation.
/// Fresh children are sorted before evaluation so the floating-point
/// summation order (and hence the value, bit for bit) matches the
/// from-scratch oracle's sorted components.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_children(
    arena: &mut ic_kcore::PeelArena,
    wg: &WeightedGraph,
    aggregation: Aggregation,
    parent_value: f64,
    parent_vertices: &[VertexId],
    parent_mix: u64,
    victim: VertexId,
    explored: &mut std::collections::HashSet<u64>,
    out: &mut Vec<crate::Community>,
) {
    #[cfg(debug_assertions)]
    let fresh_start = out.len();
    arena.remove_cascade(victim);
    if arena.journal_len() == 1 && !arena.is_articulation(victim) {
        let key = finalize_set_key(
            parent_mix.wrapping_sub(vertex_mix(victim)),
            parent_vertices.len() - 1,
        );
        if explored.insert(key) {
            let vertices: Vec<VertexId> = parent_vertices
                .iter()
                .copied()
                .filter(|&u| u != victim)
                .collect();
            out.push(community_from_vertices(wg, aggregation, vertices));
        }
    } else {
        arena.for_each_component(|comp| {
            if explored.insert(vertex_set_key(comp)) {
                let mut vertices = comp.to_vec();
                vertices.sort_unstable();
                out.push(community_from_vertices(wg, aggregation, vertices));
            }
        });
    }
    arena.rollback();
    // Debug-mode certificate check (see `ic_core::certify`): the arena
    // solvers only run for aggregations declaring removal-decreasing
    // monotonicity, so every enumerated child must not outscore its
    // parent. (Strict decrease is the certificate's claim for positive
    // weights; zero-weight vertices legitimately tie, so the in-solver
    // check is non-strict.) A custom function whose mis-declared
    // certificate slipped past the sampled registration harness trips
    // here on the first real subgraph that falsifies it.
    #[cfg(debug_assertions)]
    if aggregation.certificates().removal_decreasing {
        for child in &out[fresh_start..] {
            debug_assert!(
                child.value.total_cmp(&parent_value).is_le(),
                "certificate `removal_decreasing` falsified by {}: child {:?} has value {} \
                 > parent value {parent_value}",
                aggregation.name(),
                child.vertices,
                child.value,
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = parent_value;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_key_is_order_independent_and_discriminating() {
        assert_eq!(vertex_set_key(&[3, 1, 2]), vertex_set_key(&[1, 2, 3]));
        assert_ne!(vertex_set_key(&[1, 2, 3]), vertex_set_key(&[1, 2, 4]));
        assert_ne!(vertex_set_key(&[1, 2, 3]), vertex_set_key(&[1, 2]));
        // Sum-collision resistance: {0, 3} vs {1, 2} share a plain sum but
        // not a mixed one.
        assert_ne!(vertex_set_key(&[0, 3]), vertex_set_key(&[1, 2]));
    }

    #[test]
    fn incremental_subtraction_matches_full_key() {
        let parent = [5u32, 9, 13, 27];
        let acc = vertex_mix_sum(&parent);
        // Remove 13: the subtracted sum must reproduce the full key of
        // the child set.
        let child_key = finalize_set_key(acc.wrapping_sub(vertex_mix(13)), parent.len() - 1);
        assert_eq!(child_key, vertex_set_key(&[5, 9, 27]));
    }
}
