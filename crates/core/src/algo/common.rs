use crate::{Aggregation, Community, SearchError};
use ic_graph::{VertexId, WeightedGraph};

/// Builds a [`Community`] from a vertex list, evaluating its influence
/// value under `aggregation`.
pub(crate) fn community_from_vertices(
    wg: &WeightedGraph,
    aggregation: Aggregation,
    vertices: Vec<VertexId>,
) -> Community {
    let weights: Vec<f64> = vertices.iter().map(|&v| wg.weight(v)).collect();
    let value = aggregation.evaluate(&weights, wg.total_weight());
    Community::new(vertices, value)
}

/// Converts connected k-core components into valued communities.
pub(crate) fn components_as_communities(
    wg: &WeightedGraph,
    aggregation: Aggregation,
    components: Vec<Vec<VertexId>>,
) -> Vec<Community> {
    components
        .into_iter()
        .map(|c| community_from_vertices(wg, aggregation, c))
        .collect()
}

/// Shared parameter validation for every solver.
pub(crate) fn validate_k_r(r: usize) -> Result<(), SearchError> {
    if r == 0 {
        return Err(SearchError::InvalidParams(
            "result count r must be positive".into(),
        ));
    }
    Ok(())
}

/// Ensures the aggregation satisfies Corollary 2 (required by Algorithms 1
/// and 2).
pub(crate) fn require_removal_decreasing(
    algorithm: &'static str,
    aggregation: Aggregation,
) -> Result<(), SearchError> {
    if aggregation.decreases_on_removal() {
        Ok(())
    } else {
        Err(SearchError::UnsupportedAggregation {
            algorithm,
            aggregation,
            reason: "requires the influence value to decrease when vertices are removed \
                     (Corollary 2); use local_search or exact_topr instead",
        })
    }
}

pub(crate) use require_removal_decreasing as require_corollary2;
