//! Parallel local search — the paper's future-work direction ("a parallel
//! or distributed context could also be investigated", Section VIII).
//!
//! Seeds are partitioned across worker threads; each worker runs the
//! sequential per-seed strategy against a thread-local top-r list (the
//! graph is shared read-only), and the per-worker lists are merged at the
//! end. There is no shared mutable top-list and no lock on the hot path:
//! the only cross-thread state is a single atomic holding the best known
//! r-th value (monotonically encoded `f64` bits), which every worker
//! snapshots into its local list's pruning floor before expanding a seed
//! and raises after its own list fills. A candidate that cannot beat some
//! worker's r-th best cannot reach the merged top-r, so the shared floor
//! only prunes work, never changes the result set's validity.
//!
//! Thread-local pruning still differs from the sequential global
//! threshold, so the merged result can differ slightly from the
//! sequential one in either direction (both are valid heuristic answers;
//! `threads = 1` reproduces the sequential result exactly). The shared
//! floor also makes multi-threaded runs sensitive to thread timing when
//! candidate values tie *exactly* with the floor (the strategies prune
//! at `value > threshold`, so whether another worker published the tying
//! value first decides the prune): on graphs with duplicated weights two
//! identical invocations can return differently tie-broken lists. With
//! continuous weights (PageRank, the paper's setup) exact ties do not
//! occur and runs are repeatable. In practice the values agree closely —
//! the effectiveness experiment tracks the gap.

use crate::algo::local_search::{run_seed, validate_params, LocalScratch, LocalSearchConfig};
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::WeightedGraph;
use ic_kcore::kcore_mask;
use std::sync::atomic::{AtomicU64, Ordering};

/// Order-preserving encoding of `f64` into `u64`: `a < b` iff
/// `encode(a) < encode(b)` (total order, `-inf` smallest). Lets an
/// `AtomicU64::fetch_max` maintain a running maximum threshold; the
/// batched engine reuses it for its cross-worker pruning floor.
pub fn encode_ordered_f64(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1u64 << 63)
    }
}

/// Inverse of [`encode_ordered_f64`].
pub fn decode_ordered_f64(enc: u64) -> f64 {
    if enc >> 63 == 1 {
        f64::from_bits(enc & !(1u64 << 63))
    } else {
        f64::from_bits(!enc)
    }
}

/// Multi-threaded Algorithm 4. `threads = 1` degenerates to the
/// sequential behaviour.
pub fn par_local_search(
    wg: &WeightedGraph,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
    threads: usize,
) -> Result<Vec<Community>, SearchError> {
    if threads == 0 {
        return Err(SearchError::InvalidParams(
            "thread count must be positive".into(),
        ));
    }
    // Parameter validation is shared with the sequential path.
    validate_params(config)?;

    let g = wg.graph();
    let core = kcore_mask(g, config.k);
    let seeds: Vec<u32> = core.iter().map(|v| v as u32).collect();
    if seeds.is_empty() {
        return Ok(Vec::new());
    }

    let chunk_size = seeds.len().div_ceil(threads);
    // Best known r-th value across all workers (monotone max).
    let global_threshold = AtomicU64::new(encode_ordered_f64(f64::NEG_INFINITY));

    let locals: Vec<TopList> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk_size)
            .map(|chunk| {
                let core_ref = &core;
                let threshold_ref = &global_threshold;
                scope.spawn(move || {
                    let mut local = TopList::new(config.r);
                    let mut scratch = LocalScratch::new(g.num_vertices());
                    for &seed in chunk {
                        // Snapshot the shared floor, expand, publish back.
                        local.set_floor(decode_ordered_f64(threshold_ref.load(Ordering::Relaxed)));
                        run_seed(
                            wg,
                            g,
                            core_ref,
                            seed,
                            config,
                            aggregation,
                            &mut scratch,
                            &mut local,
                        );
                        if local.len() == local.capacity() {
                            threshold_ref.fetch_max(
                                encode_ordered_f64(local.threshold()),
                                Ordering::Relaxed,
                            );
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker threads do not panic"))
            .collect()
    });

    let mut merged = TopList::new(config.r);
    for local in locals {
        for c in local.into_vec() {
            merged.insert(c);
        }
    }
    Ok(merged.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::verify::check_community;

    fn cfg(k: usize, r: usize, s: usize, greedy: bool) -> LocalSearchConfig {
        LocalSearchConfig { k, r, s, greedy }
    }

    #[test]
    fn f64_encoding_is_order_preserving() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.25,
            1e300,
            f64::INFINITY,
        ];
        for (i, &a) in samples.iter().enumerate() {
            assert_eq!(
                decode_ordered_f64(encode_ordered_f64(a)),
                a,
                "round trip {a}"
            );
            for &b in &samples[i + 1..] {
                if a < b {
                    assert!(encode_ordered_f64(a) < encode_ordered_f64(b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rejects_zero_threads() {
        let wg = figure1();
        assert!(par_local_search(&wg, &cfg(2, 2, 4, true), Aggregation::Sum, 0).is_err());
    }

    #[test]
    fn single_thread_matches_sequential() {
        let wg = figure1();
        for agg in [Aggregation::Sum, Aggregation::Average] {
            let seq = crate::algo::local_search(&wg, &cfg(2, 3, 4, true), agg).unwrap();
            let par = par_local_search(&wg, &cfg(2, 3, 4, true), agg, 1).unwrap();
            assert_eq!(seq, par, "{}", agg.name());
        }
    }

    #[test]
    fn multi_thread_results_are_valid_communities() {
        let wg = figure1();
        for threads in [2, 4, 8] {
            for agg in [Aggregation::Sum, Aggregation::Average] {
                let par = par_local_search(&wg, &cfg(2, 3, 4, true), agg, threads).unwrap();
                assert!(!par.is_empty(), "{} threads={threads}", agg.name());
                for c in &par {
                    check_community(&wg, 2, Some(4), agg, c).unwrap();
                }
                // Results are sorted best-first.
                for w in par.windows(2) {
                    assert!(w[0].value >= w[1].value);
                }
            }
        }
    }

    #[test]
    fn more_threads_than_seeds() {
        let wg = figure1();
        let res = par_local_search(&wg, &cfg(2, 2, 4, true), Aggregation::Sum, 64).unwrap();
        assert!(!res.is_empty());
    }
}
