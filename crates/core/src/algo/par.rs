//! Parallel local search — the paper's future-work direction ("a parallel
//! or distributed context could also be investigated", Section VIII).
//!
//! Seeds are partitioned across worker threads; each worker runs the
//! sequential per-seed strategy against a thread-local top-r list (the
//! graph is shared read-only), and the lists are merged at the end.
//! Thread-local pruning thresholds differ from the sequential global
//! threshold, so the merged result can differ slightly from the
//! sequential one in either direction (both are valid heuristic answers;
//! `threads = 1` reproduces the sequential result exactly). In practice
//! the values agree closely — the effectiveness experiment tracks the
//! gap.

use crate::algo::local_search::{run_seed, validate_params, LocalSearchConfig, SubsetChecker};
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::WeightedGraph;
use ic_kcore::kcore_mask;
use parking_lot::Mutex;

/// Multi-threaded Algorithm 4. `threads = 1` degenerates to the
/// sequential behaviour.
pub fn par_local_search(
    wg: &WeightedGraph,
    config: &LocalSearchConfig,
    aggregation: Aggregation,
    threads: usize,
) -> Result<Vec<Community>, SearchError> {
    if threads == 0 {
        return Err(SearchError::InvalidParams(
            "thread count must be positive".into(),
        ));
    }
    // Parameter validation is shared with the sequential path.
    validate_params(config)?;

    let g = wg.graph();
    let core = kcore_mask(g, config.k);
    let seeds: Vec<u32> = core.iter().map(|v| v as u32).collect();
    if seeds.is_empty() {
        return Ok(Vec::new());
    }

    let merged: Mutex<TopList> = Mutex::new(TopList::new(config.r));
    let chunk_size = seeds.len().div_ceil(threads);

    crossbeam::thread::scope(|scope| {
        for chunk in seeds.chunks(chunk_size) {
            let core_ref = &core;
            let merged_ref = &merged;
            scope.spawn(move |_| {
                let mut local = TopList::new(config.r);
                let mut checker = SubsetChecker::new(g.num_vertices());
                for &seed in chunk {
                    run_seed(
                        wg, g, core_ref, seed, config, aggregation, &mut checker, &mut local,
                    );
                }
                let mut guard = merged_ref.lock();
                for c in local.into_vec() {
                    guard.insert(c);
                }
            });
        }
    })
    .expect("worker threads do not panic");

    Ok(merged.into_inner().into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::verify::check_community;

    fn cfg(k: usize, r: usize, s: usize, greedy: bool) -> LocalSearchConfig {
        LocalSearchConfig { k, r, s, greedy }
    }

    #[test]
    fn rejects_zero_threads() {
        let wg = figure1();
        assert!(par_local_search(&wg, &cfg(2, 2, 4, true), Aggregation::Sum, 0).is_err());
    }

    #[test]
    fn single_thread_matches_sequential() {
        let wg = figure1();
        for agg in [Aggregation::Sum, Aggregation::Average] {
            let seq = crate::algo::local_search(&wg, &cfg(2, 3, 4, true), agg).unwrap();
            let par = par_local_search(&wg, &cfg(2, 3, 4, true), agg, 1).unwrap();
            assert_eq!(seq, par, "{}", agg.name());
        }
    }

    #[test]
    fn multi_thread_results_are_valid_communities() {
        let wg = figure1();
        for threads in [2, 4, 8] {
            for agg in [Aggregation::Sum, Aggregation::Average] {
                let par = par_local_search(&wg, &cfg(2, 3, 4, true), agg, threads).unwrap();
                assert!(!par.is_empty(), "{} threads={threads}", agg.name());
                for c in &par {
                    check_community(&wg, 2, Some(4), agg, c).unwrap();
                }
                // Results are sorted best-first.
                for w in par.windows(2) {
                    assert!(w[0].value >= w[1].value);
                }
            }
        }
    }

    #[test]
    fn more_threads_than_seeds() {
        let wg = figure1();
        let res = par_local_search(&wg, &cfg(2, 2, 4, true), Aggregation::Sum, 64).unwrap();
        assert!(!res.is_empty());
    }
}
