//! Exact solvers (Algorithm 3 and the exhaustive oracle).
//!
//! Both are exponential and intended for tiny graphs: Algorithm 3's
//! complexity is `O(Σ_{i=k+1}^{s} C(n,i) · (n+m))` (the paper presents it
//! only to motivate the heuristics). [`exact_topr`] improves on it by
//! enumerating *connected induced subgraphs* only (polynomial delay per
//! subgraph) and additionally enforces the maximality constraint of
//! Definition 3, making it the ground-truth oracle for the test suite.

use crate::algo::{common::validate_k_r, community_from_vertices};
use crate::{Aggregation, Community, SearchError};
use ic_graph::{VertexId, WeightedGraph};

/// All maximal k-influential communities (Definition 3) of the graph,
/// sorted best-first. Exponential; intended for tiny graphs and tests.
pub fn all_communities(wg: &WeightedGraph, k: usize, aggregation: Aggregation) -> Vec<Community> {
    let n = wg.num_vertices();
    let candidates = connected_kcore_subsets(wg, k, n.max(1));
    let mut communities = keep_maximal(wg, aggregation, candidates);
    communities.sort_by(|a, b| a.ranking_cmp(b));
    communities
}

/// Exhaustive top-r solver: enumerates every connected subgraph with
/// minimum internal degree ≥ `k`, applies the maximality constraint of
/// Definition 3 (no strict superset with equal value), filters by the
/// optional size bound `s` (Definition 4), and returns the best `r`.
pub fn exact_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    size_bound: Option<usize>,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if let Some(s) = size_bound {
        if s <= k {
            return Err(SearchError::InvalidParams(format!(
                "size bound s = {s} must exceed k = {k} (a k-core needs k+1 vertices)"
            )));
        }
    }
    // Maximality (Definition 3) compares against supersets of *any* size,
    // so enumerate without the size cap and filter afterwards.
    let mut communities = all_communities(wg, k, aggregation);
    if let Some(s) = size_bound {
        communities.retain(|c| c.len() <= s);
    }
    communities.truncate(r);
    Ok(communities)
}

/// Algorithm 3 verbatim (`TIC-EXACT`): enumerates **all** vertex subsets of
/// size `k+1 ..= s`, keeps those inducing a connected k-core, and returns
/// the top-r. Note the paper's pseudocode applies no maximality filter;
/// this function is faithful to it (use [`exact_topr`] for the
/// Definition-3-faithful oracle). Exponential in `s`.
pub fn exact_naive(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    s: usize,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if s <= k {
        return Err(SearchError::InvalidParams(format!(
            "size bound s = {s} must exceed k = {k}"
        )));
    }
    let n = wg.num_vertices();
    let g = wg.graph();
    let mut results: Vec<Community> = Vec::new();
    let mut subset: Vec<VertexId> = Vec::new();

    // Enumerate combinations of each size i = k+1 ..= min(s, n).
    fn combinations<F: FnMut(&[VertexId])>(
        n: usize,
        size: usize,
        start: usize,
        subset: &mut Vec<VertexId>,
        f: &mut F,
    ) {
        if subset.len() == size {
            f(subset);
            return;
        }
        let remaining = size - subset.len();
        for v in start..=(n.saturating_sub(remaining)) {
            subset.push(v as VertexId);
            combinations(n, size, v + 1, subset, f);
            subset.pop();
        }
    }

    for i in (k + 1)..=s.min(n) {
        combinations(n, i, 0, &mut subset, &mut |cand: &[VertexId]| {
            if ic_kcore::is_kcore(g, cand, k) && is_connected_subset(g, cand) {
                results.push(community_from_vertices(wg, aggregation, cand.to_vec()));
            }
        });
    }
    results.sort_by(|a, b| a.ranking_cmp(b));
    results.truncate(r);
    Ok(results)
}

fn is_connected_subset(g: &ic_graph::Graph, vertices: &[VertexId]) -> bool {
    let mut mask = ic_graph::BitSet::new(g.num_vertices());
    for &v in vertices {
        mask.insert(v as usize);
    }
    ic_graph::is_connected_within(g, &mask)
}

/// Enumerates every connected induced subgraph (vertex set) of size
/// ≤ `max_size` whose minimum internal degree is ≥ `k`.
///
/// Connected subsets are generated exactly once with the classic
/// fixed-root scheme: for each root `v` (the minimum vertex of the
/// subset), extend with neighbors `> v`, branching on include/exclude.
fn connected_kcore_subsets(wg: &WeightedGraph, k: usize, max_size: usize) -> Vec<Vec<VertexId>> {
    let g = wg.graph();
    let n = g.num_vertices();
    let mut out: Vec<Vec<VertexId>> = Vec::new();

    let mut in_set = vec![false; n];
    let mut banned = vec![false; n];
    let mut in_ext = vec![false; n];
    let mut set: Vec<VertexId> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn extend(
        g: &ic_graph::Graph,
        root: VertexId,
        k: usize,
        max_size: usize,
        set: &mut Vec<VertexId>,
        in_set: &mut [bool],
        banned: &mut [bool],
        in_ext: &mut [bool],
        ext: &[VertexId],
        out: &mut Vec<Vec<VertexId>>,
    ) {
        // Emit the current set if it satisfies the degree constraint.
        if set.len() > k {
            let ok = set
                .iter()
                .all(|&v| g.neighbors(v).iter().filter(|&&u| in_set[u as usize]).count() >= k);
            if ok {
                let mut s = set.clone();
                s.sort_unstable();
                out.push(s);
            }
        }
        if set.len() == max_size {
            return;
        }
        let mut newly_banned: Vec<VertexId> = Vec::new();
        for (i, &u) in ext.iter().enumerate() {
            if banned[u as usize] {
                continue;
            }
            // Include branch.
            set.push(u);
            in_set[u as usize] = true;
            // New extension: the remaining candidates plus u's unseen
            // neighbors greater than the root.
            let mut next_ext: Vec<VertexId> = Vec::with_capacity(ext.len());
            for &w in &ext[i + 1..] {
                if !banned[w as usize] {
                    next_ext.push(w);
                }
            }
            let mut added: Vec<VertexId> = Vec::new();
            for &w in ext {
                in_ext[w as usize] = true;
            }
            for &w in g.neighbors(u) {
                if w > root
                    && !in_set[w as usize]
                    && !banned[w as usize]
                    && !in_ext[w as usize]
                {
                    next_ext.push(w);
                    in_ext[w as usize] = true;
                    added.push(w);
                }
            }
            for &w in ext {
                in_ext[w as usize] = false;
            }
            for &w in &added {
                in_ext[w as usize] = false;
            }
            extend(
                g, root, k, max_size, set, in_set, banned, in_ext, &next_ext, out,
            );
            set.pop();
            in_set[u as usize] = false;
            // Exclude branch: ban u for the rest of this subtree.
            banned[u as usize] = true;
            newly_banned.push(u);
        }
        for &u in &newly_banned {
            banned[u as usize] = false;
        }
    }

    for root in 0..n as VertexId {
        set.push(root);
        in_set[root as usize] = true;
        let ext: Vec<VertexId> = g
            .neighbors(root)
            .iter()
            .copied()
            .filter(|&u| u > root)
            .collect();
        extend(
            g,
            root,
            k,
            max_size,
            &mut set,
            &mut in_set,
            &mut banned,
            &mut in_ext,
            &ext,
            &mut out,
        );
        set.pop();
        in_set[root as usize] = false;
    }
    out
}

/// Filters candidates down to the maximal ones (Definition 3, item 3): a
/// candidate is dropped iff a strict superset with the *same* influence
/// value exists among the candidates.
fn keep_maximal(
    wg: &WeightedGraph,
    aggregation: Aggregation,
    candidates: Vec<Vec<VertexId>>,
) -> Vec<Community> {
    let mut communities: Vec<Community> = candidates
        .into_iter()
        .map(|c| community_from_vertices(wg, aggregation, c))
        .collect();
    // Group by exact value; only equal values can violate maximality.
    communities.sort_by(|a, b| {
        a.value
            .total_cmp(&b.value)
            .then_with(|| a.vertices.len().cmp(&b.vertices.len()))
    });
    let mut keep = vec![true; communities.len()];
    let mut i = 0;
    while i < communities.len() {
        let mut j = i;
        while j < communities.len() && communities[j].value == communities[i].value {
            j += 1;
        }
        // Within the tie group [i, j): drop sets strictly contained in
        // another (groups are sorted by size, so only later sets can be
        // supersets).
        for a in i..j {
            for b in (a + 1)..j {
                if communities[b].len() > communities[a].len()
                    && is_subset(&communities[a].vertices, &communities[b].vertices)
                {
                    keep[a] = false;
                    break;
                }
            }
        }
        i = j;
    }
    communities
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect()
}

fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    // Both sorted; classic merge scan.
    let mut bi = 0;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi == b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    fn small_two_triangles() -> WeightedGraph {
        // Triangles {0,1,2} (weights 1,2,3) and {3,4,5} (weights 10,20,30).
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]).unwrap()
    }

    #[test]
    fn sum_topr_on_two_triangles() {
        let wg = small_two_triangles();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Sum).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![3, 4, 5]);
        assert_eq!(top[0].value, 60.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2]);
        assert_eq!(top[1].value, 6.0);
    }

    #[test]
    fn min_maximality_is_enforced() {
        // Path-connected 2-core: 4-cycle with weights 5,5,5,1. Under min,
        // {all} has value 1; the cycle minus the weight-1 vertex is NOT a
        // 2-core, so the only community is the full cycle.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let wg = WeightedGraph::new(g, vec![5.0, 5.0, 5.0, 1.0]).unwrap();
        let all = all_communities(&wg, 2, Aggregation::Min);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(all[0].value, 1.0);
    }

    #[test]
    fn min_nested_communities_are_distinct() {
        // K4 with weights 1,2,3,4 plus pendant triangle is overkill; use
        // K4: under min, communities are G≥θ 2-cores: {all} (min 1) and
        // {1,2,3} (min 2). {2,3} is not a 2-core.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let all = all_communities(&wg, 2, Aggregation::Min);
        let sets: Vec<Vec<u32>> = all.iter().map(|c| c.vertices.clone()).collect();
        assert!(sets.contains(&vec![0, 1, 2, 3]));
        assert!(sets.contains(&vec![1, 2, 3]));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].value, 2.0); // top-1 is the inner community
    }

    #[test]
    fn figure1_sum_top2_matches_example1() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Sum).unwrap();
        assert_eq!(top[0].vertices, vs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[0].value, 203.0);
        assert_eq!(top[1].vertices, vs(&[1, 2, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[1].value, 195.0);
    }

    #[test]
    fn figure1_avg_top2_matches_example1() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Average).unwrap();
        assert_eq!(top[0].vertices, vs(&[1, 2, 4]));
        assert_eq!(top[0].value, 24.0);
        assert_eq!(top[1].vertices, vs(&[6, 7, 11]));
        assert_eq!(top[1].value, 22.0);
    }

    #[test]
    fn figure1_min_top2_matches_example1() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Min).unwrap();
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        assert_eq!(top[1].vertices, vs(&[3, 9, 10]));
        assert_eq!(top[1].value, 8.0);
    }

    #[test]
    fn figure1_size4_sum_includes_example_community() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 20, Some(4), Aggregation::Sum).unwrap();
        let found = top
            .iter()
            .find(|c| c.vertices == vs(&[3, 6, 9, 10]))
            .expect("the Example 1 size-constrained community");
        assert_eq!(found.value, 40.0);
        for c in &top {
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn exact_naive_agrees_with_oracle_for_sum() {
        // With sum and positive weights, maximality is vacuous, so
        // Algorithm 3 and the oracle agree on any size-bounded query.
        let wg = small_two_triangles();
        let naive = exact_naive(&wg, 2, 5, 3, Aggregation::Sum).unwrap();
        let oracle = exact_topr(&wg, 2, 5, Some(3), Aggregation::Sum).unwrap();
        assert_eq!(naive, oracle);
    }

    #[test]
    fn parameter_validation() {
        let wg = small_two_triangles();
        assert!(exact_topr(&wg, 2, 0, None, Aggregation::Sum).is_err());
        assert!(exact_topr(&wg, 2, 1, Some(2), Aggregation::Sum).is_err());
        assert!(exact_naive(&wg, 2, 1, 2, Aggregation::Sum).is_err());
    }

    #[test]
    fn enumeration_counts_connected_kcores() {
        // Triangle: connected subsets with min degree >= 2 of size > 2:
        // just the triangle itself.
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        let subs = connected_kcore_subsets(&wg, 2, 3);
        assert_eq!(subs, vec![vec![0, 1, 2]]);
        // k = 1: pairs and the triangle (and size-2 paths):
        // {0,1},{0,2},{1,2},{0,1,2}.
        let subs = connected_kcore_subsets(&wg, 1, 3);
        assert_eq!(subs.len(), 4);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 5]).unwrap();
        let subs = connected_kcore_subsets(&wg, 0, 5);
        let mut seen = std::collections::HashSet::new();
        for s in &subs {
            assert!(seen.insert(s.clone()), "duplicate {s:?}");
        }
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }
}
