//! Exact solvers (Algorithm 3 and the exhaustive oracle).
//!
//! Both are exponential and intended for tiny graphs: Algorithm 3's
//! complexity is `O(Σ_{i=k+1}^{s} C(n,i) · (n+m))` (the paper presents it
//! only to motivate the heuristics). [`exact_topr`] improves on it by
//! enumerating *connected induced subgraphs* only (polynomial delay per
//! subgraph) and additionally enforces the maximality constraint of
//! Definition 3, making it the ground-truth oracle for the test suite.

use crate::algo::local_search::SubsetChecker;
use crate::algo::{common::validate_k_r, community_from_vertices};
use crate::{Aggregation, Community, SearchError, TopList};
use ic_graph::{VertexId, WeightedGraph};

/// All maximal k-influential communities (Definition 3) of the graph,
/// sorted best-first. Exponential; intended for tiny graphs and tests.
pub fn all_communities(wg: &WeightedGraph, k: usize, aggregation: Aggregation) -> Vec<Community> {
    let n = wg.num_vertices();
    let mut candidates: Vec<Vec<VertexId>> = Vec::new();
    connected_kcore_subsets(wg, k, n.max(1), &mut |set| candidates.push(set.to_vec()));
    let mut communities = keep_maximal(wg, aggregation, candidates);
    communities.sort_by(|a, b| a.ranking_cmp(b));
    communities
}

/// Exhaustive top-r solver: enumerates every connected subgraph with
/// minimum internal degree ≥ `k`, applies the maximality constraint of
/// Definition 3 (no strict superset with equal value), filters by the
/// optional size bound `s` (Definition 4), and returns the best `r`.
pub fn exact_topr(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    size_bound: Option<usize>,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if let Some(s) = size_bound {
        if s <= k {
            return Err(SearchError::InvalidParams(format!(
                "size bound s = {s} must exceed k = {k} (a k-core needs k+1 vertices)"
            )));
        }
    }
    // Maximality (Definition 3) compares against supersets of *any* size,
    // so enumerate without the size cap and filter afterwards.
    let mut communities = all_communities(wg, k, aggregation);
    if let Some(s) = size_bound {
        communities.retain(|c| c.len() <= s);
    }
    communities.truncate(r);
    Ok(communities)
}

/// Algorithm 3 verbatim (`TIC-EXACT`): enumerates **all** vertex subsets of
/// size `k+1 ..= s`, keeps those inducing a connected k-core, and returns
/// the top-r. Note the paper's pseudocode applies no maximality filter;
/// this function is faithful to it (use [`exact_topr`] for the
/// Definition-3-faithful oracle). Exponential in `s`.
pub fn exact_naive(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    s: usize,
    aggregation: Aggregation,
) -> Result<Vec<Community>, SearchError> {
    validate_k_r(r)?;
    if s <= k {
        return Err(SearchError::InvalidParams(format!(
            "size bound s = {s} must exceed k = {k}"
        )));
    }
    let n = wg.num_vertices();
    let g = wg.graph();
    // Bounded list + reusable scratch: candidates that cannot beat the
    // running r-th value are evaluated without materializing a community
    // (no per-candidate `to_vec`), and the connected-k-core test runs on
    // stamped arrays instead of a fresh mask per subset.
    let mut list = TopList::new(r);
    let mut subset: Vec<VertexId> = Vec::new();
    let mut checker = SubsetChecker::new(n);
    let mut weight_buf: Vec<f64> = Vec::with_capacity(s.min(n));

    // Enumerate combinations of each size i = k+1 ..= min(s, n).
    fn combinations<F: FnMut(&[VertexId])>(
        n: usize,
        size: usize,
        start: usize,
        subset: &mut Vec<VertexId>,
        f: &mut F,
    ) {
        if subset.len() == size {
            f(subset);
            return;
        }
        let remaining = size - subset.len();
        for v in start..=(n.saturating_sub(remaining)) {
            subset.push(v as VertexId);
            combinations(n, size, v + 1, subset, f);
            subset.pop();
        }
    }

    for i in (k + 1)..=s.min(n) {
        combinations(n, i, 0, &mut subset, &mut |cand: &[VertexId]| {
            if !checker.is_connected_kcore(g, cand, k) {
                return;
            }
            weight_buf.clear();
            weight_buf.extend(cand.iter().map(|&v| wg.weight(v)));
            let value = aggregation.evaluate(&weight_buf, wg.total_weight());
            // Strictly below the r-th best: cannot be retained, skip the
            // allocation entirely (ties still go through — the ranking
            // tie-break may prefer them).
            if list.len() == r && value < list.threshold() {
                return;
            }
            list.insert(Community::new(cand.to_vec(), value));
        });
    }
    Ok(list.into_vec())
}

/// Enumerates every connected induced subgraph (vertex set) of size
/// ≤ `max_size` whose minimum internal degree is ≥ `k`, passing each as a
/// sorted slice to `emit` (valid only for the duration of the call).
///
/// Connected subsets are generated exactly once with the classic
/// fixed-root scheme: for each root `v` (the minimum vertex of the
/// subset), extend with neighbors `> v`, branching on include/exclude.
/// The enumeration loop itself is allocation-free: the emitted slice
/// lives in a reused sort buffer, and the per-depth extension lists come
/// from a recycled pool instead of fresh `Vec`s per branch.
fn connected_kcore_subsets(
    wg: &WeightedGraph,
    k: usize,
    max_size: usize,
    emit: &mut dyn FnMut(&[VertexId]),
) {
    let g = wg.graph();
    let n = g.num_vertices();

    /// Reusable state threaded through the recursion.
    struct Enum<'a> {
        g: &'a ic_graph::Graph,
        k: usize,
        max_size: usize,
        in_set: Vec<bool>,
        banned: Vec<bool>,
        in_ext: Vec<bool>,
        set: Vec<VertexId>,
        sort_buf: Vec<VertexId>,
        /// Depth-indexed pools for the extension and ban-restore lists.
        ext_pool: Vec<Vec<VertexId>>,
        ban_pool: Vec<Vec<VertexId>>,
    }

    impl Enum<'_> {
        fn extend(&mut self, root: VertexId, depth: usize, emit: &mut dyn FnMut(&[VertexId])) {
            // Emit the current set if it satisfies the degree constraint.
            if self.set.len() > self.k {
                let ok = self.set.iter().all(|&v| {
                    self.g
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| self.in_set[u as usize])
                        .count()
                        >= self.k
                });
                if ok {
                    self.sort_buf.clear();
                    self.sort_buf.extend_from_slice(&self.set);
                    self.sort_buf.sort_unstable();
                    emit(&self.sort_buf);
                }
            }
            if self.set.len() == self.max_size {
                return;
            }
            let ext = std::mem::take(&mut self.ext_pool[depth]);
            let mut newly_banned = std::mem::take(&mut self.ban_pool[depth]);
            newly_banned.clear();
            for (i, &u) in ext.iter().enumerate() {
                if self.banned[u as usize] {
                    continue;
                }
                // Include branch.
                self.set.push(u);
                self.in_set[u as usize] = true;
                // New extension: the remaining candidates plus u's unseen
                // neighbors greater than the root.
                let mut next_ext = std::mem::take(&mut self.ext_pool[depth + 1]);
                next_ext.clear();
                for &w in &ext[i + 1..] {
                    if !self.banned[w as usize] {
                        next_ext.push(w);
                    }
                }
                for &w in &next_ext {
                    self.in_ext[w as usize] = true;
                }
                let inherited = next_ext.len();
                for &w in self.g.neighbors(u) {
                    if w > root
                        && !self.in_set[w as usize]
                        && !self.banned[w as usize]
                        && !self.in_ext[w as usize]
                    {
                        next_ext.push(w);
                        self.in_ext[w as usize] = true;
                    }
                }
                for &w in &next_ext {
                    self.in_ext[w as usize] = false;
                }
                debug_assert!(inherited <= next_ext.len());
                self.ext_pool[depth + 1] = next_ext;
                self.extend(root, depth + 1, emit);
                self.set.pop();
                self.in_set[u as usize] = false;
                // Exclude branch: ban u for the rest of this subtree.
                self.banned[u as usize] = true;
                newly_banned.push(u);
            }
            for &u in &newly_banned {
                self.banned[u as usize] = false;
            }
            self.ban_pool[depth] = newly_banned;
            self.ext_pool[depth] = ext;
        }
    }

    let mut state = Enum {
        g,
        k,
        max_size,
        in_set: vec![false; n],
        banned: vec![false; n],
        in_ext: vec![false; n],
        set: Vec::with_capacity(max_size),
        sort_buf: Vec::with_capacity(max_size),
        ext_pool: vec![Vec::new(); max_size + 2],
        ban_pool: vec![Vec::new(); max_size + 2],
    };

    for root in 0..n as VertexId {
        state.set.push(root);
        state.in_set[root as usize] = true;
        let mut ext = std::mem::take(&mut state.ext_pool[0]);
        ext.clear();
        ext.extend(g.neighbors(root).iter().copied().filter(|&u| u > root));
        state.ext_pool[0] = ext;
        state.extend(root, 0, emit);
        state.set.pop();
        state.in_set[root as usize] = false;
    }
}

/// Filters candidates down to the maximal ones (Definition 3, item 3): a
/// candidate is dropped iff a strict superset with the *same* influence
/// value exists among the candidates.
fn keep_maximal(
    wg: &WeightedGraph,
    aggregation: Aggregation,
    candidates: Vec<Vec<VertexId>>,
) -> Vec<Community> {
    let mut communities: Vec<Community> = candidates
        .into_iter()
        .map(|c| community_from_vertices(wg, aggregation, c))
        .collect();
    // Group by exact value; only equal values can violate maximality.
    communities.sort_by(|a, b| {
        a.value
            .total_cmp(&b.value)
            .then_with(|| a.vertices.len().cmp(&b.vertices.len()))
    });
    let mut keep = vec![true; communities.len()];
    let mut i = 0;
    while i < communities.len() {
        let mut j = i;
        while j < communities.len() && communities[j].value == communities[i].value {
            j += 1;
        }
        // Within the tie group [i, j): drop sets strictly contained in
        // another (groups are sorted by size, so only later sets can be
        // supersets).
        for a in i..j {
            for b in (a + 1)..j {
                if communities[b].len() > communities[a].len()
                    && is_subset(&communities[a].vertices, &communities[b].vertices)
                {
                    keep[a] = false;
                    break;
                }
            }
        }
        i = j;
    }
    communities
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect()
}

fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    // Both sorted; classic merge scan.
    let mut bi = 0;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi == b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, vs};
    use ic_graph::{graph_from_edges, WeightedGraph};

    fn small_two_triangles() -> WeightedGraph {
        // Triangles {0,1,2} (weights 1,2,3) and {3,4,5} (weights 10,20,30).
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]).unwrap()
    }

    #[test]
    fn sum_topr_on_two_triangles() {
        let wg = small_two_triangles();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Sum).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![3, 4, 5]);
        assert_eq!(top[0].value, 60.0);
        assert_eq!(top[1].vertices, vec![0, 1, 2]);
        assert_eq!(top[1].value, 6.0);
    }

    #[test]
    fn min_maximality_is_enforced() {
        // Path-connected 2-core: 4-cycle with weights 5,5,5,1. Under min,
        // {all} has value 1; the cycle minus the weight-1 vertex is NOT a
        // 2-core, so the only community is the full cycle.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let wg = WeightedGraph::new(g, vec![5.0, 5.0, 5.0, 1.0]).unwrap();
        let all = all_communities(&wg, 2, Aggregation::Min);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(all[0].value, 1.0);
    }

    #[test]
    fn min_nested_communities_are_distinct() {
        // K4 with weights 1,2,3,4 plus pendant triangle is overkill; use
        // K4: under min, communities are G≥θ 2-cores: {all} (min 1) and
        // {1,2,3} (min 2). {2,3} is not a 2-core.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let all = all_communities(&wg, 2, Aggregation::Min);
        let sets: Vec<Vec<u32>> = all.iter().map(|c| c.vertices.clone()).collect();
        assert!(sets.contains(&vec![0, 1, 2, 3]));
        assert!(sets.contains(&vec![1, 2, 3]));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].value, 2.0); // top-1 is the inner community
    }

    #[test]
    fn figure1_sum_top2_matches_example1() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Sum).unwrap();
        assert_eq!(top[0].vertices, vs(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[0].value, 203.0);
        assert_eq!(top[1].vertices, vs(&[1, 2, 4, 5, 6, 7, 8, 9, 10, 11]));
        assert_eq!(top[1].value, 195.0);
    }

    #[test]
    fn figure1_avg_top2_matches_example1() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Average).unwrap();
        assert_eq!(top[0].vertices, vs(&[1, 2, 4]));
        assert_eq!(top[0].value, 24.0);
        assert_eq!(top[1].vertices, vs(&[6, 7, 11]));
        assert_eq!(top[1].value, 22.0);
    }

    #[test]
    fn figure1_min_top2_matches_example1() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 2, None, Aggregation::Min).unwrap();
        assert_eq!(top[0].vertices, vs(&[5, 7, 8]));
        assert_eq!(top[0].value, 12.0);
        assert_eq!(top[1].vertices, vs(&[3, 9, 10]));
        assert_eq!(top[1].value, 8.0);
    }

    #[test]
    fn figure1_size4_sum_includes_example_community() {
        let wg = figure1();
        let top = exact_topr(&wg, 2, 20, Some(4), Aggregation::Sum).unwrap();
        let found = top
            .iter()
            .find(|c| c.vertices == vs(&[3, 6, 9, 10]))
            .expect("the Example 1 size-constrained community");
        assert_eq!(found.value, 40.0);
        for c in &top {
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn exact_naive_agrees_with_oracle_for_sum() {
        // With sum and positive weights, maximality is vacuous, so
        // Algorithm 3 and the oracle agree on any size-bounded query.
        let wg = small_two_triangles();
        let naive = exact_naive(&wg, 2, 5, 3, Aggregation::Sum).unwrap();
        let oracle = exact_topr(&wg, 2, 5, Some(3), Aggregation::Sum).unwrap();
        assert_eq!(naive, oracle);
    }

    #[test]
    fn parameter_validation() {
        let wg = small_two_triangles();
        assert!(exact_topr(&wg, 2, 0, None, Aggregation::Sum).is_err());
        assert!(exact_topr(&wg, 2, 1, Some(2), Aggregation::Sum).is_err());
        assert!(exact_naive(&wg, 2, 1, 2, Aggregation::Sum).is_err());
    }

    fn collect_subsets(wg: &WeightedGraph, k: usize, max_size: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        connected_kcore_subsets(wg, k, max_size, &mut |s| out.push(s.to_vec()));
        out
    }

    #[test]
    fn enumeration_counts_connected_kcores() {
        // Triangle: connected subsets with min degree >= 2 of size > 2:
        // just the triangle itself.
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let wg = WeightedGraph::new(g, vec![1.0; 3]).unwrap();
        let subs = collect_subsets(&wg, 2, 3);
        assert_eq!(subs, vec![vec![0, 1, 2]]);
        // k = 1: pairs and the triangle (and size-2 paths):
        // {0,1},{0,2},{1,2},{0,1,2}.
        let subs = collect_subsets(&wg, 1, 3);
        assert_eq!(subs.len(), 4);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let wg = WeightedGraph::new(g, vec![1.0; 5]).unwrap();
        let subs = collect_subsets(&wg, 0, 5);
        let mut seen = std::collections::HashSet::new();
        for s in &subs {
            assert!(seen.insert(s.clone()), "duplicate {s:?}");
        }
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }
}
