//! Sampled validation of aggregation property [`Certificates`]: a
//! declared certificate the implementation does not actually satisfy
//! fails **here**, loudly, instead of silently corrupting rankings
//! downstream.
//!
//! Three layers of defense:
//!
//! 1. **Registration** — [`crate::Aggregation::custom`] runs
//!    [`certify_fn`] on a deterministic sample battery before a
//!    user-defined function is admitted to the registry;
//! 2. **Debug-mode solver checks** — the arena solvers re-check the
//!    removal-decreasing claim on every enumerated subgraph in debug
//!    builds (see `expand_children` in `algo::common`), so a bad
//!    certificate that slipped past sampling still trips during
//!    solving;
//! 3. **Randomized CI sweep** — `tests/certification.rs` drives
//!    [`certify`] over every built-in and registered aggregation with
//!    proptest-generated weight sets under the session seed, so each CI
//!    run explores fresh inputs.
//!
//! The checks are *sound rejections*: every reported violation is a
//! genuine counterexample (weights are printed with the failure).
//! Sampling cannot prove a certificate, only falsify it — which is the
//! right trade for an open registry.

use crate::aggregate::{AggregateFn, Certificates, Extremum, OrdF64, StateView};
use std::collections::BTreeMap;
use std::fmt;

/// A falsified certificate: which claim broke and the counterexample.
#[derive(Clone, Debug, PartialEq)]
pub struct CertifyError {
    /// The certificate (or invariant) that was falsified.
    pub certificate: &'static str,
    /// Human-readable counterexample.
    pub detail: String,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate `{}` falsified: {}",
            self.certificate, self.detail
        )
    }
}

impl std::error::Error for CertifyError {}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic battery of weight multisets for [`certify_fn`]:
/// pseudo-random positive weights across sizes 1..=12, plus structured
/// sets (all-equal, heavy duplicates, wide dynamic range) that historic
/// bugs favor. Weights stay in `[0.1, 64)` so "strictly decreasing"
/// claims are testable without denormal noise.
pub fn default_samples(seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed ^ 0xc2f7_1d3a_9e24_5b01;
    let mut next = move || {
        state = splitmix64(state);
        // 0.1 ..= ~64, quantized to avoid accidental exact cancellation.
        0.1 + (state % 6_400) as f64 / 100.0
    };
    let mut samples: Vec<Vec<f64>> = Vec::new();
    for n in 1..=12usize {
        samples.push((0..n).map(|_| next()).collect());
    }
    samples.push(vec![5.0; 6]); // all equal
    samples.push(vec![2.0, 2.0, 2.0, 9.0, 9.0, 0.5]); // heavy duplicates
    samples.push(vec![0.1, 0.1, 50.0, 63.9]); // wide range
    samples
}

/// Certifies an [`Aggregation`](crate::Aggregation) handle against the
/// default sample battery (see [`certify_fn`]).
pub fn certify(aggregation: &crate::Aggregation) -> Result<(), CertifyError> {
    certify_with(aggregation, &default_samples(0x1c0de))
}

/// Certifies an [`Aggregation`](crate::Aggregation) handle against
/// caller-provided weight multisets — the proptest entry point
/// (`tests/certification.rs` feeds randomized sets through this).
pub fn certify_with(
    aggregation: &crate::Aggregation,
    samples: &[Vec<f64>],
) -> Result<(), CertifyError> {
    aggregation.with_fn(|f| certify_fn_with(f, samples))
}

/// Certifies a raw [`AggregateFn`] (used at registration, before an
/// [`Aggregation`](crate::Aggregation) handle exists) against the
/// default battery.
pub fn certify_fn(f: &dyn AggregateFn) -> Result<(), CertifyError> {
    certify_fn_with(f, &default_samples(0x1c0de))
}

/// [`certify_fn`] against caller-provided weight multisets. Each set
/// must be non-empty; non-positive or non-finite weights are skipped
/// (graph weights are validated non-negative finite upstream, and the
/// strictness checks need positive weights to be meaningful).
pub fn certify_fn_with(f: &dyn AggregateFn, samples: &[Vec<f64>]) -> Result<(), CertifyError> {
    if let Err(m) = f.validate() {
        return Err(CertifyError {
            certificate: "validate",
            detail: m,
        });
    }
    let certs = f.certificates();
    for sample in samples {
        if sample.is_empty() || sample.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            continue;
        }
        // Two total-weight regimes: the community is the whole graph
        // (sum) and a small minority of it (sentinel-prone for
        // balanced-density-style functions).
        let sum: f64 = sample.iter().sum();
        for total in [sum, 4.0 * sum] {
            certify_one(f, &certs, sample, total)?;
        }
    }
    Ok(())
}

fn rel_close(a: f64, b: f64) -> bool {
    if a == b {
        return true; // covers equal infinities and exact matches
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn err(certificate: &'static str, detail: String) -> CertifyError {
    CertifyError {
        certificate,
        detail,
    }
}

fn certify_one(
    f: &dyn AggregateFn,
    certs: &Certificates,
    weights: &[f64],
    total: f64,
) -> Result<(), CertifyError> {
    let v = f.evaluate(weights, total);
    if v.is_nan() {
        return Err(err(
            "evaluate",
            format!("f({weights:?}) is NaN (total_weight {total})"),
        ));
    }
    if v == f64::NEG_INFINITY && !certs.may_be_neg_infinite {
        return Err(err(
            "may_be_neg_infinite",
            format!("f({weights:?}) = −∞ but the sentinel certificate is not declared"),
        ));
    }

    // evaluate_state must agree with evaluate on the same multiset. The
    // harness view always carries the multiset but *probes* accesses,
    // so a mis-declared needs_multiset is reported as a falsified
    // certificate — no unwinding involved (works under panic = "abort").
    let (state_value, touched_multiset) = state_value(f, weights, total);
    if touched_multiset && !certs.needs_multiset {
        return Err(err(
            "needs_multiset",
            format!(
                "evaluate_state reads order statistics on {weights:?} without declaring \
                 Certificates::needs_multiset — the production AggregateState would not \
                 maintain the multiset it needs. Either declare needs_multiset: true, or \
                 override evaluate_state (its default body materializes the multiset)"
            ),
        ));
    }
    if !rel_close(state_value, v) {
        return Err(err(
            "evaluate_state",
            format!("state evaluation {state_value} != slice evaluation {v} on {weights:?}"),
        ));
    }

    // Node domination: the value must be one of the member weights (the
    // sentinel is exempt — an undefined value dominates nothing).
    if certs.node_domination && v != f64::NEG_INFINITY {
        let hit = weights.iter().any(|w| w.to_bits() == v.to_bits());
        if !hit {
            return Err(err(
                "node_domination",
                format!("f({weights:?}) = {v} is not any member's weight"),
            ));
        }
    }
    if let Some(ext) = certs.peel_extremum {
        let expect = match ext {
            Extremum::Min => weights.iter().copied().fold(f64::INFINITY, f64::min),
            Extremum::Max => weights.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
        if v.total_cmp(&expect) != std::cmp::Ordering::Equal {
            return Err(err(
                "peel_extremum",
                format!("f({weights:?}) = {v}, but the declared peel extreme is {expect}"),
            ));
        }
    }

    // Removal checks need at least two members (removing the only one
    // yields the empty community, pinned to −∞ one layer up).
    if weights.len() >= 2 {
        for i in 0..weights.len() {
            let child_weights: Vec<f64> = weights
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &w)| w)
                .collect();
            let child = f.evaluate(&child_weights, total);
            if certs.removal_decreasing && child.total_cmp(&v) != std::cmp::Ordering::Less {
                return Err(err(
                    "removal_decreasing",
                    format!(
                        "removing weight {} from {weights:?} gives {child}, not strictly \
                         below the parent value {v}",
                        weights[i]
                    ),
                ));
            }
            if certs.incremental_removal {
                let delta = f.value_after_removal(v, weights[i]);
                if !rel_close(delta, child) {
                    return Err(err(
                        "incremental_removal",
                        format!(
                            "value_after_removal({v}, {}) = {delta} but re-evaluation of the \
                             child gives {child} (parent {weights:?})",
                            weights[i]
                        ),
                    ));
                }
            }
        }
    }

    // Subset monotonicity: every prefix of a deterministic shuffle must
    // not exceed the full value.
    if certs.size_proportional {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        // Deterministic Fisher-Yates off splitmix.
        let mut s = weights.len() as u64 ^ 0x5b5_ee11;
        for i in (1..order.len()).rev() {
            s = splitmix64(s);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for cut in 1..weights.len() {
            let subset: Vec<f64> = order[..cut].iter().map(|&i| weights[i]).collect();
            let fv = f.evaluate(&subset, total);
            if fv.is_finite() && v.is_finite() && fv > v + 1e-9 * v.abs().max(1.0) {
                return Err(err(
                    "size_proportional",
                    format!("subset {subset:?} evaluates to {fv} > superset value {v}"),
                ));
            }
        }
    }

    // Superset bound: from any split of the sample into (partial, pool),
    // the declared relaxation must not under-estimate f over *any*
    // community reachable by adding at most `budget` pool members — for
    // every budget, not just the full pool (the branch-and-bound caller
    // passes `max_size − |set|`, which is usually smaller). Reachable
    // completions are sampled: every heaviest-prefix and
    // lightest-prefix extension of each size ≤ budget.
    if certs.superset_bound && weights.len() >= 2 {
        for cut in 1..weights.len() {
            let partial = &weights[..cut];
            let mut pool: Vec<f64> = weights[cut..].to_vec();
            pool.sort_by(|a, b| b.total_cmp(a));
            let psum: f64 = partial.iter().sum();
            for budget in [0usize, 1, pool.len() / 2, pool.len()] {
                let budget = budget.min(pool.len());
                let bound = f.superset_bound(psum, cut, budget, &mut pool.iter().copied(), total);
                let mut extended = partial.to_vec();
                for take in 0..=budget {
                    // Heaviest-first completion of size `take`.
                    extended.truncate(cut);
                    extended.extend_from_slice(&pool[..take]);
                    let fv = f.evaluate(&extended, total);
                    // Lightest-first completion of the same size.
                    extended.truncate(cut);
                    extended.extend(pool[pool.len() - take..].iter().copied());
                    let fv_light = f.evaluate(&extended, total);
                    let reachable = fv.max(fv_light);
                    if reachable.is_finite() && bound < reachable - 1e-9 * reachable.abs().max(1.0)
                    {
                        return Err(err(
                            "superset_bound",
                            format!(
                                "bound {bound} from partial {partial:?} (budget {budget}) \
                                 under-estimates the reachable completion value {reachable} \
                                 within {weights:?}"
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Re-evaluates through the incremental-state path: add every weight,
/// then read the value the way `AggregateState` would. The multiset is
/// always materialized and its accesses probed, so the caller learns
/// whether the implementation consumed order statistics.
fn state_value(f: &dyn AggregateFn, weights: &[f64], total: f64) -> (f64, bool) {
    let mut sum = 0.0;
    let mut multiset: BTreeMap<OrdF64, usize> = BTreeMap::new();
    for &w in weights {
        sum += w;
        *multiset.entry(OrdF64(w)).or_insert(0) += 1;
    }
    let touched = std::cell::Cell::new(false);
    let view = StateView::probing(weights.len(), sum, total, &multiset, &touched);
    let value = f.evaluate_state(&view);
    (value, touched.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aggregation;

    #[test]
    fn every_builtin_certifies() {
        for agg in Aggregation::builtins() {
            certify(&agg).unwrap_or_else(|e| panic!("{} failed: {e}", agg.name()));
        }
        // Parameter sweeps beyond the representative defaults.
        for agg in [
            Aggregation::SumSurplus { alpha: 0.0 },
            Aggregation::SumSurplus { alpha: 3.5 },
            Aggregation::SumSurplus { alpha: -1.0 },
            Aggregation::WeightDensity { beta: 2.0 },
            Aggregation::TopTSum { t: 1 },
            Aggregation::TopTSum { t: 100 },
            Aggregation::Percentile { p: 0.0 },
            Aggregation::Percentile { p: 1.0 },
            Aggregation::Percentile { p: 0.25 },
        ] {
            certify(&agg).unwrap_or_else(|e| panic!("{:?} failed: {e}", agg));
        }
    }

    /// A deliberately mis-declared function per certificate, each caught.
    #[test]
    fn mis_declared_certificates_are_caught() {
        use crate::aggregate::{AggregateFn, Certificates};

        #[derive(Debug)]
        struct LyingAverage {
            claim: Certificates,
        }
        impl AggregateFn for LyingAverage {
            fn name(&self) -> &str {
                "lying-avg"
            }
            fn certificates(&self) -> Certificates {
                self.claim
            }
            fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
                w.iter().sum::<f64>() / w.len() as f64
            }
            fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
                state.sum() / state.len() as f64
            }
            fn value_after_removal(&self, parent: f64, _w: f64) -> f64 {
                parent // wrong on purpose
            }
        }

        // avg is not removal-decreasing.
        let e = certify_fn(&LyingAverage {
            claim: Certificates {
                removal_decreasing: true,
                ..Certificates::opaque()
            },
        })
        .unwrap_err();
        assert_eq!(e.certificate, "removal_decreasing");

        // avg is not subset-monotone.
        let e = certify_fn(&LyingAverage {
            claim: Certificates {
                size_proportional: true,
                ..Certificates::opaque()
            },
        })
        .unwrap_err();
        assert_eq!(e.certificate, "size_proportional");

        // avg is not node-dominated.
        let e = certify_fn(&LyingAverage {
            claim: Certificates {
                node_domination: true,
                ..Certificates::opaque()
            },
        })
        .unwrap_err();
        assert_eq!(e.certificate, "node_domination");

        // avg is not the minimum member weight.
        let e = certify_fn(&LyingAverage {
            claim: Certificates {
                node_domination: true,
                peel_extremum: Some(Extremum::Min),
                ..Certificates::opaque()
            },
        })
        .unwrap_err();
        assert!(e.certificate == "node_domination" || e.certificate == "peel_extremum");

        // The broken O(1) delta is caught against re-evaluation.
        let e = certify_fn(&LyingAverage {
            claim: Certificates {
                incremental_removal: true,
                ..Certificates::opaque()
            },
        })
        .unwrap_err();
        assert_eq!(e.certificate, "incremental_removal");

        // An honest declaration passes.
        certify_fn(&LyingAverage {
            claim: Certificates::opaque(),
        })
        .unwrap();
    }

    #[test]
    fn wrong_superset_bound_is_caught() {
        use crate::aggregate::{AggregateFn, Certificates};
        #[derive(Debug)]
        struct BadBoundSum;
        impl AggregateFn for BadBoundSum {
            fn name(&self) -> &str {
                "bad-bound-sum"
            }
            fn certificates(&self) -> Certificates {
                Certificates {
                    removal_decreasing: true,
                    size_proportional: true,
                    superset_bound: true,
                    ..Certificates::opaque()
                }
            }
            fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
                w.iter().sum()
            }
            fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
                state.sum()
            }
            fn superset_bound(
                &self,
                sum: f64,
                _count: usize,
                _budget: usize,
                _pool: &mut dyn Iterator<Item = f64>,
                _total: f64,
            ) -> f64 {
                sum // ignores the pool: under-estimates every completion
            }
        }
        let e = certify_fn(&BadBoundSum).unwrap_err();
        assert_eq!(e.certificate, "superset_bound");
    }

    #[test]
    fn samples_are_deterministic() {
        assert_eq!(default_samples(7), default_samples(7));
        assert_ne!(default_samples(7), default_samples(8));
    }
}
