//! The paper's running example network (Figure 1).
//!
//! The published figure is a drawing, so the exact edge set is not machine
//! readable; this module reconstructs an 11-vertex network on which
//! **every** numeric fact stated in Examples 1 and 2 of the paper holds
//! (each is asserted in this crate's tests):
//!
//! * `k = 2`, `f = sum`: top-2 are `{v1..v11}` (203) and `{v1..v11}∖{v3}`
//!   (195);
//! * `k = 2`, `f = avg`: top-2 are `{v1,v2,v4}` (24) and `{v6,v7,v11}`
//!   (22); `{v5,v6,v7}` and `{v5,v7,v8}` are also communities;
//! * `k = 2`, `f = min`: top-2 are `{v5,v7,v8}` (12) and `{v3,v9,v10}` (8);
//! * `k = 2`, `f = sum`, `s = 4`: `{v3,v6,v9,v10}` is a size-constrained
//!   community with value 40;
//! * non-overlapping avg top-3: `{v1,v2,v4}`, `{v6,v7,v11}`,
//!   `{v3,v9,v10}` with values 24, 22, 38/3.
//!
//! Note: the arithmetic inside the paper's proof of Theorem 2 (values
//! 14/3, 7, 22/4 for subsets around v5–v8) is mutually inconsistent with
//! Example 1's community values, so it cannot hold on any single weight
//! assignment; we treat Examples 1–2 as ground truth (see DESIGN.md §3).

use ic_graph::{graph_from_edges, WeightedGraph};

/// Paper vertex `v1` is id 0, `v2` is id 1, …, `v11` is id 10.
pub const V: [u32; 11] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Maps a paper vertex label (1-based, `v1..v11`) to its graph id.
pub fn v(label: usize) -> u32 {
    assert!((1..=11).contains(&label), "figure 1 has vertices v1..v11");
    (label - 1) as u32
}

/// The reconstructed Figure 1 network with its vertex weights.
pub fn figure1() -> WeightedGraph {
    let edges = [
        (v(1), v(2)),
        (v(1), v(4)),
        (v(2), v(4)),
        (v(2), v(3)),
        (v(4), v(10)),
        (v(3), v(9)),
        (v(3), v(10)),
        (v(9), v(10)),
        (v(6), v(9)),
        (v(6), v(10)),
        (v(5), v(6)),
        (v(5), v(7)),
        (v(5), v(8)),
        (v(7), v(8)),
        (v(6), v(7)),
        (v(6), v(11)),
        (v(7), v(11)),
    ];
    let g = graph_from_edges(11, &edges);
    let mut w = vec![0.0f64; 11];
    w[v(1) as usize] = 62.0;
    w[v(2) as usize] = 4.0;
    w[v(3) as usize] = 8.0;
    w[v(4) as usize] = 6.0;
    w[v(5) as usize] = 15.0;
    w[v(6) as usize] = 2.0;
    w[v(7) as usize] = 14.0;
    w[v(8) as usize] = 12.0;
    w[v(9) as usize] = 20.0;
    w[v(10) as usize] = 10.0;
    w[v(11) as usize] = 50.0;
    WeightedGraph::new(g, w).expect("figure 1 weights are valid")
}

/// Helper for tests: paper labels (1-based) to a sorted id vector.
pub fn vs(labels: &[usize]) -> Vec<u32> {
    let mut ids: Vec<u32> = labels.iter().map(|&l| v(l)).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_kcore::maximal_kcore_components;

    #[test]
    fn basic_shape() {
        let wg = figure1();
        assert_eq!(wg.num_vertices(), 11);
        assert_eq!(wg.num_edges(), 17);
        assert_eq!(wg.total_weight(), 203.0);
    }

    #[test]
    fn whole_graph_is_a_connected_2core() {
        let wg = figure1();
        let comps = maximal_kcore_components(wg.graph(), 2);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 11);
    }

    #[test]
    fn example_triangles_exist() {
        let wg = figure1();
        let g = wg.graph();
        for tri in [
            vs(&[1, 2, 4]),
            vs(&[6, 7, 11]),
            vs(&[5, 6, 7]),
            vs(&[5, 7, 8]),
            vs(&[3, 9, 10]),
        ] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    assert!(g.has_edge(tri[i], tri[j]), "missing edge in {tri:?}");
                }
            }
        }
    }

    #[test]
    fn stated_community_values() {
        let wg = figure1();
        let sum = |labels: &[usize]| -> f64 { labels.iter().map(|&l| wg.weight(v(l))).sum() };
        assert_eq!(sum(&[1, 2, 4]), 72.0); // avg 24
        assert_eq!(sum(&[6, 7, 11]), 66.0); // avg 22
        assert_eq!(sum(&[3, 9, 10]), 38.0); // avg 38/3
        assert_eq!(sum(&[3, 6, 9, 10]), 40.0); // the s = 4 example
        assert_eq!(sum(&(1..=11).collect::<Vec<_>>()), 203.0);
    }

    #[test]
    fn label_helper_bounds() {
        assert_eq!(v(1), 0);
        assert_eq!(v(11), 10);
    }

    #[test]
    #[should_panic(expected = "v1..v11")]
    fn label_zero_panics() {
        v(0);
    }
}
