use crate::Aggregation;
use std::fmt;

/// Errors produced by the community-search solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// A parameter combination is invalid (e.g. `r = 0`, `s <= k`).
    InvalidParams(String),
    /// The requested algorithm does not support this aggregation function.
    ///
    /// Algorithms 1 and 2 require the influence value to strictly decrease
    /// when vertices are removed (Corollary 2); aggregations that violate
    /// this (e.g. `avg`, `min`) are rejected instead of silently returning
    /// wrong answers.
    UnsupportedAggregation {
        /// The algorithm that rejected the aggregation.
        algorithm: &'static str,
        /// The offending aggregation.
        aggregation: Aggregation,
        /// Why it cannot be used.
        reason: &'static str,
    },
    /// The query's deadline expired before **any** community of the
    /// answer was proven final. Deadlines that expire after a prefix is
    /// proven degrade instead of erroring — see
    /// `ic_engine::AnswerStatus::Degraded`.
    DeadlineExceeded,
    /// The solver panicked while answering this query. The panic was
    /// isolated to the query (the rest of its batch completed) and the
    /// arena it was using was quarantined; the payload describes the
    /// panic for diagnostics.
    Internal(String),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            SearchError::UnsupportedAggregation {
                algorithm,
                aggregation,
                reason,
            } => write!(
                f,
                "{algorithm} does not support aggregation {}: {reason}",
                aggregation.name()
            ),
            SearchError::DeadlineExceeded => {
                write!(f, "deadline exceeded before any result was proven")
            }
            SearchError::Internal(detail) => {
                write!(f, "internal solver failure (query isolated): {detail}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SearchError::InvalidParams("r must be positive".into());
        assert!(e.to_string().contains("r must be positive"));
        let e = SearchError::UnsupportedAggregation {
            algorithm: "sum_naive",
            aggregation: Aggregation::Average,
            reason: "value does not decrease on removal",
        };
        let s = e.to_string();
        assert!(s.contains("sum_naive") && s.contains("avg"));
    }
}
