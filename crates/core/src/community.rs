//! Community values, canonical identity, and bounded top-r lists.

use ic_graph::VertexId;
use std::cmp::Ordering;

/// A community: a canonical (sorted, deduplicated) vertex list plus its
/// influence value under the aggregation the producing solver used.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Community {
    /// Member vertices, sorted ascending.
    pub vertices: Vec<VertexId>,
    /// `f(H)` under the solver's aggregation function.
    pub value: f64,
}

impl Community {
    /// Builds a community, canonicalizing the vertex list.
    pub fn new(mut vertices: Vec<VertexId>, value: f64) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        Community { vertices, value }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for the empty community (never produced by the solvers).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether `v` is a member (binary search).
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Whether two communities share any vertex (merge scan).
    pub fn overlaps(&self, other: &Community) -> bool {
        let (mut a, mut b) = (self.vertices.as_slice(), other.vertices.as_slice());
        while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
            match x.cmp(&y) {
                Ordering::Less => a = &a[1..],
                Ordering::Greater => b = &b[1..],
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// 64-bit FNV-1a hash of the member list; used for cheap duplicate
    /// detection (full list comparison resolves collisions).
    pub fn signature(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &v in &self.vertices {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Total order used by all solvers: higher value first; ties broken by
    /// smaller size, then lexicographically smaller vertex list, making
    /// every solver's output deterministic.
    pub fn ranking_cmp(&self, other: &Community) -> Ordering {
        other
            .value
            .total_cmp(&self.value)
            .then_with(|| self.vertices.len().cmp(&other.vertices.len()))
            .then_with(|| self.vertices.cmp(&other.vertices))
    }
}

/// A bounded, deduplicated list of the best `r` communities seen so far.
///
/// This is the `L` of Algorithms 1, 2, and 4: insertion keeps the list
/// sorted by [`Community::ranking_cmp`], drops duplicates, and evicts the
/// worst entry when capacity is exceeded.
#[derive(Clone, Debug)]
pub struct TopList {
    capacity: usize,
    items: Vec<Community>,
    floor: f64,
}

impl TopList {
    /// Creates a list holding at most `capacity` communities.
    pub fn new(capacity: usize) -> Self {
        TopList {
            capacity,
            items: Vec::with_capacity(capacity + 1),
            floor: f64::NEG_INFINITY,
        }
    }

    /// Raises the external pruning floor: [`Self::threshold`] never reports
    /// less than `floor` afterwards. Used by the parallel driver to share
    /// the best known global r-th value across workers — a candidate that
    /// cannot beat another worker's r-th best cannot reach the merged
    /// top-r either. Lowering the floor is a no-op.
    pub fn set_floor(&mut self, floor: f64) {
        if floor > self.floor {
            self.floor = floor;
        }
    }

    /// Maximum number of communities retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of communities.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no community has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The retained communities, best first.
    pub fn items(&self) -> &[Community] {
        &self.items
    }

    /// Consumes the list, returning the communities best-first.
    pub fn into_vec(self) -> Vec<Community> {
        self.items
    }

    /// The value of the `r`-th (worst retained) community, or `−∞` while
    /// the list is not yet full. This is `f(Lr)` in the paper's pruning
    /// rules: any candidate that cannot beat it is skipped.
    pub fn threshold(&self) -> f64 {
        if self.items.len() < self.capacity {
            self.floor
        } else {
            self.items
                .last()
                .map_or(self.floor, |c| c.value.max(self.floor))
        }
    }

    /// The best community, if any.
    pub fn best(&self) -> Option<&Community> {
        self.items.first()
    }

    /// Inserts a community; returns whether it was retained. Duplicates
    /// (same vertex set) are rejected.
    ///
    /// Values are ordered and compared by `total_cmp` bits throughout —
    /// including the duplicate scan — so the `−∞` undefined-value
    /// sentinel (the `may_be_neg_infinite` certificate of
    /// `crate::Certificates`) dedups and tie-breaks exactly like any
    /// finite value on every solver path.
    /// NaN values are a solver bug, never a data condition, and are
    /// rejected in debug builds.
    pub fn insert(&mut self, community: Community) -> bool {
        debug_assert!(
            !community.value.is_nan(),
            "NaN influence value for {:?}: aggregation functions must map undefined \
             values onto the −∞ sentinel, never NaN",
            community.vertices
        );
        if self.capacity == 0 {
            return false;
        }
        // Find insertion point by ranking; detect duplicates on the way.
        let pos = self
            .items
            .partition_point(|c| c.ranking_cmp(&community) == Ordering::Less);
        if pos == self.items.len() && self.items.len() >= self.capacity {
            return false; // worse than everything retained, list full
        }
        // Duplicate check: identical vertex lists have bit-identical
        // values (same computation), so they rank adjacently under
        // `ranking_cmp` and it is enough to scan the `total_cmp`-equal
        // neighborhood of the insertion point. `total_cmp` (not `==`)
        // keeps the scan boundary aligned with the ordering above for
        // every value class, `−∞` included.
        let sig = community.signature();
        let mut i = pos;
        while i > 0 && self.items[i - 1].value.total_cmp(&community.value) == Ordering::Equal {
            i -= 1;
            if self.items[i].signature() == sig && self.items[i].vertices == community.vertices {
                return false;
            }
        }
        let mut j = pos;
        while j < self.items.len()
            && self.items[j].value.total_cmp(&community.value) == Ordering::Equal
        {
            if self.items[j].signature() == sig && self.items[j].vertices == community.vertices {
                return false;
            }
            j += 1;
        }
        self.items.insert(pos, community);
        if self.items.len() > self.capacity {
            self.items.pop();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(vs: &[u32], value: f64) -> Community {
        Community::new(vs.to_vec(), value)
    }

    #[test]
    fn construction_canonicalizes() {
        let comm = Community::new(vec![3, 1, 2, 1], 5.0);
        assert_eq!(comm.vertices, vec![1, 2, 3]);
        assert_eq!(comm.len(), 3);
        assert!(comm.contains(2));
        assert!(!comm.contains(9));
    }

    #[test]
    fn overlap_detection() {
        assert!(c(&[1, 2, 3], 0.0).overlaps(&c(&[3, 4], 0.0)));
        assert!(!c(&[1, 2], 0.0).overlaps(&c(&[3, 4], 0.0)));
        assert!(!c(&[], 0.0).overlaps(&c(&[1], 0.0)));
    }

    #[test]
    fn signature_distinguishes_lists() {
        assert_eq!(c(&[1, 2], 0.0).signature(), c(&[2, 1], 1.0).signature());
        assert_ne!(c(&[1, 2], 0.0).signature(), c(&[1, 3], 0.0).signature());
    }

    #[test]
    fn ranking_order() {
        let hi = c(&[1], 10.0);
        let lo = c(&[2], 5.0);
        assert_eq!(hi.ranking_cmp(&lo), Ordering::Less); // "less" = ranks earlier
                                                         // Ties: smaller community first.
        let small = c(&[7], 5.0);
        let big = c(&[1, 2], 5.0);
        assert_eq!(small.ranking_cmp(&big), Ordering::Less);
        // Full tie broken lexicographically.
        let a = c(&[1, 5], 5.0);
        let b = c(&[2, 3], 5.0);
        assert_eq!(a.ranking_cmp(&b), Ordering::Less);
    }

    #[test]
    fn toplist_keeps_best_r() {
        let mut l = TopList::new(2);
        assert!(l.insert(c(&[1], 1.0)));
        assert!(l.insert(c(&[2], 3.0)));
        assert!(l.insert(c(&[3], 2.0))); // evicts value 1.0
        assert_eq!(l.len(), 2);
        assert_eq!(l.items()[0].value, 3.0);
        assert_eq!(l.items()[1].value, 2.0);
        assert!(!l.insert(c(&[4], 0.5))); // too weak
        assert_eq!(l.threshold(), 2.0);
    }

    #[test]
    fn toplist_threshold_before_full() {
        let mut l = TopList::new(3);
        assert_eq!(l.threshold(), f64::NEG_INFINITY);
        l.insert(c(&[1], 1.0));
        assert_eq!(l.threshold(), f64::NEG_INFINITY);
    }

    #[test]
    fn toplist_rejects_duplicates() {
        let mut l = TopList::new(3);
        assert!(l.insert(c(&[1, 2], 5.0)));
        assert!(!l.insert(c(&[2, 1], 5.0)));
        assert_eq!(l.len(), 1);
        // Same value, different set: accepted.
        assert!(l.insert(c(&[1, 3], 5.0)));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn toplist_zero_capacity() {
        let mut l = TopList::new(0);
        assert!(!l.insert(c(&[1], 1.0)));
        assert!(l.is_empty());
    }

    #[test]
    fn neg_infinity_sentinel_dedups_and_tie_breaks_like_any_value() {
        // Regression (PR 4): BalancedDensity-style aggregations emit −∞
        // for undefined values. Those communities must rank last, dedup
        // by vertex set, and tie-break by (size, lex) exactly like
        // finite-valued ones — the dup scan runs on total_cmp bits, so
        // −∞ == −∞ neighborhoods are scanned, not skipped.
        let mut l = TopList::new(4);
        assert!(l.insert(c(&[1, 2], f64::NEG_INFINITY)));
        assert!(!l.insert(c(&[2, 1], f64::NEG_INFINITY)), "dup −∞ set");
        assert!(l.insert(c(&[3], f64::NEG_INFINITY)));
        assert!(l.insert(c(&[4, 5], 1.0)));
        // Finite values rank above the sentinel; among the −∞ ties the
        // smaller set wins, then lexicographic order.
        let got: Vec<&[u32]> = l.items().iter().map(|x| x.vertices.as_slice()).collect();
        assert_eq!(got, vec![&[4, 5][..], &[3][..], &[1, 2][..]]);
        assert_eq!(l.threshold(), f64::NEG_INFINITY);
        // A −∞ community is evicted before any finite one.
        assert!(l.insert(c(&[6], 0.5)));
        assert!(l.insert(c(&[7], 0.25)));
        let worst = l.items().last().unwrap();
        assert_eq!(worst.vertices, vec![3]);
        assert_eq!(worst.value, f64::NEG_INFINITY);
    }

    #[test]
    fn toplist_eviction_respects_tie_breaks() {
        let mut l = TopList::new(2);
        l.insert(c(&[1, 2, 3], 5.0));
        l.insert(c(&[4], 5.0)); // smaller set ranks first on tie
        assert_eq!(l.items()[0].vertices, vec![4]);
        // New tie value evicts the lexicographically-larger big set? No —
        // eviction is strictly by ranking: the 3-element set is last.
        l.insert(c(&[5], 5.0));
        assert_eq!(l.items().len(), 2);
        assert_eq!(l.items()[1].vertices, vec![5]);
    }
}
