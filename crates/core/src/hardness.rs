//! Reduction gadgets from the paper's hardness proofs (Section III).
//!
//! These constructions are executable documentation: tests apply the exact
//! solver to small gadget instances and confirm the behaviour each theorem
//! relies on. They are also useful for generating adversarial inputs.

use ic_graph::{Graph, GraphBuilder, WeightedGraph};

/// Theorem 1 gadget (NP-hardness of top-r avg search).
///
/// Takes a base graph `G`, gives every base vertex weight 0, and adds a
/// universal vertex `u` (id `n`) with weight `wc` connected to everything.
/// `G` contains a (k−1)-clique **iff** the top-1 k-influential community
/// under `avg` of the gadget has value `wc / (k+1)`: the best community is
/// `u` plus a (k−1)-clique — any extra vertex only grows the denominator.
pub fn avg_clique_gadget(base: &Graph, wc: f64) -> WeightedGraph {
    let n = base.num_vertices();
    let mut b = GraphBuilder::with_capacity(base.num_edges() + n);
    b.reserve_vertices(n + 1);
    for (x, y) in base.edges() {
        b.add_edge(x, y);
    }
    let u = n as u32;
    for v in 0..n as u32 {
        b.add_edge(u, v);
    }
    let mut w = vec![0.0f64; n + 1];
    w[n] = wc;
    WeightedGraph::new(b.build(), w).expect("gadget weights valid")
}

/// Theorem 3 gadget (no constant-factor approximation for avg).
///
/// Every base vertex gets weight `wc`; a dummy vertex `u` (id `n`) with
/// weight `n·wc` is connected to every base vertex. An α-approximation for
/// top-1 (k+1)-influential avg search on the gadget would yield a
/// (4/α)-approximation for the Minimum Subgraph of Minimum Degree ≥ k
/// problem, which admits none (for k ≥ 3) unless P = NP.
pub fn msmd_gadget(base: &Graph, wc: f64) -> WeightedGraph {
    let n = base.num_vertices();
    let mut b = GraphBuilder::with_capacity(base.num_edges() + n);
    b.reserve_vertices(n + 1);
    for (x, y) in base.edges() {
        b.add_edge(x, y);
    }
    let u = n as u32;
    for v in 0..n as u32 {
        b.add_edge(u, v);
    }
    let mut w = vec![wc; n + 1];
    w[n] = n as f64 * wc;
    WeightedGraph::new(b.build(), w).expect("gadget weights valid")
}

/// Theorem 4 intuition (size-constrained sum is NP-hard): with `s = k+1`,
/// a size-constrained k-influential community of size `k+1` is exactly a
/// (k+1)-clique — the minimum-degree constraint forces every pair
/// adjacent. This helper checks that fact for a vertex set.
pub fn is_clique(g: &Graph, vertices: &[u32]) -> bool {
    for (i, &u) in vertices.iter().enumerate() {
        for &v in vertices.iter().skip(i + 1) {
            if !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact_topr;
    use crate::figure1::{figure1, vs};
    use crate::verify::evaluate_community;
    use crate::Aggregation;
    use ic_graph::graph_from_edges;

    /// g(H) from Theorem 2: the avg value when H induces a min-degree ≥ k
    /// subgraph, 0 otherwise (the indicator-style objective).
    fn g_objective(labels: &[usize], k: usize) -> f64 {
        let wg = figure1();
        let ids = vs(labels);
        if ids.is_empty() {
            return 0.0;
        }
        if !ic_kcore::is_kcore(wg.graph(), &ids, k) {
            return 0.0;
        }
        evaluate_community(&wg, Aggregation::Average, &ids)
    }

    #[test]
    fn theorem2_objective_is_not_monotonic() {
        // Growing a community can increase g ...
        assert_eq!(g_objective(&[5], 2), 0.0);
        assert!(g_objective(&[5, 6, 7], 2) > 0.0);
        // ... and can also decrease it: absorbing the v3/v10 connector
        // dilutes the {v1,v2,v4} triangle.
        let small = g_objective(&[1, 2, 4], 2);
        let large = g_objective(&[1, 2, 3, 4, 10], 2);
        assert!(small > large && large > 0.0, "small {small}, large {large}");
    }

    #[test]
    fn theorem2_objective_is_not_submodular() {
        // Submodularity requires g(A) + g(B) >= g(A∪B) + g(A∩B).
        let a = g_objective(&[5], 2);
        let b = g_objective(&[6, 7], 2);
        let union = g_objective(&[5, 6, 7], 2);
        let inter = 0.0; // empty intersection
        assert!(a + b < union + inter, "{a} + {b} vs {union}");
    }

    #[test]
    fn theorem1_gadget_detects_planted_clique() {
        // Base graph: a triangle (= 3-clique) plus a path. k = 4 on the
        // gadget: the top-1 avg community is u + the 3-clique with value
        // wc / 5 (clique of size k-1 = 3, community size k+1 = 5)...
        // here we use k = 3: community = u + a 2-clique (edge)? Use the
        // paper's statement with k = 3: (k-1)-clique = edge. Stronger: use
        // the triangle with k = 4.
        let base = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        let wc = 10.0;
        let gadget = avg_clique_gadget(&base, wc);
        // k = 3: every community must contain u (weight wc) because base
        // weights are 0 and u is the only high-degree hub; the smallest
        // 3-core containing u is u + triangle.
        let top = exact_topr(&gadget, 3, 1, None, Aggregation::Average).unwrap();
        assert_eq!(top.len(), 1);
        // u + (k-1)-clique of size 3 => value wc / 4.
        assert!((top[0].value - wc / 4.0).abs() < 1e-9, "{}", top[0].value);
        assert_eq!(top[0].len(), 4);
        assert!(top[0].contains(6)); // the universal vertex
    }

    #[test]
    fn theorem1_gadget_without_clique_scores_lower() {
        // Base is a 4-cycle: no triangle. Best k=3 community must use 4
        // base vertices (value wc/5 < wc/4).
        let base = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let wc = 10.0;
        let gadget = avg_clique_gadget(&base, wc);
        let top = exact_topr(&gadget, 3, 1, None, Aggregation::Average).unwrap();
        assert!((top[0].value - wc / 5.0).abs() < 1e-9);
    }

    #[test]
    fn msmd_gadget_prefers_small_subgraphs() {
        // Base: a triangle and a larger 2-core (4-cycle). k+1 = 3-influential
        // search favors the smallest min-degree-2 subgraph attached to u:
        // value (n·wc + |S|·wc) / (|S|+1) decreases with |S|.
        let base = graph_from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)]);
        let gadget = msmd_gadget(&base, 1.0);
        let top = exact_topr(&gadget, 3, 1, None, Aggregation::Average).unwrap();
        // u + triangle: (7 + 3) / 4 = 2.5 beats u + 4-cycle: (7 + 4) / 5 = 2.2.
        assert!((top[0].value - 2.5).abs() < 1e-9, "{}", top[0].value);
        assert_eq!(top[0].len(), 4);
    }

    #[test]
    fn theorem4_size_k_plus_1_communities_are_cliques() {
        let wg = figure1();
        // Every size-(k+1) community at k = 2 must be a triangle.
        let top = exact_topr(&wg, 2, 10, Some(3), Aggregation::Sum).unwrap();
        assert!(!top.is_empty());
        for c in &top {
            assert_eq!(c.len(), 3);
            assert!(is_clique(wg.graph(), &c.vertices));
        }
    }

    #[test]
    fn is_clique_helper() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_clique(&g, &[0, 1, 3]));
        assert!(is_clique(&g, &[0]));
        assert!(is_clique(&g, &[]));
    }
}
