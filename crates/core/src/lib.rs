//! Top-r influential community search under aggregation functions.
//!
//! Rust reproduction of *"Finding Top-r Influential Communities under
//! Aggregation Functions"* (ICDE 2022). Given an undirected graph whose
//! vertices carry non-negative influence values, a *k-influential
//! community* (Definition 3 of the paper) is a vertex set `H` such that
//!
//! 1. every vertex of the induced subgraph has degree ≥ `k` (*cohesive*),
//! 2. the induced subgraph is connected (*connected*),
//! 3. no strict superset satisfying 1–2 has the same influence value
//!    (*maximal*),
//!
//! where the influence value `f(H)` is computed by an [`Aggregation`]
//! function: `min`, `max`, `sum`, `sum-surplus`, `avg`, `weight density`,
//! or `balanced density` (Table I).
//!
//! # Solvers
//!
//! | Paper artifact | Function | Applicability |
//! |----------------|----------|---------------|
//! | Algorithm 1 (`SUM-NAÏVE`) | [`algo::sum_naive`] | removal-decreasing aggregations (`sum`, `sum-surplus`) |
//! | Algorithm 2 (`TIC-IMPROVED`), ε = 0 "Improve", ε > 0 "Approx" | [`algo::tic_improved`] | removal-decreasing aggregations |
//! | Algorithm 3 (`TIC-EXACT`) | [`algo::exact_topr`] / [`algo::exact_naive`] | any aggregation, tiny graphs |
//! | Algorithm 4 (`LOCAL SEARCH`) with `SumStrategy`/`AvgStrategy` | [`algo::local_search`] | any aggregation, size-constrained |
//! | min/max baselines (Li et al. VLDB'15 style peeling) | [`algo::min_topr`] / [`algo::max_topr`] | `min` / `max` |
//! | TONIC (non-overlapping) variants | [`algo::nonoverlap`] | per solver |
//! | Parallel local search (paper's future-work direction) | [`algo::par_local_search`] | any aggregation |
//!
//! # Quick start
//!
//! ```
//! use ic_core::{algo, Aggregation};
//! use ic_core::figure1::figure1;
//!
//! // The paper's running example (Figure 1), k = 2.
//! let wg = figure1();
//! let top = algo::tic_improved(&wg, 2, 2, Aggregation::Sum, 0.0).unwrap();
//! assert_eq!(top[0].value, 203.0);          // the whole graph
//! assert_eq!(top[1].value, 195.0);          // everything except v3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod algo;
pub mod community;
mod error;
pub mod figure1;
pub mod hardness;
pub mod query;
pub mod verify;

pub use aggregate::{AggregateState, Aggregation, Hardness};
pub use community::{Community, TopList};
pub use error::SearchError;
pub use query::{Constraint, Query, QueryBuilder, Solver};
