//! Top-r influential community search under aggregation functions.
//!
//! Rust reproduction of *"Finding Top-r Influential Communities under
//! Aggregation Functions"* (ICDE 2022). Given an undirected graph whose
//! vertices carry non-negative influence values, a *k-influential
//! community* (Definition 3 of the paper) is a vertex set `H` such that
//!
//! 1. every vertex of the induced subgraph has degree ≥ `k` (*cohesive*),
//! 2. the induced subgraph is connected (*connected*),
//! 3. no strict superset satisfying 1–2 has the same influence value
//!    (*maximal*),
//!
//! where the influence value `f(H)` is computed by an [`Aggregation`]
//! function: the paper's seven (Table I: `min`, `max`, `sum`,
//! `sum-surplus`, `avg`, `weight density`, `balanced density`), the
//! extension built-ins (`top-t-sum`, `percentile`, `geo-mean`), or any
//! user-defined [`AggregateFn`] registered with [`Aggregation::custom`].
//!
//! # Solvers
//!
//! Queries are routed by the aggregation's declared property
//! [`Certificates`] — see [`Query::solver`] and DESIGN.md §10:
//!
//! | Paper artifact | Entry point | Routed by certificate |
//! |----------------|-------------|------------------------|
//! | Algorithm 1 (`SUM-NAÏVE`) | [`algo::sum_naive_on`] | removal-decreasing |
//! | Algorithm 2 (`TIC-IMPROVED`), ε = 0 "Improve", ε > 0 "Approx" | [`Query::solve`] → [`algo::tic_improved_on`] | removal-decreasing (+ O(1) remove delta for pruning) |
//! | Algorithm 3 (`TIC-EXACT`) | [`algo::exact_topr`] / [`algo::exact_naive`] | any aggregation, tiny graphs |
//! | Algorithm 4 (`LOCAL SEARCH`) with `SumStrategy`/`AvgStrategy` | [`Query::solve`] → [`algo::local_search`] | any aggregation, size-constrained |
//! | min/max baselines (Li et al. VLDB'15 style peeling) | [`Query::solve`] → [`algo::min_topr_on`] / [`algo::max_topr_on`] | peel extremum |
//! | Branch-and-bound exact fallback (Section VIII direction) | [`algo::bb_topr`] | superset bound |
//! | TONIC (non-overlapping) variants | [`algo::nonoverlap`] | per solver |
//! | Parallel local search (paper's future-work direction) | [`algo::par_local_search`] | any aggregation |
//!
//! # Quick start
//!
//! ```
//! use ic_core::{Aggregation, Query};
//! use ic_core::figure1::figure1;
//!
//! // The paper's running example (Figure 1), k = 2: routed onto
//! // TIC-IMPROVED by the sum aggregation's certificates.
//! let wg = figure1();
//! let top = Query::new(2, 2, Aggregation::Sum).solve(&wg).unwrap();
//! assert_eq!(top[0].value, 203.0);          // the whole graph
//! assert_eq!(top[1].value, 195.0);          // everything except v3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod algo;
pub mod certify;
pub mod community;
mod error;
pub mod figure1;
pub mod hardness;
pub mod query;
pub mod verify;

pub use aggregate::{
    AggregateFn, AggregateState, Aggregation, Certificates, CustomAggregation, Extremum, Hardness,
    StateView, TieSemantics,
};
pub use community::{Community, TopList};
pub use error::SearchError;
pub use query::{Constraint, Query, QueryBuilder, Solver};
