//! Community validation against Definition 3/4 of the paper.
//!
//! Solvers use these checks in tests; applications can use them to audit
//! results from any source.

use crate::{Aggregation, Community};
use ic_graph::{BitSet, WeightedGraph};

/// Why a community failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Community is empty.
    Empty,
    /// A member vertex id is out of graph bounds.
    OutOfBounds(u32),
    /// Some member has fewer than `k` neighbors inside the community.
    NotCohesive {
        /// Offending vertex.
        vertex: u32,
        /// Its internal degree.
        degree: usize,
    },
    /// The induced subgraph is disconnected.
    NotConnected,
    /// The stored value does not match re-evaluation.
    WrongValue {
        /// Value recomputed from the member weights.
        expected: f64,
    },
    /// The community exceeds the size bound `s`.
    TooLarge {
        /// The bound that was violated.
        bound: usize,
    },
}

/// Checks the *cohesive* and *connected* constraints (Definition 3, items
/// 1–2) plus membership sanity; does not check maximality (see
/// [`crate::algo::exact_topr`] for the exhaustive oracle used in tests).
pub fn check_structure(
    wg: &WeightedGraph,
    k: usize,
    community: &Community,
) -> Result<(), Violation> {
    let g = wg.graph();
    let n = g.num_vertices();
    if community.is_empty() {
        return Err(Violation::Empty);
    }
    let mut mask = BitSet::new(n);
    for &v in &community.vertices {
        if v as usize >= n {
            return Err(Violation::OutOfBounds(v));
        }
        mask.insert(v as usize);
    }
    for &v in &community.vertices {
        let d = g.degree_within(v, &mask);
        if d < k {
            return Err(Violation::NotCohesive {
                vertex: v,
                degree: d,
            });
        }
    }
    if !ic_graph::is_connected_within(g, &mask) {
        return Err(Violation::NotConnected);
    }
    Ok(())
}

/// Full validation: structure, optional size bound, and value consistency
/// under `aggregation` (tolerance `1e-6` relative).
pub fn check_community(
    wg: &WeightedGraph,
    k: usize,
    size_bound: Option<usize>,
    aggregation: Aggregation,
    community: &Community,
) -> Result<(), Violation> {
    check_structure(wg, k, community)?;
    if let Some(s) = size_bound {
        if community.len() > s {
            return Err(Violation::TooLarge { bound: s });
        }
    }
    let weights: Vec<f64> = community.vertices.iter().map(|&v| wg.weight(v)).collect();
    let expected = aggregation.evaluate(&weights, wg.total_weight());
    let tol = 1e-6 * expected.abs().max(1.0);
    if (expected - community.value).abs() > tol {
        return Err(Violation::WrongValue { expected });
    }
    Ok(())
}

/// Convenience: recompute a community's influence value from scratch.
pub fn evaluate_community(wg: &WeightedGraph, aggregation: Aggregation, vertices: &[u32]) -> f64 {
    let weights: Vec<f64> = vertices.iter().map(|&v| wg.weight(v)).collect();
    aggregation.evaluate(&weights, wg.total_weight())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_graph::{graph_from_edges, WeightedGraph};

    fn triangle_wg() -> WeightedGraph {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        WeightedGraph::new(g, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn valid_triangle_passes() {
        let wg = triangle_wg();
        let c = Community::new(vec![0, 1, 2], 6.0);
        assert_eq!(check_community(&wg, 2, None, Aggregation::Sum, &c), Ok(()));
    }

    #[test]
    fn empty_rejected() {
        let wg = triangle_wg();
        let c = Community::new(vec![], 0.0);
        assert_eq!(check_structure(&wg, 2, &c), Err(Violation::Empty));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let wg = triangle_wg();
        let c = Community::new(vec![0, 99], 0.0);
        assert_eq!(check_structure(&wg, 0, &c), Err(Violation::OutOfBounds(99)));
    }

    #[test]
    fn low_degree_rejected() {
        let wg = triangle_wg();
        let c = Community::new(vec![0, 1, 2, 3], 10.0);
        assert_eq!(
            check_structure(&wg, 2, &c),
            Err(Violation::NotCohesive {
                vertex: 3,
                degree: 1
            })
        );
    }

    #[test]
    fn disconnected_rejected() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let wg = WeightedGraph::new(g, vec![1.0; 4]).unwrap();
        let c = Community::new(vec![0, 1, 2, 3], 4.0);
        assert_eq!(check_structure(&wg, 1, &c), Err(Violation::NotConnected));
    }

    #[test]
    fn wrong_value_rejected() {
        let wg = triangle_wg();
        let c = Community::new(vec![0, 1, 2], 7.0);
        assert!(matches!(
            check_community(&wg, 2, None, Aggregation::Sum, &c),
            Err(Violation::WrongValue { .. })
        ));
    }

    #[test]
    fn size_bound_enforced() {
        let wg = triangle_wg();
        let c = Community::new(vec![0, 1, 2], 6.0);
        assert_eq!(
            check_community(&wg, 2, Some(2), Aggregation::Sum, &c),
            Err(Violation::TooLarge { bound: 2 })
        );
        assert_eq!(
            check_community(&wg, 2, Some(3), Aggregation::Sum, &c),
            Ok(())
        );
    }

    #[test]
    fn evaluate_helper() {
        let wg = triangle_wg();
        assert_eq!(evaluate_community(&wg, Aggregation::Sum, &[0, 3]), 5.0);
        assert_eq!(evaluate_community(&wg, Aggregation::Min, &[1, 2]), 2.0);
        assert_eq!(evaluate_community(&wg, Aggregation::Average, &[1, 3]), 3.0);
    }
}
