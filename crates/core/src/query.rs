//! The unified query vocabulary and the solver routing layer.
//!
//! Until PR 3, the paper's solvers were ~15 positional free functions in
//! [`crate::algo`] and the query vocabulary lived one crate up in
//! `ic-engine` — every caller had to know which algorithm applies to
//! which aggregation. This module is the single place that knowledge
//! lives now:
//!
//! * [`Query`] / [`Constraint`] — what a caller asks for: `(k, r,
//!   aggregation, ε, size constraint)`. Both are `#[non_exhaustive]` so
//!   future fields (weight predicates, non-overlap, …) are not breaking.
//! * [`QueryBuilder`] — validating construction: `k = 0`, `r = 0`,
//!   ε ∉ [0, 1) (including NaN), NaN aggregation parameters, and
//!   `s ≤ k` are rejected when the query is *built*, not when it is
//!   planned.
//! * [`Solver`] — the routing decision: which of the paper's algorithms
//!   answers a query. [`Query::solver`] maps the aggregation's declared
//!   [`Certificates`](crate::Certificates) plus `(constraint, ε)` onto
//!   it (and doubles as full validation); [`Query::solve`] and
//!   [`Query::solve_on`] dispatch to the algorithm, so callers —
//!   `ic-engine`'s planner, the examples, the conformance tests — never
//!   hand-dispatch again.
//!
//! The per-graph free-function entry points (`min_topr`, `max_topr`,
//! `sum_naive`, `tic_improved`) were removed from the public API in
//! PR 4; this router (or `ic_engine::Engine`, when serving more than
//! one query) is how queries are answered. Because routing reads
//! certificates, a user-defined aggregation registered with
//! [`Aggregation::custom`] is served exactly like a built-in with the
//! same declared properties.
//!
//! ```
//! use ic_core::{Aggregation, Query};
//! use ic_core::figure1::figure1;
//!
//! let wg = figure1();
//! let q = Query::builder(2, 2, Aggregation::Sum).build().unwrap();
//! let top = q.solve(&wg).unwrap(); // routed to TIC-IMPROVED
//! assert_eq!(top[0].value, 203.0);
//! ```

use crate::algo::{self, LocalSearchConfig};
use crate::{Aggregation, Community, SearchError};
use ic_graph::WeightedGraph;
use ic_kcore::{GraphSnapshot, PeelArena};
use std::time::Duration;

/// One top-r influential community query.
///
/// Construct with [`Query::new`] (infallible; validated when routed or
/// planned) or [`Query::builder`] (validated at construction). The
/// struct is `#[non_exhaustive]`: read the fields freely, but build
/// values through the constructors so future fields stay non-breaking.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Query {
    /// Degree constraint `k` of the community model.
    pub k: usize,
    /// Number of communities to return.
    pub r: usize,
    /// Aggregation function `f`.
    pub aggregation: Aggregation,
    /// Approximation parameter ε for the removal-decreasing
    /// aggregations (`0.0` = exact); must be `0.0` for every other
    /// solver path.
    pub epsilon: f64,
    /// Unconstrained or size-bounded search.
    pub constraint: Constraint,
    /// Optional wall-clock budget, measured from the moment the engine
    /// starts serving the query's batch. `None` = run to completion.
    /// On expiry the engine degrades instead of aborting: exact solvers
    /// return the already-proven rank prefix, approximate/local solvers
    /// return best-so-far, and a query that proved nothing gets a typed
    /// `DeadlineExceeded` error. Direct `solve`/`solve_on` calls ignore
    /// the deadline (they have no degradation channel).
    pub deadline: Option<Duration>,
}

/// Size constraint of a [`Query`].
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Constraint {
    /// Size-unconstrained top-r (polynomial-time aggregations only).
    Unconstrained,
    /// Size-bounded top-r via local search (any aggregation; heuristic).
    SizeBound {
        /// Community size bound `s` (must exceed `k`).
        s: usize,
        /// Greedy (weight-sorted pools) vs Random (BFS-ordered pools).
        greedy: bool,
    },
}

/// Which of the paper's algorithms answers a query — the routing
/// decision of [`Query::solver`]. `#[non_exhaustive]`: match with a
/// wildcard arm outside `ic-core`.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Solver {
    /// Threshold peeling from below (`min`; Li et al. VLDB'15 style).
    MinPeel,
    /// Threshold peeling from above (`max`).
    MaxPeel,
    /// Algorithm 2, exact mode (ε = 0, "Improve").
    TicExact,
    /// Algorithm 2, approximate mode (ε > 0, "Approx", Theorem 6).
    TicApprox,
    /// Algorithm 4, size-constrained local search (NP-hard regime).
    LocalSearch,
}

impl Query {
    /// An exact, unconstrained query. Not validated — use
    /// [`Query::builder`] for validation at construction, or rely on
    /// routing/planning to reject bad parameters per query.
    pub fn new(k: usize, r: usize, aggregation: Aggregation) -> Self {
        Query {
            k,
            r,
            aggregation,
            epsilon: 0.0,
            constraint: Constraint::Unconstrained,
            deadline: None,
        }
    }

    /// A validating builder over the same parameters.
    pub fn builder(k: usize, r: usize, aggregation: Aggregation) -> QueryBuilder {
        QueryBuilder {
            query: Query::new(k, r, aggregation),
        }
    }

    /// Sets the approximation parameter ε (Approx mode of Algorithm 2).
    pub fn approx(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Adds a size bound, routing the query through local search.
    pub fn size_bound(mut self, s: usize, greedy: bool) -> Self {
        self.constraint = Constraint::SizeBound { s, greedy };
        self
    }

    /// Arms a wall-clock deadline (see the [`Query::deadline`] field for
    /// the degradation semantics). The clock starts when the engine
    /// begins serving the query's batch.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Validates the query; equivalent to `self.solver().map(|_| ())`.
    pub fn validate(&self) -> Result<(), SearchError> {
        self.solver().map(|_| ())
    }

    /// Routes the query to the algorithm that answers it, validating
    /// every parameter on the way (the single source of truth for both).
    ///
    /// Routing reads the aggregation's declared
    /// [`Certificates`](crate::Certificates), never the enum variants,
    /// so a user-defined [`AggregateFn`](crate::AggregateFn) registered
    /// with [`Aggregation::custom`] routes exactly like a built-in with
    /// the same properties:
    ///
    /// * a declared [`peel_extremum`](crate::Certificates::peel_extremum)
    ///   gets the threshold-peel fast path;
    /// * [`removal_decreasing`](crate::Certificates::removal_decreasing)
    ///   (Corollary 2) gets `TIC-IMPROVED` — with line-13 pruning iff
    ///   [`incremental_removal`](crate::Certificates::incremental_removal)
    ///   is also declared;
    /// * everything else is NP-hard territory: add a size bound to route
    ///   through local search (or call
    ///   [`crate::algo::bb_topr`] directly for
    ///   aggregations with a
    ///   [`superset_bound`](crate::Certificates::superset_bound)).
    pub fn solver(&self) -> Result<Solver, SearchError> {
        if self.k == 0 {
            return Err(SearchError::InvalidParams(
                "degree constraint k must be positive".into(),
            ));
        }
        if self.r == 0 {
            return Err(SearchError::InvalidParams(
                "result count r must be positive".into(),
            ));
        }
        if let Err(m) = self.aggregation.validate_params() {
            return Err(SearchError::InvalidParams(format!(
                "aggregation {}: {m}",
                self.aggregation.name()
            )));
        }
        let certs = self.aggregation.certificates();
        match self.constraint {
            Constraint::SizeBound { s, .. } => {
                if s <= self.k {
                    return Err(SearchError::InvalidParams(format!(
                        "size bound s = {s} must exceed k = {} (a k-core needs at least k+1 vertices)",
                        self.k
                    )));
                }
                if self.epsilon != 0.0 {
                    return Err(SearchError::InvalidParams(format!(
                        "epsilon = {} is only meaningful for unconstrained sum-like queries",
                        self.epsilon
                    )));
                }
                Ok(Solver::LocalSearch)
            }
            Constraint::Unconstrained => {
                if let Some(extremum) = certs.peel_extremum {
                    if self.epsilon != 0.0 {
                        return Err(SearchError::InvalidParams(format!(
                            "epsilon = {} is only meaningful for unconstrained sum-like queries",
                            self.epsilon
                        )));
                    }
                    Ok(match extremum {
                        crate::Extremum::Min => Solver::MinPeel,
                        crate::Extremum::Max => Solver::MaxPeel,
                    })
                } else if certs.removal_decreasing {
                    if !(0.0..1.0).contains(&self.epsilon) {
                        return Err(SearchError::InvalidParams(format!(
                            "epsilon must be in [0, 1), got {}",
                            self.epsilon
                        )));
                    }
                    Ok(if self.epsilon == 0.0 {
                        Solver::TicExact
                    } else {
                        Solver::TicApprox
                    })
                } else {
                    Err(SearchError::UnsupportedAggregation {
                        algorithm: "Query::solver (unconstrained)",
                        aggregation: self.aggregation,
                        reason:
                            "no polynomial certificate is declared for the unconstrained top-r \
                             problem (it is NP-hard for the paper's remaining aggregations, \
                             Theorems 1, 3); add a size bound to route it through local search",
                    })
                }
            }
        }
    }

    /// Routes and solves the query against `wg` with a direct solver
    /// call (fresh decomposition per call). This replaces the
    /// hand-written `match aggregation { … }` dispatch every pre-PR-3
    /// caller carried.
    pub fn solve(&self, wg: &WeightedGraph) -> Result<Vec<Community>, SearchError> {
        match self.solver()? {
            Solver::MinPeel => algo::min_topr(wg, self.k, self.r),
            Solver::MaxPeel => algo::max_topr(wg, self.k, self.r),
            Solver::TicExact | Solver::TicApprox => {
                algo::tic_improved(wg, self.k, self.r, self.aggregation, self.epsilon)
            }
            Solver::LocalSearch => {
                algo::local_search(wg, &self.local_search_config(), self.aggregation)
            }
        }
    }

    /// [`Query::solve`] against a memoized [`GraphSnapshot`] and a
    /// caller-owned (typically pooled) arena. Output is bit-identical to
    /// [`Query::solve`] on the snapshot's graph.
    pub fn solve_on(
        &self,
        snap: &GraphSnapshot,
        arena: &mut PeelArena,
    ) -> Result<Vec<Community>, SearchError> {
        match self.solver()? {
            Solver::MinPeel => algo::min_topr_on(snap, self.k, self.r, arena),
            Solver::MaxPeel => algo::max_topr_on(snap, self.k, self.r, arena),
            Solver::TicExact | Solver::TicApprox => {
                algo::tic_improved_on(snap, self.k, self.r, self.aggregation, self.epsilon, arena)
            }
            Solver::LocalSearch => algo::local_search(
                snap.weighted(),
                &self.local_search_config(),
                self.aggregation,
            ),
        }
    }

    /// The [`LocalSearchConfig`] of a size-bounded query.
    ///
    /// # Panics
    /// Panics when the query is unconstrained; route through
    /// [`Query::solver`] first.
    pub fn local_search_config(&self) -> LocalSearchConfig {
        match self.constraint {
            Constraint::SizeBound { s, greedy } => LocalSearchConfig {
                k: self.k,
                r: self.r,
                s,
                greedy,
            },
            _ => panic!("local_search_config on an unconstrained query"),
        }
    }
}

/// Validating builder for [`Query`]; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Sets the approximation parameter ε (Approx mode of Algorithm 2).
    pub fn approx(mut self, epsilon: f64) -> Self {
        self.query.epsilon = epsilon;
        self
    }

    /// Adds a size bound, routing the query through local search.
    pub fn size_bound(mut self, s: usize, greedy: bool) -> Self {
        self.query.constraint = Constraint::SizeBound { s, greedy };
        self
    }

    /// Arms a wall-clock deadline; see [`Query::deadline`] (the field)
    /// for the degradation semantics.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.query.deadline = Some(limit);
        self
    }

    /// Validates and returns the query. Rejects `k = 0`, `r = 0`,
    /// ε ∉ [0, 1) (including NaN and −0.0-signed garbage), NaN
    /// aggregation parameters, `s ≤ k`, and aggregation/constraint
    /// combinations no solver answers.
    pub fn build(self) -> Result<Query, SearchError> {
        self.query.validate()?;
        Ok(self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    #[test]
    fn builder_accepts_valid_queries() {
        let q = Query::builder(2, 3, Aggregation::Sum).build().unwrap();
        assert_eq!(q.solver().unwrap(), Solver::TicExact);
        let q = Query::builder(2, 3, Aggregation::Sum)
            .approx(0.25)
            .build()
            .unwrap();
        assert_eq!(q.solver().unwrap(), Solver::TicApprox);
        let q = Query::builder(2, 3, Aggregation::Average)
            .size_bound(6, true)
            .build()
            .unwrap();
        assert_eq!(q.solver().unwrap(), Solver::LocalSearch);
        assert_eq!(
            Query::builder(1, 1, Aggregation::Min)
                .build()
                .unwrap()
                .solver()
                .unwrap(),
            Solver::MinPeel
        );
        assert_eq!(
            Query::builder(1, 1, Aggregation::Max)
                .build()
                .unwrap()
                .solver()
                .unwrap(),
            Solver::MaxPeel
        );
    }

    #[test]
    fn builder_rejects_bad_parameters_at_construction() {
        assert!(
            Query::builder(0, 3, Aggregation::Min).build().is_err(),
            "k = 0"
        );
        assert!(
            Query::builder(2, 0, Aggregation::Min).build().is_err(),
            "r = 0"
        );
        assert!(
            Query::builder(2, 3, Aggregation::Sum)
                .approx(f64::NAN)
                .build()
                .is_err(),
            "NaN epsilon"
        );
        assert!(
            Query::builder(2, 3, Aggregation::Sum)
                .approx(-0.1)
                .build()
                .is_err(),
            "negative epsilon"
        );
        assert!(
            Query::builder(2, 3, Aggregation::Sum)
                .approx(1.0)
                .build()
                .is_err(),
            "epsilon = 1"
        );
        assert!(
            Query::builder(2, 3, Aggregation::Min)
                .approx(0.2)
                .build()
                .is_err(),
            "epsilon on a node-domination query"
        );
        assert!(
            Query::builder(2, 3, Aggregation::SumSurplus { alpha: f64::NAN })
                .build()
                .is_err(),
            "NaN alpha"
        );
        assert!(
            Query::builder(2, 3, Aggregation::WeightDensity { beta: f64::NAN })
                .size_bound(6, true)
                .build()
                .is_err(),
            "NaN beta"
        );
        assert!(
            Query::builder(4, 3, Aggregation::Sum)
                .size_bound(4, true)
                .build()
                .is_err(),
            "s <= k"
        );
        assert!(
            Query::builder(2, 3, Aggregation::Average).build().is_err(),
            "NP-hard unconstrained"
        );
        assert!(
            Query::builder(2, 3, Aggregation::BalancedDensity)
                .build()
                .is_err(),
            "NP-hard unconstrained"
        );
    }

    #[test]
    fn solve_routes_to_the_same_answers_as_direct_calls() {
        let wg = figure1();
        assert_eq!(
            Query::new(2, 2, Aggregation::Min).solve(&wg).unwrap(),
            algo::min_topr(&wg, 2, 2).unwrap()
        );
        assert_eq!(
            Query::new(2, 4, Aggregation::Max).solve(&wg).unwrap(),
            algo::max_topr(&wg, 2, 4).unwrap()
        );
        assert_eq!(
            Query::new(2, 3, Aggregation::Sum).solve(&wg).unwrap(),
            algo::tic_improved(&wg, 2, 3, Aggregation::Sum, 0.0).unwrap()
        );
        assert_eq!(
            Query::new(2, 3, Aggregation::Sum)
                .approx(0.1)
                .solve(&wg)
                .unwrap(),
            algo::tic_improved(&wg, 2, 3, Aggregation::Sum, 0.1).unwrap()
        );
        let cfg = LocalSearchConfig {
            k: 2,
            r: 3,
            s: 5,
            greedy: true,
        };
        assert_eq!(
            Query::new(2, 3, Aggregation::Average)
                .size_bound(5, true)
                .solve(&wg)
                .unwrap(),
            algo::local_search(&wg, &cfg, Aggregation::Average).unwrap()
        );
    }

    #[test]
    fn solve_on_matches_solve() {
        let wg = figure1();
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        for q in [
            Query::new(2, 3, Aggregation::Min),
            Query::new(2, 3, Aggregation::Max),
            Query::new(2, 3, Aggregation::Sum),
            Query::new(2, 2, Aggregation::SumSurplus { alpha: 1.0 }).approx(0.2),
            Query::new(2, 2, Aggregation::Average).size_bound(5, false),
        ] {
            assert_eq!(
                q.solve_on(&snap, &mut arena).unwrap(),
                q.solve(&wg).unwrap(),
                "{q:?}"
            );
        }
    }

    #[test]
    fn invalid_queries_error_on_every_entry_point() {
        let wg = figure1();
        let q = Query::new(2, 0, Aggregation::Min);
        assert!(q.validate().is_err());
        assert!(q.solve(&wg).is_err());
        let snap = GraphSnapshot::new(wg.clone());
        let mut arena = PeelArena::for_graph(snap.graph());
        assert!(q.solve_on(&snap, &mut arena).is_err());
    }
}
