//! Aggregation functions (Table I of the paper) and incremental evaluation.
//!
//! An [`Aggregation`] maps a community `H` to its influence value `f(H)`.
//! The table below summarizes the paper's hardness results, which the
//! solver dispatch in [`crate::algo`] relies on:
//!
//! | Function | `f(H)` | Top-r unconstrained | Size-constrained |
//! |----------|--------|---------------------|------------------|
//! | `Min` | `min w(v)` | P (node domination) | NP-hard |
//! | `Max` | `max w(v)` | P (node domination) | NP-hard |
//! | `Sum` | `Σ w(v)` | P (size proportional) | NP-hard (Thm 4) |
//! | `SumSurplus` | `Σ w(v) + α·|H|` | P | NP-hard |
//! | `Average` | `Σ w(v) / |H|` | NP-hard (Thm 1), no const-factor approx (Thm 3) | NP-hard |
//! | `WeightDensity` | `Σ w(v) − β·|H|` | NP-hard | NP-hard |
//! | `BalancedDensity` | `w(H)/(w(H) − w(V∖H))` | NP-hard | NP-hard |

use std::collections::BTreeMap;

/// An aggregation function over community weights (Table I).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Aggregation {
    /// `min_{v∈H} w(v)` — the classic influential-community model
    /// (Li et al., Bi et al.).
    Min,
    /// `max_{v∈H} w(v)`.
    Max,
    /// `Σ_{v∈H} w(v)`.
    Sum,
    /// `Σ w(v) + α·|H|` (α ≥ 0 keeps it removal-decreasing).
    SumSurplus {
        /// Per-member bonus α.
        alpha: f64,
    },
    /// `Σ w(v) / |H|`.
    Average,
    /// `Σ w(v) − β·|H|` (β > 0 penalizes size).
    WeightDensity {
        /// Per-member penalty β.
        beta: f64,
    },
    /// `w(H) / (w(H) − w(V∖H))`, defined only when `H` carries more than
    /// half of the total weight; returns `−∞` otherwise so such
    /// communities rank last (see DESIGN.md §4).
    BalancedDensity,
}

/// Complexity class of a top-r search problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hardness {
    /// Solvable in polynomial time.
    Polynomial,
    /// NP-hard (Theorems 1, 3, 4 of the paper).
    NpHard,
}

impl Aggregation {
    /// Short lowercase name, matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregation::Min => "min",
            Aggregation::Max => "max",
            Aggregation::Sum => "sum",
            Aggregation::SumSurplus { .. } => "sum-surplus",
            Aggregation::Average => "avg",
            Aggregation::WeightDensity { .. } => "weight-density",
            Aggregation::BalancedDensity => "balanced-density",
        }
    }

    /// Node domination (Definition 6): the community value always equals
    /// some single member's weight.
    pub fn is_node_domination(&self) -> bool {
        matches!(self, Aggregation::Min | Aggregation::Max)
    }

    /// The aggregation's scalar parameter (α of `SumSurplus`, β of
    /// `WeightDensity`), if it has one.
    pub fn parameter(&self) -> Option<f64> {
        match self {
            Aggregation::SumSurplus { alpha } => Some(*alpha),
            Aggregation::WeightDensity { beta } => Some(*beta),
            _ => None,
        }
    }

    /// Stable hashable identity: the variant discriminant plus the
    /// canonicalized bit pattern of the parameter (see
    /// [`canonical_f64_bits`]). Queries whose aggregations compare equal
    /// — including `alpha: -0.0` vs `alpha: 0.0` — hash identically, so
    /// job dedup and the cross-batch result cache never split on signed
    /// zero or NaN payload differences. This is the one key every cache
    /// and planner in the workspace uses.
    pub fn cache_key(&self) -> (u8, u64) {
        match self {
            Aggregation::Min => (0, 0),
            Aggregation::Max => (1, 0),
            Aggregation::Sum => (2, 0),
            Aggregation::SumSurplus { alpha } => (3, canonical_f64_bits(*alpha)),
            Aggregation::Average => (4, 0),
            Aggregation::WeightDensity { beta } => (5, canonical_f64_bits(*beta)),
            Aggregation::BalancedDensity => (6, 0),
        }
    }

    /// Size proportionality (Definition 7): `H ⊂ H'` implies
    /// `f(H) ≤ f(H')` (for non-negative weights).
    pub fn is_size_proportional(&self) -> bool {
        match self {
            Aggregation::Sum => true,
            Aggregation::SumSurplus { alpha } => *alpha >= 0.0,
            _ => false,
        }
    }

    /// Corollary 2 prerequisite: removing any vertex strictly decreases
    /// the influence value (assuming positive weights). Algorithms 1 and 2
    /// are correct exactly for these aggregations.
    pub fn decreases_on_removal(&self) -> bool {
        self.is_size_proportional()
    }

    /// Hardness of the *size-unconstrained* top-r problem (Section III).
    pub fn hardness_unconstrained(&self) -> Hardness {
        match self {
            Aggregation::Min
            | Aggregation::Max
            | Aggregation::Sum
            | Aggregation::SumSurplus { .. } => Hardness::Polynomial,
            Aggregation::Average
            | Aggregation::WeightDensity { .. }
            | Aggregation::BalancedDensity => Hardness::NpHard,
        }
    }

    /// Hardness of the *size-constrained* top-r problem: NP-hard for every
    /// aggregation (k-clique reduction, Theorem 4).
    pub fn hardness_constrained(&self) -> Hardness {
        Hardness::NpHard
    }

    /// Evaluates `f(H)` from a slice of member weights.
    ///
    /// `total_weight` is `w(V)` of the *whole* graph; only
    /// `BalancedDensity` consults it. Returns `−∞` for an empty community.
    pub fn evaluate(&self, member_weights: &[f64], total_weight: f64) -> f64 {
        if member_weights.is_empty() {
            return f64::NEG_INFINITY;
        }
        let count = member_weights.len() as f64;
        let sum: f64 = member_weights.iter().sum();
        match self {
            Aggregation::Min => member_weights.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Max => member_weights
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Sum => sum,
            Aggregation::SumSurplus { alpha } => sum + alpha * count,
            Aggregation::Average => sum / count,
            Aggregation::WeightDensity { beta } => sum - beta * count,
            Aggregation::BalancedDensity => {
                let denom = 2.0 * sum - total_weight;
                if denom > 0.0 {
                    sum / denom
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
    }

    /// For removal-decreasing aggregations, the value of `H ∖ {v}` computed
    /// in O(1) from the value of `H` (used by Algorithm 2's pruning bound:
    /// the value of the parent minus the removed vertex upper-bounds every
    /// child created by the cascade).
    ///
    /// Panics for aggregations that do not satisfy Corollary 2.
    pub fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
        match self {
            Aggregation::Sum => parent_value - removed_weight,
            Aggregation::SumSurplus { alpha } => parent_value - removed_weight - alpha,
            _ => panic!(
                "value_after_removal is only defined for removal-decreasing aggregations, not {}",
                self.name()
            ),
        }
    }
}

/// Canonical bit pattern of an `f64` used in hash keys: `-0.0` folds
/// onto `+0.0` (they compare equal, so they must hash equal) and every
/// NaN payload folds onto one canonical quiet NaN (validation rejects
/// NaN parameters, but a key derived from one must still not split the
/// cache). All other values hash by their exact bits — distinct finite
/// values stay distinct.
pub fn canonical_f64_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else if x.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        x.to_bits()
    }
}

/// Total-order wrapper for finite `f64` weights (weights are validated
/// finite by `ic_graph::WeightedGraph`).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incrementally maintained aggregate over a community's weight multiset.
///
/// `add`/`remove` run in O(1) for the arithmetic aggregations and
/// O(log n) for `Min`/`Max` (which track a weight multiset). Used by the
/// local-search strategies, which grow and shrink a candidate community
/// one vertex at a time.
#[derive(Clone, Debug)]
pub struct AggregateState {
    aggregation: Aggregation,
    total_weight: f64,
    count: usize,
    sum: f64,
    /// Weight multiset; maintained only for `Min`/`Max`.
    multiset: BTreeMap<OrdF64, usize>,
}

impl AggregateState {
    /// Creates an empty state. `total_weight` is `w(V)` (used by
    /// `BalancedDensity` only; pass anything, e.g. 0.0, otherwise).
    pub fn new(aggregation: Aggregation, total_weight: f64) -> Self {
        AggregateState {
            aggregation,
            total_weight,
            count: 0,
            sum: 0.0,
            multiset: BTreeMap::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no member has been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds a member with weight `w`.
    pub fn add(&mut self, w: f64) {
        self.count += 1;
        self.sum += w;
        if self.aggregation.is_node_domination() {
            *self.multiset.entry(OrdF64(w)).or_insert(0) += 1;
        }
    }

    /// Removes a member with weight `w`. For `Min`/`Max` the weight must
    /// have been added before (panics otherwise — a logic error).
    pub fn remove(&mut self, w: f64) {
        debug_assert!(self.count > 0, "remove from empty aggregate");
        self.count -= 1;
        self.sum -= w;
        if self.aggregation.is_node_domination() {
            let entry = self
                .multiset
                .get_mut(&OrdF64(w))
                .unwrap_or_else(|| panic!("weight {w} was never added"));
            *entry -= 1;
            if *entry == 0 {
                self.multiset.remove(&OrdF64(w));
            }
        }
    }

    /// Clears all members.
    pub fn clear(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.multiset.clear();
    }

    /// Current `f(H)`; `−∞` when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NEG_INFINITY;
        }
        let count = self.count as f64;
        match self.aggregation {
            Aggregation::Min => self.multiset.keys().next().unwrap().0,
            Aggregation::Max => self.multiset.keys().next_back().unwrap().0,
            Aggregation::Sum => self.sum,
            Aggregation::SumSurplus { alpha } => self.sum + alpha * count,
            Aggregation::Average => self.sum / count,
            Aggregation::WeightDensity { beta } => self.sum - beta * count,
            Aggregation::BalancedDensity => {
                let denom = 2.0 * self.sum - self.total_weight;
                if denom > 0.0 {
                    self.sum / denom
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Aggregation; 7] = [
        Aggregation::Min,
        Aggregation::Max,
        Aggregation::Sum,
        Aggregation::SumSurplus { alpha: 0.5 },
        Aggregation::Average,
        Aggregation::WeightDensity { beta: 0.5 },
        Aggregation::BalancedDensity,
    ];

    #[test]
    fn table_one_values() {
        let w = [4.0, 1.0, 7.0];
        let total = 20.0;
        assert_eq!(Aggregation::Min.evaluate(&w, total), 1.0);
        assert_eq!(Aggregation::Max.evaluate(&w, total), 7.0);
        assert_eq!(Aggregation::Sum.evaluate(&w, total), 12.0);
        assert_eq!(
            Aggregation::SumSurplus { alpha: 2.0 }.evaluate(&w, total),
            18.0
        );
        assert_eq!(Aggregation::Average.evaluate(&w, total), 4.0);
        assert_eq!(
            Aggregation::WeightDensity { beta: 1.0 }.evaluate(&w, total),
            9.0
        );
        // Balanced density: 12 / (12 - 8) = 3.
        assert_eq!(Aggregation::BalancedDensity.evaluate(&w, total), 3.0);
    }

    #[test]
    fn balanced_density_undefined_when_minority() {
        let w = [1.0, 2.0];
        assert_eq!(
            Aggregation::BalancedDensity.evaluate(&w, 100.0),
            f64::NEG_INFINITY
        );
        // Exactly half is also undefined (denominator 0).
        assert_eq!(
            Aggregation::BalancedDensity.evaluate(&w, 6.0),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn empty_community_is_neg_infinity() {
        for agg in ALL {
            assert_eq!(agg.evaluate(&[], 10.0), f64::NEG_INFINITY, "{}", agg.name());
        }
    }

    #[test]
    fn classification_matches_paper_table() {
        use Hardness::*;
        assert!(Aggregation::Min.is_node_domination());
        assert!(Aggregation::Max.is_node_domination());
        assert!(!Aggregation::Sum.is_node_domination());

        assert!(Aggregation::Sum.is_size_proportional());
        assert!(Aggregation::SumSurplus { alpha: 1.0 }.is_size_proportional());
        assert!(!Aggregation::SumSurplus { alpha: -1.0 }.is_size_proportional());
        assert!(!Aggregation::Average.is_size_proportional());

        assert_eq!(Aggregation::Min.hardness_unconstrained(), Polynomial);
        assert_eq!(Aggregation::Sum.hardness_unconstrained(), Polynomial);
        assert_eq!(Aggregation::Average.hardness_unconstrained(), NpHard);
        assert_eq!(
            Aggregation::WeightDensity { beta: 1.0 }.hardness_unconstrained(),
            NpHard
        );
        assert_eq!(
            Aggregation::BalancedDensity.hardness_unconstrained(),
            NpHard
        );
        for agg in ALL {
            assert_eq!(agg.hardness_constrained(), NpHard);
        }
    }

    #[test]
    fn cache_key_normalizes_signed_zero_and_nan() {
        assert_eq!(
            Aggregation::SumSurplus { alpha: -0.0 }.cache_key(),
            Aggregation::SumSurplus { alpha: 0.0 }.cache_key(),
            "-0.0 and 0.0 compare equal and must hash equal"
        );
        assert_eq!(
            Aggregation::WeightDensity { beta: -0.0 }.cache_key(),
            Aggregation::WeightDensity { beta: 0.0 }.cache_key()
        );
        // Every NaN payload folds onto one canonical key.
        let a = f64::from_bits(0x7ff8_0000_0000_0001);
        let b = f64::from_bits(0xfff8_dead_beef_0000);
        assert_eq!(
            Aggregation::SumSurplus { alpha: a }.cache_key(),
            Aggregation::SumSurplus { alpha: b }.cache_key()
        );
        // Distinct finite parameters stay distinct; so do variants.
        assert_ne!(
            Aggregation::SumSurplus { alpha: 1.0 }.cache_key(),
            Aggregation::SumSurplus { alpha: 2.0 }.cache_key()
        );
        assert_ne!(
            Aggregation::SumSurplus { alpha: 1.0 }.cache_key(),
            Aggregation::WeightDensity { beta: 1.0 }.cache_key()
        );
    }

    #[test]
    fn parameter_accessor() {
        assert_eq!(
            Aggregation::SumSurplus { alpha: 2.5 }.parameter(),
            Some(2.5)
        );
        assert_eq!(
            Aggregation::WeightDensity { beta: 0.5 }.parameter(),
            Some(0.5)
        );
        assert_eq!(Aggregation::Sum.parameter(), None);
        assert_eq!(Aggregation::Min.parameter(), None);
    }

    #[test]
    fn value_after_removal_matches_reevaluation() {
        let w = [4.0, 1.0, 7.0];
        for agg in [Aggregation::Sum, Aggregation::SumSurplus { alpha: 0.5 }] {
            let parent = agg.evaluate(&w, 0.0);
            let child = agg.value_after_removal(parent, 1.0);
            let expect = agg.evaluate(&[4.0, 7.0], 0.0);
            assert!((child - expect).abs() < 1e-12, "{}", agg.name());
        }
    }

    #[test]
    #[should_panic(expected = "removal-decreasing")]
    fn value_after_removal_rejects_avg() {
        Aggregation::Average.value_after_removal(1.0, 1.0);
    }

    #[test]
    fn incremental_state_matches_slice_evaluation() {
        let weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let total = 40.0;
        for agg in ALL {
            let mut st = AggregateState::new(agg, total);
            let mut current: Vec<f64> = Vec::new();
            for &w in &weights {
                st.add(w);
                current.push(w);
                let expect = agg.evaluate(&current, total);
                let got = st.value();
                assert!(
                    (got - expect).abs() < 1e-9 || (got == expect),
                    "{} after add: {got} vs {expect}",
                    agg.name()
                );
            }
            // Remove in a scrambled order.
            for &w in &[1.0, 9.0, 3.0, 2.0] {
                st.remove(w);
                let pos = current.iter().position(|&x| x == w).unwrap();
                current.remove(pos);
                let expect = agg.evaluate(&current, total);
                let got = st.value();
                assert!(
                    (got - expect).abs() < 1e-9 || (got == expect),
                    "{} after remove: {got} vs {expect}",
                    agg.name()
                );
            }
        }
    }

    #[test]
    fn min_max_handle_duplicate_weights() {
        let mut st = AggregateState::new(Aggregation::Min, 0.0);
        st.add(2.0);
        st.add(2.0);
        st.add(5.0);
        st.remove(2.0);
        assert_eq!(st.value(), 2.0); // one copy of 2.0 remains
        st.remove(2.0);
        assert_eq!(st.value(), 5.0);
    }

    #[test]
    fn clear_resets() {
        let mut st = AggregateState::new(Aggregation::Max, 0.0);
        st.add(1.0);
        st.clear();
        assert!(st.is_empty());
        assert_eq!(st.value(), f64::NEG_INFINITY);
    }
}
