//! The open aggregation-function layer: the [`AggregateFn`] trait, its
//! machine-checkable property [`Certificates`], the built-in
//! implementations behind the [`Aggregation`] handle, and the registry
//! that lets aggregations defined *outside* this crate flow through the
//! whole serving stack.
//!
//! # The taxonomy is the API
//!
//! The paper's central idea (Table I) is not any single aggregation but
//! a *taxonomy*: each function's properties decide which algorithm can
//! answer top-r correctly and fast. Those properties are first-class
//! here — an implementor *declares* them as certificates and the solver
//! routing ([`crate::Query::solver`]), the peel fast path, TIC-IMPROVED
//! pruning, the local-search strategies, and the branch-and-bound
//! fallback all read the certificates instead of matching on an enum.
//! A wrongly declared certificate is caught by the sampled validation
//! harness in [`crate::certify`] (custom functions are certified at
//! registration; debug builds re-check monotonicity on every enumerated
//! subgraph).
//!
//! | Function | `f(H)` | Key certificates | Top-r unconstrained |
//! |----------|--------|------------------|---------------------|
//! | `Min` | `min w(v)` | node domination, peel-from-below | P |
//! | `Max` | `max w(v)` | node domination, peel-from-above | P |
//! | `Sum` | `Σ w(v)` | removal-decreasing, O(1) remove delta | P |
//! | `SumSurplus` | `Σ w(v) + α·|H|` | removal-decreasing (α ≥ 0) | P |
//! | `Average` | `Σ w(v) / |H|` | superset bound (B&B) | NP-hard (Thm 1, 3) |
//! | `WeightDensity` | `Σ w(v) − β·|H|` | — | NP-hard |
//! | `BalancedDensity` | `w(H)/(w(H) − w(V∖H))` | −∞ sentinel | NP-hard |
//! | `TopTSum` | `Σ of the t largest w(v)` | subset-monotone, order statistics | no strict-decrease certificate (see below) |
//! | `Percentile` | nearest-rank p-quantile of `w(v)` | node domination (no peel direction) | no monotone certificate |
//! | `GeometricMean` | `(Π w(v))^(1/|H|)` | order statistics | NP-hard (avg-like) |
//!
//! `TopTSum` is subset-monotone but **not** strictly removal-decreasing
//! (removing a vertex outside the top-t leaves the value unchanged), so
//! Corollary 2 does not apply and it is served through the
//! size-constrained local-search route like the other functions without
//! a polynomial certificate; see Zhang et al. (arXiv:2311.13162) for
//! the dedicated top-L machinery this crate does not implement.
//! `Percentile` shows that node domination alone (Definition 6) is not
//! enough for threshold peeling — it additionally needs a peel
//! direction, which only the extremes have, hence the separate
//! [`Certificates::peel_extremum`] certificate.
//!
//! # Defining your own aggregation
//!
//! Implement [`AggregateFn`], register it with [`Aggregation::custom`],
//! and the returned handle works everywhere an [`Aggregation`] does —
//! `QueryBuilder`, `Engine::run_batch`, `Engine::submit`, the
//! epoch-tagged result cache, and the workload generator. Registration
//! runs the certification harness, so a mis-declared certificate fails
//! loudly *before* it can corrupt a ranking. See
//! `examples/custom_aggregation.rs` and DESIGN.md §10.

use std::collections::BTreeMap;
use std::sync::{OnceLock, RwLock};

/// Complexity class of a top-r search problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hardness {
    /// Solvable in polynomial time.
    Polynomial,
    /// NP-hard (Theorems 1, 3, 4 of the paper) — or no polynomial
    /// certificate is declared, which the router treats the same way.
    NpHard,
}

/// Peel direction of a node-domination aggregation whose top-r problem
/// is answered by threshold peeling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Extremum {
    /// The community value is its minimum member weight: peel the global
    /// minimum from below (Li et al. VLDB'15).
    Min,
    /// The community value is its maximum member weight: peel from above.
    Max,
}

/// Tie semantics of an aggregation's values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieSemantics {
    /// Equal `f64` values are genuine ties: solvers may serve a smaller
    /// `r` as a prefix of a larger-`r` run whenever the boundary values
    /// prove the top set unique (the engine's exact r-family merge).
    Exact,
    /// Values are scores without exact-tie meaning (e.g. sampled or
    /// externally derived): the engine must not merge r-families for
    /// this aggregation, because a tie proof over `f64` equality proves
    /// nothing. Each query runs on its own.
    Approximate,
}

/// Machine-checkable property certificates of an [`AggregateFn`].
///
/// Every field is a *claim* the implementation makes about itself; the
/// solver routing trusts the claims and the harness in
/// [`crate::certify`] checks them on sampled inputs. Start from
/// [`Certificates::opaque`] and declare only what holds — an opaque
/// aggregation is still servable through the size-constrained
/// local-search route.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Certificates {
    /// Corollary 2: removing any vertex from a community **strictly**
    /// decreases `f` (for positive weights). Grants the polynomial
    /// `SUM-NAÏVE`/`TIC-IMPROVED` route for unconstrained top-r.
    pub removal_decreasing: bool,
    /// Definition 7: `H ⊆ H'` implies `f(H) ≤ f(H')` for non-negative
    /// weights (subset monotone).
    pub size_proportional: bool,
    /// Definition 6: `f(H)` always equals some single member's weight.
    pub node_domination: bool,
    /// The value is the community's extreme member weight, so top-r is
    /// answered exactly by threshold peeling in the given direction.
    /// Stronger than [`node_domination`](Self::node_domination) — a
    /// percentile is node-dominated but has no peel direction.
    pub peel_extremum: Option<Extremum>,
    /// [`AggregateFn::value_after_removal`] computes the exact value of
    /// `H ∖ {v}` in O(1) from `f(H)` and `w(v)`. Grants TIC-IMPROVED's
    /// line-13 pruning and selects the drop-from-full-pool local-search
    /// strategy; without it, TIC (if routed) runs unpruned and local
    /// search uses the prefix strategy.
    pub incremental_removal: bool,
    /// [`AggregateFn::superset_bound`] yields a sound upper bound on
    /// `f` over any superset completion. Grants the exact
    /// branch-and-bound fallback ([`crate::algo::bb_topr`]).
    pub superset_bound: bool,
    /// Hardness of the size-*unconstrained* top-r problem.
    pub hardness_unconstrained: Hardness,
    /// The incremental [`AggregateState`] must maintain the weight
    /// multiset (order statistics) for
    /// [`AggregateFn::evaluate_state`]. Costs O(log n) per add/remove
    /// instead of O(1).
    pub needs_multiset: bool,
    /// `f` may evaluate to `−∞` on a *non-empty* community (the
    /// undefined-value sentinel, e.g. `BalancedDensity` below half the
    /// total weight). Such communities rank last under `total_cmp`; see
    /// DESIGN.md §4 and the `TopList` ordering notes.
    pub may_be_neg_infinite: bool,
    /// How equal values tie-break across queries; see [`TieSemantics`].
    pub ties: TieSemantics,
}

impl Certificates {
    /// The weakest truthful declaration: no structure claimed, NP-hard,
    /// exact ties. Routes only through size-constrained local search.
    ///
    /// One caveat: `needs_multiset` is `false` here, which is only
    /// truthful when [`AggregateFn::evaluate_state`] is overridden —
    /// its *default* body reads the weight multiset, so a minimal
    /// implementation must either override `evaluate_state` (an O(1)
    /// body over `(count, sum)` where possible) or flip
    /// `needs_multiset` to `true`.
    pub const fn opaque() -> Certificates {
        Certificates {
            removal_decreasing: false,
            size_proportional: false,
            node_domination: false,
            peel_extremum: None,
            incremental_removal: false,
            superset_bound: false,
            hardness_unconstrained: Hardness::NpHard,
            needs_multiset: false,
            may_be_neg_infinite: false,
            ties: TieSemantics::Exact,
        }
    }
}

/// An aggregation function over community weights.
///
/// Implementations must be **pure and deterministic**: `evaluate` on
/// the same slice must return the same bits every time — the engine's
/// result cache, r-family merging, and the conformance suite all rely
/// on it. The certificates are checked by [`crate::certify`]; a custom
/// implementation that declares a property it does not have is rejected
/// at [`Aggregation::custom`] registration.
pub trait AggregateFn: Send + Sync + std::fmt::Debug {
    /// Short lowercase name (used in errors and reports).
    fn name(&self) -> &str;

    /// The property certificates; see [`Certificates`].
    fn certificates(&self) -> Certificates;

    /// Evaluates `f(H)` from a non-empty slice of member weights.
    /// `total_weight` is `w(V)` of the whole graph (consulted only by
    /// functions like `BalancedDensity`).
    fn evaluate(&self, member_weights: &[f64], total_weight: f64) -> f64;

    /// Canonicalized parameter bits folded into the cache key. Equal
    /// parameters (including `-0.0` vs `0.0`) must produce equal keys —
    /// run `f64` parameters through [`canonical_f64_bits`].
    fn param_key(&self) -> u64 {
        0
    }

    /// Validates the function's own parameters (NaN, out-of-range);
    /// called when a [`crate::Query`] is routed or built.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// For implementations declaring
    /// [`Certificates::incremental_removal`]: the exact value of
    /// `H ∖ {v}` computed in O(1) from `f(H)` and `w(v)`.
    fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
        let _ = (parent_value, removed_weight);
        panic!(
            "value_after_removal is only defined for aggregations declaring the \
             removal-decreasing incremental certificate, not {}",
            self.name()
        )
    }

    /// Evaluates `f` from incrementally maintained state (running count
    /// and sum, plus the weight multiset when
    /// [`Certificates::needs_multiset`] is declared).
    ///
    /// The default materializes the multiset (ascending) and calls
    /// [`evaluate`](Self::evaluate) — correct for any multiset-backed
    /// function, O(n) per call, but it **requires the
    /// [`needs_multiset`](Certificates::needs_multiset) certificate**:
    /// an implementation that keeps the default must declare it (the
    /// certification harness rejects the combination otherwise, because
    /// the production [`AggregateState`] would not maintain the
    /// multiset this default reads). Functions computable from the
    /// running `(count, sum)` alone should override with an O(1) body
    /// instead and skip the multiset cost entirely.
    fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
        let mut weights = Vec::with_capacity(state.len());
        for (w, count) in state.weights_asc() {
            for _ in 0..count {
                weights.push(w);
            }
        }
        self.evaluate(&weights, state.total_weight())
    }

    /// For implementations declaring [`Certificates::superset_bound`]:
    /// a sound upper bound on `f` over any community obtainable from a
    /// partial one (`count` members summing to `sum`) by adding at most
    /// `budget` vertices drawn from `pool_desc` (eligible weights in
    /// descending order). Used by the branch-and-bound fallback; degree
    /// and connectivity constraints only shrink the reachable family,
    /// so ignoring them keeps the bound sound.
    fn superset_bound(
        &self,
        sum: f64,
        count: usize,
        budget: usize,
        pool_desc: &mut dyn Iterator<Item = f64>,
        total_weight: f64,
    ) -> f64 {
        let _ = (sum, count, budget, pool_desc, total_weight);
        panic!(
            "superset_bound requires the superset_bound certificate, not declared by {}",
            self.name()
        )
    }
}

/// Built-in [`AggregateFn`] implementations. The [`Aggregation`] enum
/// variants are thin `Copy` handles onto these structs — one source of
/// truth per function.
pub mod builtin {
    use super::{canonical_f64_bits, AggregateFn, Certificates, Extremum, Hardness, StateView};

    /// `min_{v∈H} w(v)` — the classic influential-community model.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Min;

    impl AggregateFn for Min {
        fn name(&self) -> &str {
            "min"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                node_domination: true,
                peel_extremum: Some(Extremum::Min),
                hardness_unconstrained: Hardness::Polynomial,
                needs_multiset: true,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            member_weights.iter().copied().fold(f64::INFINITY, f64::min)
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.min_weight().expect("non-empty state")
        }
    }

    /// `max_{v∈H} w(v)`.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Max;

    impl AggregateFn for Max {
        fn name(&self) -> &str {
            "max"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                node_domination: true,
                peel_extremum: Some(Extremum::Max),
                hardness_unconstrained: Hardness::Polynomial,
                needs_multiset: true,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            member_weights
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.max_weight().expect("non-empty state")
        }
    }

    /// `Σ_{v∈H} w(v)`.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Sum;

    impl AggregateFn for Sum {
        fn name(&self) -> &str {
            "sum"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                removal_decreasing: true,
                size_proportional: true,
                incremental_removal: true,
                superset_bound: true,
                hardness_unconstrained: Hardness::Polynomial,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            member_weights.iter().sum()
        }
        fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
            parent_value - removed_weight
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.sum()
        }
        fn superset_bound(
            &self,
            sum: f64,
            _count: usize,
            budget: usize,
            pool_desc: &mut dyn Iterator<Item = f64>,
            _total_weight: f64,
        ) -> f64 {
            // Weights are non-negative: absorbing the heaviest `budget`
            // candidates upper-bounds every completion.
            let mut s = sum;
            for w in pool_desc.take(budget) {
                if w <= 0.0 {
                    break;
                }
                s += w;
            }
            s
        }
    }

    /// `Σ w(v) + α·|H|` (α ≥ 0 keeps it removal-decreasing).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct SumSurplus {
        /// Per-member bonus α.
        pub alpha: f64,
    }

    impl AggregateFn for SumSurplus {
        fn name(&self) -> &str {
            "sum-surplus"
        }
        fn certificates(&self) -> Certificates {
            let monotone = self.alpha >= 0.0;
            Certificates {
                removal_decreasing: monotone,
                size_proportional: monotone,
                // The O(1) remove delta is exact for any α — only the
                // *monotonicity* certificate depends on the sign.
                incremental_removal: true,
                superset_bound: monotone,
                hardness_unconstrained: if monotone {
                    Hardness::Polynomial
                } else {
                    Hardness::NpHard
                },
                ..Certificates::opaque()
            }
        }
        fn param_key(&self) -> u64 {
            canonical_f64_bits(self.alpha)
        }
        fn validate(&self) -> Result<(), String> {
            if self.alpha.is_nan() {
                return Err("sum-surplus has a NaN parameter".into());
            }
            Ok(())
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            let sum: f64 = member_weights.iter().sum();
            sum + self.alpha * member_weights.len() as f64
        }
        fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
            parent_value - removed_weight - self.alpha
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.sum() + self.alpha * state.len() as f64
        }
        fn superset_bound(
            &self,
            sum: f64,
            count: usize,
            budget: usize,
            pool_desc: &mut dyn Iterator<Item = f64>,
            _total_weight: f64,
        ) -> f64 {
            let mut s = sum + self.alpha * count as f64;
            for w in pool_desc.take(budget) {
                if w + self.alpha <= 0.0 {
                    break;
                }
                s += w + self.alpha;
            }
            s
        }
    }

    /// `Σ w(v) / |H|`.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Average;

    impl AggregateFn for Average {
        fn name(&self) -> &str {
            "avg"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                superset_bound: true,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            let sum: f64 = member_weights.iter().sum();
            sum / member_weights.len() as f64
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.sum() / state.len() as f64
        }
        fn superset_bound(
            &self,
            sum: f64,
            count: usize,
            budget: usize,
            pool_desc: &mut dyn Iterator<Item = f64>,
            _total_weight: f64,
        ) -> f64 {
            // Greedily absorb the heaviest candidates while they raise
            // the running average (anything lighter only lowers it).
            let mut sum = sum;
            let mut count = count as f64;
            let mut avg = sum / count;
            for w in pool_desc.take(budget) {
                if w <= avg {
                    break;
                }
                sum += w;
                count += 1.0;
                avg = sum / count;
            }
            avg
        }
    }

    /// `Σ w(v) − β·|H|` (β > 0 penalizes size).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct WeightDensity {
        /// Per-member penalty β.
        pub beta: f64,
    }

    impl AggregateFn for WeightDensity {
        fn name(&self) -> &str {
            "weight-density"
        }
        fn certificates(&self) -> Certificates {
            Certificates::opaque()
        }
        fn param_key(&self) -> u64 {
            canonical_f64_bits(self.beta)
        }
        fn validate(&self) -> Result<(), String> {
            if self.beta.is_nan() {
                return Err("weight-density has a NaN parameter".into());
            }
            Ok(())
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            let sum: f64 = member_weights.iter().sum();
            sum - self.beta * member_weights.len() as f64
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.sum() - self.beta * state.len() as f64
        }
    }

    /// `w(H) / (w(H) − w(V∖H))`, defined only when `H` carries more
    /// than half of the total weight; returns `−∞` otherwise so such
    /// communities rank last (see DESIGN.md §4).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct BalancedDensity;

    impl AggregateFn for BalancedDensity {
        fn name(&self) -> &str {
            "balanced-density"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                may_be_neg_infinite: true,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, member_weights: &[f64], total_weight: f64) -> f64 {
            let sum: f64 = member_weights.iter().sum();
            let denom = 2.0 * sum - total_weight;
            if denom > 0.0 {
                sum / denom
            } else {
                f64::NEG_INFINITY
            }
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            let denom = 2.0 * state.sum() - state.total_weight();
            if denom > 0.0 {
                state.sum() / denom
            } else {
                f64::NEG_INFINITY
            }
        }
    }

    /// `Σ of the t largest member weights` — the top-L influence model
    /// (Zhang et al., arXiv:2311.13162). Subset-monotone but **not**
    /// strictly removal-decreasing: removing a vertex outside the top-t
    /// leaves the value unchanged, so Corollary 2 does not apply and
    /// the unconstrained problem is served through local search.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct TopTSum {
        /// How many of the largest weights are summed (t ≥ 1).
        pub t: usize,
    }

    impl AggregateFn for TopTSum {
        fn name(&self) -> &str {
            "top-t-sum"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                size_proportional: true,
                needs_multiset: true,
                ..Certificates::opaque()
            }
        }
        fn param_key(&self) -> u64 {
            self.t as u64
        }
        fn validate(&self) -> Result<(), String> {
            if self.t == 0 {
                return Err("top-t-sum needs t >= 1".into());
            }
            Ok(())
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            let mut sorted = member_weights.to_vec();
            sorted.sort_by(|a, b| b.total_cmp(a));
            let mut s = 0.0;
            for &w in sorted.iter().take(self.t) {
                s += w;
            }
            s
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            // Identical addition sequence to `evaluate`: weights in
            // descending order, duplicates consecutively.
            let mut s = 0.0;
            let mut left = self.t;
            for (w, count) in state.weights_desc() {
                for _ in 0..count.min(left) {
                    s += w;
                }
                left = left.saturating_sub(count);
                if left == 0 {
                    break;
                }
            }
            s
        }
    }

    /// Nearest-rank p-quantile of the member weights (`p ∈ [0, 1]`;
    /// `p = 0` is `min`, `p = 1` is `max`). Node-dominated (the value
    /// is always some member's weight) yet **not** peelable: a
    /// percentile has no monotone peel direction, which is exactly why
    /// [`Certificates::peel_extremum`] is a separate, stronger
    /// certificate than [`Certificates::node_domination`].
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Percentile {
        /// Quantile in `[0, 1]`.
        pub p: f64,
    }

    impl Percentile {
        /// Nearest-rank index into an ascending order of `n` weights.
        pub(crate) fn index(&self, n: usize) -> usize {
            let idx = (self.p * n as f64).ceil() as usize;
            idx.saturating_sub(1).min(n - 1)
        }
    }

    impl AggregateFn for Percentile {
        fn name(&self) -> &str {
            "percentile"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                node_domination: true,
                needs_multiset: true,
                ..Certificates::opaque()
            }
        }
        fn param_key(&self) -> u64 {
            canonical_f64_bits(self.p)
        }
        fn validate(&self) -> Result<(), String> {
            if !(0.0..=1.0).contains(&self.p) {
                return Err(format!("percentile p must be in [0, 1], got {}", self.p));
            }
            Ok(())
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            let mut sorted = member_weights.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            sorted[self.index(sorted.len())]
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            let mut idx = self.index(state.len());
            for (w, count) in state.weights_asc() {
                if idx < count {
                    return w;
                }
                idx -= count;
            }
            unreachable!("index within multiset cardinality")
        }
    }

    /// Geometric mean of the member weights, `(Π w(v))^(1/|H|)` —
    /// computed as `exp(mean of ln w)` for numeric stability. Rewards
    /// uniformly influential groups (a single near-zero member drags
    /// the value toward zero, unlike `avg`). NP-hard unconstrained for
    /// the same reason as `avg` (it is `avg` in log space).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct GeometricMean;

    impl GeometricMean {
        fn fold(weights: impl Iterator<Item = f64>, count: usize) -> f64 {
            let mut log_sum = 0.0;
            for w in weights {
                if w == 0.0 {
                    return 0.0; // a zero factor zeroes the product
                }
                log_sum += w.ln();
            }
            (log_sum / count as f64).exp()
        }
    }

    impl AggregateFn for GeometricMean {
        fn name(&self) -> &str {
            "geo-mean"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                needs_multiset: true,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
            Self::fold(member_weights.iter().copied(), member_weights.len())
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            let weights = state
                .weights_asc()
                .flat_map(|(w, count)| std::iter::repeat_n(w, count));
            Self::fold(weights, state.len())
        }
    }
}

/// An aggregation function handle: `Copy`, hashable (via
/// [`cache_key`](Aggregation::cache_key)), and routable. The built-in
/// variants are handles onto the structs in [`builtin`];
/// [`Aggregation::Custom`] carries a registry id for a user-defined
/// [`AggregateFn`] registered with [`Aggregation::custom`].
///
/// `#[non_exhaustive]`: match with a wildcard arm outside `ic-core` —
/// or better, don't match at all and read
/// [`certificates`](Aggregation::certificates) instead; that is the
/// whole point of the certificate layer.
///
/// Unlike [`Community`](crate::Community), this type carries no serde
/// derives even under the (stub) `serde` feature: the `Custom` variant
/// holds a process-local `&'static` implementation reference that is
/// deliberately not serializable — a registration id means nothing in
/// another process. Wire formats should transmit the built-in variant
/// name + parameters, or a custom function's own identity.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Aggregation {
    /// `min_{v∈H} w(v)` — the classic influential-community model
    /// (Li et al., Bi et al.).
    Min,
    /// `max_{v∈H} w(v)`.
    Max,
    /// `Σ_{v∈H} w(v)`.
    Sum,
    /// `Σ w(v) + α·|H|` (α ≥ 0 keeps it removal-decreasing).
    SumSurplus {
        /// Per-member bonus α.
        alpha: f64,
    },
    /// `Σ w(v) / |H|`.
    Average,
    /// `Σ w(v) − β·|H|` (β > 0 penalizes size).
    WeightDensity {
        /// Per-member penalty β.
        beta: f64,
    },
    /// `w(H) / (w(H) − w(V∖H))`; `−∞` when `H` carries at most half the
    /// total weight (see DESIGN.md §4).
    BalancedDensity,
    /// Sum of the `t` largest member weights ([`builtin::TopTSum`]).
    TopTSum {
        /// How many of the largest weights are summed (t ≥ 1).
        t: usize,
    },
    /// Nearest-rank p-quantile of the member weights
    /// ([`builtin::Percentile`]).
    Percentile {
        /// Quantile in `[0, 1]`.
        p: f64,
    },
    /// Geometric mean of the member weights ([`builtin::GeometricMean`]).
    GeometricMean,
    /// A user-defined [`AggregateFn`] registered with
    /// [`Aggregation::custom`].
    Custom(CustomAggregation),
}

/// Handle onto a registered user-defined [`AggregateFn`]. Obtained from
/// [`Aggregation::custom`]; two handles compare equal iff they came
/// from the same registration.
///
/// The handle is **process-local**: it carries the registration id (the
/// cache identity) and a direct `&'static` reference to the leaked
/// implementation, so dispatch is a plain field read — no registry lock
/// on any solver hot path — and the handle is deliberately *not*
/// serializable (a registration id means nothing in another process).
#[derive(Clone, Copy, Debug)]
pub struct CustomAggregation {
    id: u32,
    f: &'static dyn AggregateFn,
    /// Leaked once per registration so [`Aggregation::name`] can keep
    /// its `&'static str` return type.
    name: &'static str,
}

impl PartialEq for CustomAggregation {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for CustomAggregation {}
impl std::hash::Hash for CustomAggregation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

fn registry() -> &'static RwLock<Vec<CustomAggregation>> {
    static REGISTRY: OnceLock<RwLock<Vec<CustomAggregation>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

impl CustomAggregation {
    /// The registry id (stable within the process, assigned in
    /// registration order).
    pub fn id(self) -> u32 {
        self.id
    }
}

impl Aggregation {
    /// Registers a user-defined aggregation function and returns a
    /// handle that works everywhere an [`Aggregation`] does (query
    /// building, engine batches, progressive streams, the result
    /// cache, workload generation).
    ///
    /// Registration validates the function's parameters and runs the
    /// sampled certification harness ([`crate::certify`]): a declared
    /// certificate the implementation does not actually satisfy is
    /// rejected here, before it can silently corrupt a ranking.
    ///
    /// The function is stored for the lifetime of the process (one
    /// small leak per registration — registries are expected to be
    /// populated once at startup). Registering the same logical
    /// function twice yields two distinct handles with distinct cache
    /// identities; keep and reuse the returned handle.
    pub fn custom<F: AggregateFn + 'static>(f: F) -> Result<Aggregation, crate::SearchError> {
        f.validate()
            .map_err(|m| crate::SearchError::InvalidParams(format!("{}: {m}", f.name())))?;
        crate::certify::certify_fn(&f).map_err(|v| {
            crate::SearchError::InvalidParams(format!(
                "certification failed for custom aggregation {}: {v}",
                f.name()
            ))
        })?;
        let name: &'static str = Box::leak(f.name().to_owned().into_boxed_str());
        let leaked: &'static dyn AggregateFn = Box::leak(Box::new(f));
        let mut reg = registry().write().expect("aggregation registry poisoned");
        let id = u32::try_from(reg.len()).expect("aggregation registry overflow");
        let handle = CustomAggregation {
            id,
            f: leaked,
            name,
        };
        reg.push(handle);
        Ok(Aggregation::Custom(handle))
    }

    /// Handles of every custom aggregation registered so far (built-ins
    /// are enumerated separately; see [`Aggregation::builtins`]). Used
    /// by the CI certification sweep.
    pub fn registered_customs() -> Vec<Aggregation> {
        let reg = registry().read().expect("aggregation registry poisoned");
        reg.iter().copied().map(Aggregation::Custom).collect()
    }

    /// One representative handle per built-in variant (parameterized
    /// variants use their documented default-ish parameters). The
    /// certification harness and the conformance suite sweep these.
    pub fn builtins() -> Vec<Aggregation> {
        vec![
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Sum,
            Aggregation::SumSurplus { alpha: 0.5 },
            Aggregation::Average,
            Aggregation::WeightDensity { beta: 0.5 },
            Aggregation::BalancedDensity,
            Aggregation::TopTSum { t: 3 },
            Aggregation::Percentile { p: 0.5 },
            Aggregation::GeometricMean,
        ]
    }

    /// Dispatches to the underlying [`AggregateFn`] implementation.
    /// Built-in variants construct their (zero-cost) [`builtin`] struct
    /// on the stack; custom handles carry a direct `&'static` reference
    /// to their registered implementation, so neither side takes a lock.
    pub fn with_fn<R>(&self, f: impl FnOnce(&dyn AggregateFn) -> R) -> R {
        match *self {
            Aggregation::Min => f(&builtin::Min),
            Aggregation::Max => f(&builtin::Max),
            Aggregation::Sum => f(&builtin::Sum),
            Aggregation::SumSurplus { alpha } => f(&builtin::SumSurplus { alpha }),
            Aggregation::Average => f(&builtin::Average),
            Aggregation::WeightDensity { beta } => f(&builtin::WeightDensity { beta }),
            Aggregation::BalancedDensity => f(&builtin::BalancedDensity),
            Aggregation::TopTSum { t } => f(&builtin::TopTSum { t }),
            Aggregation::Percentile { p } => f(&builtin::Percentile { p }),
            Aggregation::GeometricMean => f(&builtin::GeometricMean),
            Aggregation::Custom(c) => f(c.f),
        }
    }

    /// Short lowercase name, matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match *self {
            Aggregation::Min => "min",
            Aggregation::Max => "max",
            Aggregation::Sum => "sum",
            Aggregation::SumSurplus { .. } => "sum-surplus",
            Aggregation::Average => "avg",
            Aggregation::WeightDensity { .. } => "weight-density",
            Aggregation::BalancedDensity => "balanced-density",
            Aggregation::TopTSum { .. } => "top-t-sum",
            Aggregation::Percentile { .. } => "percentile",
            Aggregation::GeometricMean => "geo-mean",
            Aggregation::Custom(c) => c.name,
        }
    }

    /// The declared property certificates; see [`Certificates`]. This
    /// is what every routing decision reads — nothing in the workspace
    /// matches on the enum variants for dispatch anymore.
    pub fn certificates(&self) -> Certificates {
        self.with_fn(|f| f.certificates())
    }

    /// Validates the aggregation's own parameters (NaN, out-of-range).
    pub fn validate_params(&self) -> Result<(), String> {
        self.with_fn(|f| f.validate())
    }

    /// Node domination (Definition 6): the community value always equals
    /// some single member's weight.
    pub fn is_node_domination(&self) -> bool {
        self.certificates().node_domination
    }

    /// The aggregation's scalar parameter (α of `SumSurplus`, β of
    /// `WeightDensity`, p of `Percentile`), if it has one.
    pub fn parameter(&self) -> Option<f64> {
        match *self {
            Aggregation::SumSurplus { alpha } => Some(alpha),
            Aggregation::WeightDensity { beta } => Some(beta),
            Aggregation::Percentile { p } => Some(p),
            _ => None,
        }
    }

    /// Stable hashable identity: a variant discriminant plus the
    /// implementation's canonicalized parameter bits
    /// ([`AggregateFn::param_key`], which runs `f64` parameters through
    /// [`canonical_f64_bits`]). Aggregations that compare equal —
    /// including `alpha: -0.0` vs `alpha: 0.0` — hash identically, so
    /// job dedup and the cross-batch result cache never split on signed
    /// zero or NaN payload differences. Custom handles key on their
    /// registration id instead (distinct registrations are distinct
    /// cache entities by design; two different functions may well share
    /// a `param_key`). This is the one key every cache and planner in
    /// the workspace uses.
    pub fn cache_key(&self) -> (u8, u64) {
        let kind = match *self {
            Aggregation::Min => 0,
            Aggregation::Max => 1,
            Aggregation::Sum => 2,
            Aggregation::SumSurplus { .. } => 3,
            Aggregation::Average => 4,
            Aggregation::WeightDensity { .. } => 5,
            Aggregation::BalancedDensity => 6,
            Aggregation::TopTSum { .. } => 7,
            Aggregation::Percentile { .. } => 8,
            Aggregation::GeometricMean => 9,
            Aggregation::Custom(c) => return (u8::MAX, c.id as u64),
        };
        (kind, self.with_fn(|f| f.param_key()))
    }

    /// Size proportionality (Definition 7): `H ⊆ H'` implies
    /// `f(H) ≤ f(H')` (for non-negative weights).
    pub fn is_size_proportional(&self) -> bool {
        self.certificates().size_proportional
    }

    /// Corollary 2 prerequisite: removing any vertex strictly decreases
    /// the influence value (assuming positive weights). Algorithms 1 and 2
    /// are correct exactly for these aggregations.
    pub fn decreases_on_removal(&self) -> bool {
        self.certificates().removal_decreasing
    }

    /// Hardness of the *size-unconstrained* top-r problem (Section III).
    pub fn hardness_unconstrained(&self) -> Hardness {
        self.certificates().hardness_unconstrained
    }

    /// Hardness of the *size-constrained* top-r problem: NP-hard for every
    /// aggregation (k-clique reduction, Theorem 4).
    pub fn hardness_constrained(&self) -> Hardness {
        Hardness::NpHard
    }

    /// Evaluates `f(H)` from a slice of member weights.
    ///
    /// `total_weight` is `w(V)` of the *whole* graph; only functions
    /// like `BalancedDensity` consult it. Returns `−∞` for an empty
    /// community.
    pub fn evaluate(&self, member_weights: &[f64], total_weight: f64) -> f64 {
        if member_weights.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.with_fn(|f| f.evaluate(member_weights, total_weight))
    }

    /// For aggregations declaring the
    /// [`incremental_removal`](Certificates::incremental_removal)
    /// certificate, the value of `H ∖ {v}` computed in O(1) from the
    /// value of `H` (used by Algorithm 2's pruning bound: the value of
    /// the parent minus the removed vertex upper-bounds every child
    /// created by the cascade).
    ///
    /// Panics for aggregations without the certificate.
    pub fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
        self.with_fn(|f| f.value_after_removal(parent_value, removed_weight))
    }
}

/// Canonical bit pattern of an `f64` used in hash keys: `-0.0` folds
/// onto `+0.0` (they compare equal, so they must hash equal) and every
/// NaN payload folds onto one canonical quiet NaN (validation rejects
/// NaN parameters, but a key derived from one must still not split the
/// cache). All other values hash by their exact bits — distinct finite
/// values stay distinct, and the infinities (including the `−∞`
/// undefined-value sentinel) keep their unique IEEE-754 patterns.
pub fn canonical_f64_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else if x.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        x.to_bits()
    }
}

/// Total-order wrapper for finite `f64` weights (weights are validated
/// finite by `ic_graph::WeightedGraph`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Read-only view over incrementally maintained aggregate state, passed
/// to [`AggregateFn::evaluate_state`]. The multiset accessors panic for
/// aggregations that did not declare
/// [`Certificates::needs_multiset`] — a mis-declared certificate fails
/// loudly instead of silently evaluating garbage.
pub struct StateView<'a> {
    count: usize,
    sum: f64,
    total_weight: f64,
    multiset: Option<&'a BTreeMap<OrdF64, usize>>,
    /// Set by the certification harness: flags any multiset access so
    /// an undeclared `needs_multiset` is detected without panicking
    /// (works under `panic = "abort"` too).
    multiset_probe: Option<&'a std::cell::Cell<bool>>,
}

impl<'a> StateView<'a> {
    pub(crate) fn new(
        count: usize,
        sum: f64,
        total_weight: f64,
        multiset: Option<&'a BTreeMap<OrdF64, usize>>,
    ) -> Self {
        StateView {
            count,
            sum,
            total_weight,
            multiset,
            multiset_probe: None,
        }
    }

    /// Harness constructor: the multiset is always present and every
    /// access flips `probe`, so [`crate::certify`] can falsify an
    /// undeclared [`Certificates::needs_multiset`] without relying on
    /// unwinding.
    pub(crate) fn probing(
        count: usize,
        sum: f64,
        total_weight: f64,
        multiset: &'a BTreeMap<OrdF64, usize>,
        probe: &'a std::cell::Cell<bool>,
    ) -> Self {
        StateView {
            count,
            sum,
            total_weight,
            multiset: Some(multiset),
            multiset_probe: Some(probe),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no member is present (never observed by
    /// [`AggregateFn::evaluate_state`]; the empty value is pinned to
    /// `−∞` one layer up).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Running sum of the member weights.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `w(V)` of the whole graph.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn multiset(&self) -> &'a BTreeMap<OrdF64, usize> {
        if let Some(probe) = self.multiset_probe {
            probe.set(true);
        }
        self.multiset.unwrap_or_else(|| {
            panic!(
                "aggregate state holds no weight multiset — the aggregation must declare \
                 Certificates::needs_multiset to use order statistics"
            )
        })
    }

    /// Smallest member weight (requires the multiset certificate).
    pub fn min_weight(&self) -> Option<f64> {
        self.multiset().keys().next().map(|w| w.0)
    }

    /// Largest member weight (requires the multiset certificate).
    pub fn max_weight(&self) -> Option<f64> {
        self.multiset().keys().next_back().map(|w| w.0)
    }

    /// `(weight, multiplicity)` pairs in ascending weight order
    /// (requires the multiset certificate).
    pub fn weights_asc(&self) -> impl Iterator<Item = (f64, usize)> + 'a {
        self.multiset().iter().map(|(w, &c)| (w.0, c))
    }

    /// `(weight, multiplicity)` pairs in descending weight order
    /// (requires the multiset certificate).
    pub fn weights_desc(&self) -> impl Iterator<Item = (f64, usize)> + 'a {
        self.multiset().iter().rev().map(|(w, &c)| (w.0, c))
    }
}

/// Incrementally maintained aggregate over a community's weight multiset.
///
/// `add`/`remove` run in O(1) for the arithmetic aggregations and
/// O(log n) for those declaring [`Certificates::needs_multiset`]
/// (`min`/`max`, the order-statistics functions, and any custom
/// implementation that asks for it). Used by the local-search
/// strategies, which grow and shrink a candidate community one vertex
/// at a time; [`value`](AggregateState::value) dispatches to
/// [`AggregateFn::evaluate_state`].
#[derive(Clone, Debug)]
pub struct AggregateState {
    aggregation: Aggregation,
    needs_multiset: bool,
    total_weight: f64,
    count: usize,
    sum: f64,
    /// Weight multiset; maintained only under the multiset certificate.
    multiset: BTreeMap<OrdF64, usize>,
}

impl AggregateState {
    /// Creates an empty state. `total_weight` is `w(V)` (used by
    /// `BalancedDensity`-style functions only; pass anything, e.g. 0.0,
    /// otherwise).
    pub fn new(aggregation: Aggregation, total_weight: f64) -> Self {
        AggregateState {
            aggregation,
            needs_multiset: aggregation.certificates().needs_multiset,
            total_weight,
            count: 0,
            sum: 0.0,
            multiset: BTreeMap::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no member has been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds a member with weight `w`.
    pub fn add(&mut self, w: f64) {
        self.count += 1;
        self.sum += w;
        if self.needs_multiset {
            *self.multiset.entry(OrdF64(w)).or_insert(0) += 1;
        }
    }

    /// Removes a member with weight `w`. Under the multiset certificate
    /// the weight must have been added before (panics otherwise — a
    /// logic error).
    pub fn remove(&mut self, w: f64) {
        debug_assert!(self.count > 0, "remove from empty aggregate");
        self.count -= 1;
        self.sum -= w;
        if self.needs_multiset {
            let entry = self
                .multiset
                .get_mut(&OrdF64(w))
                .unwrap_or_else(|| panic!("weight {w} was never added"));
            *entry -= 1;
            if *entry == 0 {
                self.multiset.remove(&OrdF64(w));
            }
        }
    }

    /// Clears all members.
    pub fn clear(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.multiset.clear();
    }

    /// Current `f(H)`; `−∞` when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NEG_INFINITY;
        }
        let view = StateView::new(
            self.count,
            self.sum,
            self.total_weight,
            self.needs_multiset.then_some(&self.multiset),
        );
        self.aggregation.with_fn(|f| f.evaluate_state(&view))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<Aggregation> {
        Aggregation::builtins()
    }

    #[test]
    fn table_one_values() {
        let w = [4.0, 1.0, 7.0];
        let total = 20.0;
        assert_eq!(Aggregation::Min.evaluate(&w, total), 1.0);
        assert_eq!(Aggregation::Max.evaluate(&w, total), 7.0);
        assert_eq!(Aggregation::Sum.evaluate(&w, total), 12.0);
        assert_eq!(
            Aggregation::SumSurplus { alpha: 2.0 }.evaluate(&w, total),
            18.0
        );
        assert_eq!(Aggregation::Average.evaluate(&w, total), 4.0);
        assert_eq!(
            Aggregation::WeightDensity { beta: 1.0 }.evaluate(&w, total),
            9.0
        );
        // Balanced density: 12 / (12 - 8) = 3.
        assert_eq!(Aggregation::BalancedDensity.evaluate(&w, total), 3.0);
    }

    #[test]
    fn new_builtin_values() {
        let w = [4.0, 1.0, 7.0, 2.0];
        assert_eq!(Aggregation::TopTSum { t: 2 }.evaluate(&w, 0.0), 11.0);
        assert_eq!(Aggregation::TopTSum { t: 10 }.evaluate(&w, 0.0), 14.0);
        assert_eq!(Aggregation::Percentile { p: 0.0 }.evaluate(&w, 0.0), 1.0);
        assert_eq!(Aggregation::Percentile { p: 1.0 }.evaluate(&w, 0.0), 7.0);
        assert_eq!(Aggregation::Percentile { p: 0.5 }.evaluate(&w, 0.0), 2.0);
        let gm = Aggregation::GeometricMean.evaluate(&w, 0.0);
        assert!((gm - (4.0f64 * 1.0 * 7.0 * 2.0).powf(0.25)).abs() < 1e-9);
        // A zero member zeroes the geometric mean.
        assert_eq!(Aggregation::GeometricMean.evaluate(&[0.0, 5.0], 0.0), 0.0);
    }

    #[test]
    fn balanced_density_undefined_when_minority() {
        let w = [1.0, 2.0];
        assert_eq!(
            Aggregation::BalancedDensity.evaluate(&w, 100.0),
            f64::NEG_INFINITY
        );
        // Exactly half is also undefined (denominator 0).
        assert_eq!(
            Aggregation::BalancedDensity.evaluate(&w, 6.0),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn empty_community_is_neg_infinity() {
        for agg in all() {
            assert_eq!(agg.evaluate(&[], 10.0), f64::NEG_INFINITY, "{}", agg.name());
        }
    }

    #[test]
    fn classification_matches_paper_table() {
        use Hardness::*;
        assert!(Aggregation::Min.is_node_domination());
        assert!(Aggregation::Max.is_node_domination());
        assert!(Aggregation::Percentile { p: 0.5 }.is_node_domination());
        assert!(!Aggregation::Sum.is_node_domination());

        assert!(Aggregation::Sum.is_size_proportional());
        assert!(Aggregation::SumSurplus { alpha: 1.0 }.is_size_proportional());
        assert!(!Aggregation::SumSurplus { alpha: -1.0 }.is_size_proportional());
        assert!(Aggregation::TopTSum { t: 2 }.is_size_proportional());
        assert!(!Aggregation::Average.is_size_proportional());

        assert_eq!(Aggregation::Min.hardness_unconstrained(), Polynomial);
        assert_eq!(Aggregation::Sum.hardness_unconstrained(), Polynomial);
        assert_eq!(Aggregation::Average.hardness_unconstrained(), NpHard);
        assert_eq!(
            Aggregation::WeightDensity { beta: 1.0 }.hardness_unconstrained(),
            NpHard
        );
        assert_eq!(
            Aggregation::BalancedDensity.hardness_unconstrained(),
            NpHard
        );
        assert_eq!(Aggregation::GeometricMean.hardness_unconstrained(), NpHard);
        for agg in all() {
            assert_eq!(agg.hardness_constrained(), NpHard);
        }
    }

    #[test]
    fn certificates_expose_the_routing_structure() {
        assert_eq!(
            Aggregation::Min.certificates().peel_extremum,
            Some(Extremum::Min)
        );
        assert_eq!(
            Aggregation::Max.certificates().peel_extremum,
            Some(Extremum::Max)
        );
        // Node domination without a peel direction.
        let p = Aggregation::Percentile { p: 0.5 }.certificates();
        assert!(p.node_domination && p.peel_extremum.is_none());
        // Monotone without strict decrease.
        let t = Aggregation::TopTSum { t: 2 }.certificates();
        assert!(t.size_proportional && !t.removal_decreasing);
        // The sentinel certificate.
        assert!(
            Aggregation::BalancedDensity
                .certificates()
                .may_be_neg_infinite
        );
        assert!(!Aggregation::Sum.certificates().may_be_neg_infinite);
        // Branch-and-bound availability.
        assert!(Aggregation::Average.certificates().superset_bound);
        assert!(Aggregation::Sum.certificates().superset_bound);
        assert!(!Aggregation::BalancedDensity.certificates().superset_bound);
    }

    #[test]
    fn cache_key_normalizes_signed_zero_and_nan() {
        assert_eq!(
            Aggregation::SumSurplus { alpha: -0.0 }.cache_key(),
            Aggregation::SumSurplus { alpha: 0.0 }.cache_key(),
            "-0.0 and 0.0 compare equal and must hash equal"
        );
        assert_eq!(
            Aggregation::WeightDensity { beta: -0.0 }.cache_key(),
            Aggregation::WeightDensity { beta: 0.0 }.cache_key()
        );
        // Every NaN payload folds onto one canonical key.
        let a = f64::from_bits(0x7ff8_0000_0000_0001);
        let b = f64::from_bits(0xfff8_dead_beef_0000);
        assert_eq!(
            Aggregation::SumSurplus { alpha: a }.cache_key(),
            Aggregation::SumSurplus { alpha: b }.cache_key()
        );
        // Distinct finite parameters stay distinct; so do variants.
        assert_ne!(
            Aggregation::SumSurplus { alpha: 1.0 }.cache_key(),
            Aggregation::SumSurplus { alpha: 2.0 }.cache_key()
        );
        assert_ne!(
            Aggregation::SumSurplus { alpha: 1.0 }.cache_key(),
            Aggregation::WeightDensity { beta: 1.0 }.cache_key()
        );
        assert_ne!(
            Aggregation::TopTSum { t: 2 }.cache_key(),
            Aggregation::TopTSum { t: 3 }.cache_key()
        );
        assert_ne!(
            Aggregation::Percentile { p: 0.5 }.cache_key(),
            Aggregation::Percentile { p: 0.9 }.cache_key()
        );
        // All built-ins have pairwise distinct discriminants.
        let mut kinds: Vec<u8> = all().iter().map(|a| a.cache_key().0).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all().len());
    }

    #[test]
    fn canonical_bits_keep_infinities_distinct_and_stable() {
        // The −∞ undefined-value sentinel must cache/dedup under its own
        // stable identity (regression companion to the TopList ordering
        // tests in `community.rs`).
        assert_eq!(
            canonical_f64_bits(f64::NEG_INFINITY),
            f64::NEG_INFINITY.to_bits()
        );
        assert_eq!(canonical_f64_bits(f64::INFINITY), f64::INFINITY.to_bits());
        assert_ne!(
            canonical_f64_bits(f64::NEG_INFINITY),
            canonical_f64_bits(f64::INFINITY)
        );
    }

    #[test]
    fn parameter_accessor() {
        assert_eq!(
            Aggregation::SumSurplus { alpha: 2.5 }.parameter(),
            Some(2.5)
        );
        assert_eq!(
            Aggregation::WeightDensity { beta: 0.5 }.parameter(),
            Some(0.5)
        );
        assert_eq!(Aggregation::Percentile { p: 0.9 }.parameter(), Some(0.9));
        assert_eq!(Aggregation::Sum.parameter(), None);
        assert_eq!(Aggregation::Min.parameter(), None);
    }

    #[test]
    fn value_after_removal_matches_reevaluation() {
        let w = [4.0, 1.0, 7.0];
        for agg in [Aggregation::Sum, Aggregation::SumSurplus { alpha: 0.5 }] {
            let parent = agg.evaluate(&w, 0.0);
            let child = agg.value_after_removal(parent, 1.0);
            let expect = agg.evaluate(&[4.0, 7.0], 0.0);
            assert!((child - expect).abs() < 1e-12, "{}", agg.name());
        }
    }

    #[test]
    #[should_panic(expected = "removal-decreasing")]
    fn value_after_removal_rejects_avg() {
        Aggregation::Average.value_after_removal(1.0, 1.0);
    }

    #[test]
    fn incremental_state_matches_slice_evaluation() {
        let weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let total = 40.0;
        for agg in all() {
            let mut st = AggregateState::new(agg, total);
            let mut current: Vec<f64> = Vec::new();
            for &w in &weights {
                st.add(w);
                current.push(w);
                let expect = agg.evaluate(&current, total);
                let got = st.value();
                assert!(
                    (got - expect).abs() < 1e-9 || (got == expect),
                    "{} after add: {got} vs {expect}",
                    agg.name()
                );
            }
            // Remove in a scrambled order.
            for &w in &[1.0, 9.0, 3.0, 2.0] {
                st.remove(w);
                let pos = current.iter().position(|&x| x == w).unwrap();
                current.remove(pos);
                let expect = agg.evaluate(&current, total);
                let got = st.value();
                assert!(
                    (got - expect).abs() < 1e-9 || (got == expect),
                    "{} after remove: {got} vs {expect}",
                    agg.name()
                );
            }
        }
    }

    #[test]
    fn min_max_handle_duplicate_weights() {
        let mut st = AggregateState::new(Aggregation::Min, 0.0);
        st.add(2.0);
        st.add(2.0);
        st.add(5.0);
        st.remove(2.0);
        assert_eq!(st.value(), 2.0); // one copy of 2.0 remains
        st.remove(2.0);
        assert_eq!(st.value(), 5.0);
    }

    #[test]
    fn clear_resets() {
        let mut st = AggregateState::new(Aggregation::Max, 0.0);
        st.add(1.0);
        st.clear();
        assert!(st.is_empty());
        assert_eq!(st.value(), f64::NEG_INFINITY);
    }

    #[test]
    fn builtin_validate_rejects_bad_parameters() {
        assert!(Aggregation::TopTSum { t: 0 }.validate_params().is_err());
        assert!(Aggregation::Percentile { p: 1.5 }
            .validate_params()
            .is_err());
        assert!(Aggregation::Percentile { p: -0.1 }
            .validate_params()
            .is_err());
        assert!(Aggregation::Percentile { p: f64::NAN }
            .validate_params()
            .is_err());
        assert!(Aggregation::SumSurplus { alpha: f64::NAN }
            .validate_params()
            .is_err());
        assert!(Aggregation::Percentile { p: 0.5 }.validate_params().is_ok());
        assert!(Aggregation::TopTSum { t: 1 }.validate_params().is_ok());
    }

    #[test]
    fn custom_registration_round_trips() {
        // A trivially correct custom function: the squared sum.
        #[derive(Debug)]
        struct SquaredSum;
        impl AggregateFn for SquaredSum {
            fn name(&self) -> &str {
                "squared-sum"
            }
            fn certificates(&self) -> Certificates {
                Certificates {
                    size_proportional: true,
                    ..Certificates::opaque()
                }
            }
            fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
                let s: f64 = w.iter().sum();
                s * s
            }
            fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
                state.sum() * state.sum()
            }
        }
        let agg = Aggregation::custom(SquaredSum).expect("valid custom fn");
        assert_eq!(agg.name(), "squared-sum");
        assert_eq!(agg.evaluate(&[2.0, 3.0], 0.0), 25.0);
        assert!(agg.is_size_proportional());
        let mut st = AggregateState::new(agg, 0.0);
        st.add(2.0);
        st.add(3.0);
        assert_eq!(st.value(), 25.0);
        // Distinct registrations are distinct cache entities.
        let again = Aggregation::custom(SquaredSum).unwrap();
        assert_ne!(agg.cache_key(), again.cache_key());
        assert_ne!(agg, again);
        assert_eq!(agg, agg);
        assert!(Aggregation::registered_customs().contains(&agg));
    }

    #[test]
    fn mis_declared_multiset_certificate_fails_loudly() {
        // Declares no multiset but evaluates via the default
        // (multiset-materializing) evaluate_state: the StateView access
        // must panic instead of silently evaluating garbage.
        #[derive(Debug)]
        struct Forgetful;
        impl AggregateFn for Forgetful {
            fn name(&self) -> &str {
                "forgetful"
            }
            fn certificates(&self) -> Certificates {
                Certificates::opaque() // needs_multiset: false
            }
            fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
                w.iter().copied().fold(f64::INFINITY, f64::min)
            }
            // evaluate_state not overridden: default needs the multiset.
        }
        let err = Aggregation::custom(Forgetful);
        assert!(
            err.is_err(),
            "certification must catch the panic-or-mismatch"
        );
    }
}
