//! Observational equivalence of the zero-rebuild peeling engine.
//!
//! The arena-based solvers in `ic_core::algo` must produce *identical*
//! top-r output — same communities, same values, same order — as the
//! from-scratch re-peel oracles in `ic_core::algo::oracle`, across random
//! ER / Barabási-Albert / Chung-Lu graphs, several weight models, and
//! every supported aggregation. A final test pins the zero-allocation
//! guarantee of the steady-state peel loop.

use ic_core::algo::{self, oracle};
use ic_core::{Aggregation, Community, SearchError};
use ic_gen::{
    barabasi_albert, chung_lu, gnm, pagerank_weights, pareto_weights, rank_weights,
    uniform_weights, GraphSeed,
};
use ic_graph::{Graph, WeightedGraph};
use ic_kcore::{maximal_kcore_components, GraphSnapshot, PeelArena};
use proptest::prelude::*;

type Solved = Result<Vec<Community>, SearchError>;

/// Per-graph harness over the snapshot-based arena solvers (the
/// per-graph free functions were removed from the public API in PR 4).
fn on_snapshot(
    wg: &WeightedGraph,
    f: impl FnOnce(&GraphSnapshot, &mut PeelArena) -> Solved,
) -> Solved {
    let snap = GraphSnapshot::new(wg.clone());
    let mut arena = PeelArena::for_graph(snap.graph());
    f(&snap, &mut arena)
}

fn arena_min_topr(wg: &WeightedGraph, k: usize, r: usize) -> Solved {
    on_snapshot(wg, |snap, arena| algo::min_topr_on(snap, k, r, arena))
}

fn arena_max_topr(wg: &WeightedGraph, k: usize, r: usize) -> Solved {
    on_snapshot(wg, |snap, arena| algo::max_topr_on(snap, k, r, arena))
}

fn arena_sum_naive(wg: &WeightedGraph, k: usize, r: usize, agg: Aggregation) -> Solved {
    on_snapshot(wg, |snap, arena| algo::sum_naive_on(snap, k, r, agg, arena))
}

fn arena_tic_improved(
    wg: &WeightedGraph,
    k: usize,
    r: usize,
    agg: Aggregation,
    eps: f64,
) -> Solved {
    on_snapshot(wg, |snap, arena| {
        algo::tic_improved_on(snap, k, r, agg, eps, arena)
    })
}

/// One synthetic workload: a random graph from one of the three family
/// generators plus a weight model, both seed-derived.
fn arb_workload() -> impl Strategy<Value = WeightedGraph> {
    (
        0u32..3,      // family: ER / BA / Chung-Lu
        0u32..3,      // weights: uniform / pareto / rank permutation
        20usize..90,  // vertices
        any::<u64>(), // seed
    )
        .prop_map(|(family, weight_model, n, seed)| {
            let g: Graph = match family {
                0 => gnm(n, n * 2, GraphSeed(seed)),
                1 => barabasi_albert(n, 3, GraphSeed(seed)),
                _ => chung_lu(n, n * 2, 2.5, GraphSeed(seed)),
            };
            let w: Vec<f64> = match weight_model {
                0 => uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xabcd)),
                1 => pareto_weights(n, 1.5, GraphSeed(seed ^ 0xabcd)),
                _ => rank_weights(n, GraphSeed(seed ^ 0xabcd)),
            };
            WeightedGraph::new(g, w).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minmax_peeling_is_observationally_identical(wg in arb_workload(),
                                                   k in 1usize..5, r in 1usize..6) {
        let min_inc = arena_min_topr(&wg, k, r).unwrap();
        let min_ora = oracle::min_topr(&wg, k, r).unwrap();
        prop_assert_eq!(&min_inc, &min_ora, "min mismatch");
        let max_inc = arena_max_topr(&wg, k, r).unwrap();
        let max_ora = oracle::max_topr(&wg, k, r).unwrap();
        prop_assert_eq!(&max_inc, &max_ora, "max mismatch");
    }

    #[test]
    fn sum_naive_is_observationally_identical(wg in arb_workload(), k in 1usize..4,
                                              r in 1usize..5, surplus in any::<bool>()) {
        let agg = if surplus {
            Aggregation::SumSurplus { alpha: 1.5 }
        } else {
            Aggregation::Sum
        };
        let inc = arena_sum_naive(&wg, k, r, agg).unwrap();
        let ora = oracle::sum_naive(&wg, k, r, agg).unwrap();
        prop_assert_eq!(inc, ora, "{} k={} r={}", agg.name(), k, r);
    }

    #[test]
    fn tic_improved_is_observationally_identical(wg in arb_workload(), k in 1usize..4,
                                                 r in 1usize..5, surplus in any::<bool>(),
                                                 eps in prop_oneof![Just(0.0), Just(0.1), Just(0.3)]) {
        let agg = if surplus {
            Aggregation::SumSurplus { alpha: 0.5 }
        } else {
            Aggregation::Sum
        };
        let inc = arena_tic_improved(&wg, k, r, agg, eps).unwrap();
        let ora = oracle::tic_improved(&wg, k, r, agg, eps).unwrap();
        prop_assert_eq!(inc, ora, "{} k={} r={} eps={}", agg.name(), k, r, eps);
    }

    #[test]
    fn arena_deletions_match_scratch_on_community_walks(wg in arb_workload(), k in 1usize..4) {
        // Below the solver level: every (community, victim) deletion on
        // the shared arena must agree with a from-scratch re-peel, with
        // rollbacks interleaved exactly as the solvers interleave them.
        let g = wg.graph();
        let mut arena = PeelArena::for_graph(g);
        let mut scratch = ic_kcore::PeelScratch::new(g.num_vertices());
        for comp in maximal_kcore_components(g, k) {
            arena.load(g, &comp, k);
            for &victim in &comp {
                arena.remove_cascade(victim);
                let mut got: Vec<Vec<u32>> = Vec::new();
                arena.for_each_component(|c| {
                    let mut c = c.to_vec();
                    c.sort_unstable();
                    got.push(c);
                });
                got.sort();
                arena.rollback();
                let mut expected = scratch.connected_kcores(g, &comp, Some(victim), k);
                expected.sort();
                prop_assert_eq!(got, expected, "k={} victim={}", k, victim);
            }
        }
    }
}

#[test]
fn solver_steady_state_peeling_never_allocates() {
    // The acceptance criterion for the zero-rebuild engine: after an
    // arena is constructed for a query, the steady-state peel loop (load,
    // cascade, component extraction, rollback) performs zero heap
    // allocations. Exercised over a realistic workload and checked via
    // the arena's allocation-event counter.
    let g = barabasi_albert(600, 4, GraphSeed(11));
    let w = pagerank_weights(&g);
    let wg = WeightedGraph::new(g, w).unwrap();
    let g = wg.graph();
    let k = 4;
    let mut arena = PeelArena::for_graph(g);
    let comps = maximal_kcore_components(g, k);
    assert!(!comps.is_empty(), "fixture must have a non-trivial k-core");
    for comp in &comps {
        arena.load(g, comp, k);
        for &victim in comp.iter().take(50) {
            arena.remove_cascade(victim);
            arena.for_each_component(|c| {
                std::hint::black_box(c.len());
            });
            arena.rollback();
        }
        // Timeline mode (min/max peeling): committed removals.
        arena.load(g, comp, k);
        for &victim in comp.iter() {
            arena.remove_cascade(victim);
            arena.commit();
        }
    }
    assert_eq!(
        arena.alloc_events(),
        0,
        "steady-state peel loop allocated after construction"
    );
}

#[test]
fn incremental_solvers_agree_on_a_realistic_workload() {
    // One deeper, deterministic end-to-end check on a power-law graph
    // with PageRank weights (the paper's experimental setup).
    let g = chung_lu(1500, 6000, 2.5, GraphSeed(42));
    let w = pagerank_weights(&g);
    let wg = WeightedGraph::new(g, w).unwrap();
    for k in [2usize, 4] {
        for r in [1usize, 5, 10] {
            assert_eq!(
                arena_min_topr(&wg, k, r).unwrap(),
                oracle::min_topr(&wg, k, r).unwrap()
            );
            assert_eq!(
                arena_max_topr(&wg, k, r).unwrap(),
                oracle::max_topr(&wg, k, r).unwrap()
            );
            assert_eq!(
                arena_sum_naive(&wg, k, r, Aggregation::Sum).unwrap(),
                oracle::sum_naive(&wg, k, r, Aggregation::Sum).unwrap()
            );
            for eps in [0.0, 0.1] {
                assert_eq!(
                    arena_tic_improved(&wg, k, r, Aggregation::Sum, eps).unwrap(),
                    oracle::tic_improved(&wg, k, r, Aggregation::Sum, eps).unwrap()
                );
            }
        }
    }
}
