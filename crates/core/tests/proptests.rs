//! Property-based cross-validation of every solver against the exhaustive
//! oracle on random weighted graphs.

use ic_core::algo::{
    self, exact_naive, exact_topr, local_search, local_search_nonoverlapping, nonoverlap,
    par_local_search, LocalSearchConfig,
};
use ic_core::verify::check_community;
use ic_core::{Aggregation, Community, Query, SearchError};
use ic_graph::{graph_from_edges, WeightedGraph};
use ic_kcore::{GraphSnapshot, PeelArena};
use proptest::prelude::*;

type Solved = Result<Vec<Community>, SearchError>;

// The per-graph free-function entry points were removed in PR 4; these
// harnesses route through the certificate-driven `Query` router (and
// the snapshot entry point for Algorithm 1, which the router does not
// serve — TIC answers its queries).
fn min_topr(wg: &WeightedGraph, k: usize, r: usize) -> Solved {
    Query::new(k, r, Aggregation::Min).solve(wg)
}

fn max_topr(wg: &WeightedGraph, k: usize, r: usize) -> Solved {
    Query::new(k, r, Aggregation::Max).solve(wg)
}

fn tic_improved(wg: &WeightedGraph, k: usize, r: usize, agg: Aggregation, eps: f64) -> Solved {
    Query::new(k, r, agg).approx(eps).solve(wg)
}

fn sum_naive(wg: &WeightedGraph, k: usize, r: usize, agg: Aggregation) -> Solved {
    let snap = GraphSnapshot::new(wg.clone());
    let mut arena = PeelArena::for_graph(snap.graph());
    algo::sum_naive_on(&snap, k, r, agg, &mut arena)
}

/// Random weighted graph: up to `max_n` vertices, random edges, strictly
/// positive weights (the paper assumes non-negative influence; positive
/// values keep sum's maximality vacuous, matching Corollary 2).
fn arb_wgraph(max_n: u32) -> impl Strategy<Value = WeightedGraph> {
    (4..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n as usize * 3));
        let weights = proptest::collection::vec(0.5f64..50.0, n as usize);
        (edges, weights).prop_map(move |(e, w)| {
            WeightedGraph::new(graph_from_edges(n as usize, &e), w).unwrap()
        })
    })
}

fn values(cs: &[ic_core::Community]) -> Vec<f64> {
    cs.iter().map(|c| c.value).collect()
}

fn assert_close(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "{:?} vs {:?}", a, b);
    for (x, y) in a.iter().zip(b) {
        prop_assert!((x - y).abs() < 1e-9, "{:?} vs {:?}", a, b);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn naive_and_improved_match_oracle_for_sum(wg in arb_wgraph(11), k in 1usize..4, r in 1usize..4) {
        let oracle = exact_topr(&wg, k, r, None, Aggregation::Sum).unwrap();
        let naive = sum_naive(&wg, k, r, Aggregation::Sum).unwrap();
        let improved = tic_improved(&wg, k, r, Aggregation::Sum, 0.0).unwrap();
        assert_close(&values(&naive), &values(&oracle))?;
        assert_close(&values(&improved), &values(&oracle))?;
    }

    #[test]
    fn sum_surplus_solvers_match_oracle(wg in arb_wgraph(10), k in 1usize..3) {
        let agg = Aggregation::SumSurplus { alpha: 1.5 };
        let oracle = exact_topr(&wg, k, 3, None, agg).unwrap();
        let naive = sum_naive(&wg, k, 3, agg).unwrap();
        let improved = tic_improved(&wg, k, 3, agg, 0.0).unwrap();
        assert_close(&values(&naive), &values(&oracle))?;
        assert_close(&values(&improved), &values(&oracle))?;
    }

    #[test]
    fn approx_satisfies_theorem6(wg in arb_wgraph(11), k in 1usize..3,
                                 eps in prop_oneof![Just(0.01), Just(0.1), Just(0.3), Just(0.5)]) {
        let r = 3;
        let exact = tic_improved(&wg, k, r, Aggregation::Sum, 0.0).unwrap();
        let approx = tic_improved(&wg, k, r, Aggregation::Sum, eps).unwrap();
        prop_assert_eq!(exact.len(), approx.len());
        if let (Some(re), Some(ra)) = (exact.last(), approx.last()) {
            prop_assert!(
                ra.value >= (1.0 - eps) * re.value - 1e-9,
                "eps={} ra={} re={}", eps, ra.value, re.value
            );
        }
    }

    #[test]
    fn min_max_peeling_matches_oracle(wg in arb_wgraph(11), k in 1usize..4, r in 1usize..4) {
        let got_min = min_topr(&wg, k, r).unwrap();
        let exp_min = exact_topr(&wg, k, r, None, Aggregation::Min).unwrap();
        prop_assert_eq!(&got_min, &exp_min, "min mismatch");
        let got_max = max_topr(&wg, k, r).unwrap();
        let exp_max = exact_topr(&wg, k, r, None, Aggregation::Max).unwrap();
        prop_assert_eq!(&got_max, &exp_max, "max mismatch");
    }

    #[test]
    fn exact_naive_matches_oracle_for_sum_with_bound(wg in arb_wgraph(9), k in 1usize..3) {
        let s = k + 2;
        let naive = exact_naive(&wg, k, 4, s, Aggregation::Sum).unwrap();
        let oracle = exact_topr(&wg, k, 4, Some(s), Aggregation::Sum).unwrap();
        assert_close(&values(&naive), &values(&oracle))?;
    }

    #[test]
    fn local_search_outputs_are_valid_communities(wg in arb_wgraph(14), k in 1usize..4, greedy in any::<bool>()) {
        let s = k + 3;
        let config = LocalSearchConfig { k, r: 3, s, greedy };
        for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min,
                    Aggregation::WeightDensity { beta: 0.5 }] {
            let res = local_search(&wg, &config, agg).unwrap();
            for c in &res {
                prop_assert!(c.len() <= s);
                prop_assert!(
                    check_community(&wg, k, Some(s), agg, c).is_ok(),
                    "{} invalid: {:?}", agg.name(), c.vertices
                );
            }
        }
    }

    #[test]
    fn local_search_never_beats_the_oracle(wg in arb_wgraph(10), k in 1usize..3) {
        // The heuristic is sound: its best value cannot exceed the exact
        // optimum over the same constrained space.
        let s = k + 2;
        let config = LocalSearchConfig { k, r: 1, s, greedy: true };
        let res = local_search(&wg, &config, Aggregation::Average).unwrap();
        if let Some(best) = res.first() {
            let oracle = exact_naive(&wg, k, 1, s, Aggregation::Average).unwrap();
            let opt = oracle.first().expect("oracle finds at least the heuristic's community");
            prop_assert!(best.value <= opt.value + 1e-9, "{} > {}", best.value, opt.value);
        }
    }

    #[test]
    fn tonic_results_are_disjoint_and_valid(wg in arb_wgraph(12), k in 1usize..3) {
        let s = k + 3;
        let config = LocalSearchConfig { k, r: 3, s, greedy: true };
        for agg in [Aggregation::Sum, Aggregation::Average] {
            let res = local_search_nonoverlapping(&wg, &config, agg).unwrap();
            prop_assert!(nonoverlap::is_nonoverlapping(&res), "{} overlaps", agg.name());
            for c in &res {
                prop_assert!(check_community(&wg, k, Some(s), agg, c).is_ok());
            }
        }
        let res = nonoverlap::min_topr_nonoverlapping(&wg, k, 3).unwrap();
        prop_assert!(nonoverlap::is_nonoverlapping(&res));
        for c in &res {
            prop_assert!(check_community(&wg, k, None, Aggregation::Min, c).is_ok());
        }
    }

    #[test]
    fn nonoverlapping_sum_equals_kcore_components(wg in arb_wgraph(12), k in 1usize..4) {
        let res = nonoverlap::sum_topr(&wg, k, 5, Aggregation::Sum).unwrap();
        prop_assert!(nonoverlap::is_nonoverlapping(&res));
        // Each result must be a full k-core component: re-peeling it
        // changes nothing and it is maximal in value among its subsets.
        let comps = ic_kcore::maximal_kcore_components(wg.graph(), k);
        for c in &res {
            prop_assert!(comps.iter().any(|comp| comp == &c.vertices));
        }
    }

    #[test]
    fn parallel_local_search_is_valid_and_single_thread_exact(wg in arb_wgraph(12), k in 1usize..3, threads in 1usize..5) {
        let config = LocalSearchConfig { k, r: 3, s: k + 3, greedy: true };
        let par = par_local_search(&wg, &config, Aggregation::Average, threads).unwrap();
        for c in &par {
            prop_assert!(check_community(&wg, k, Some(k + 3), Aggregation::Average, c).is_ok());
        }
        // threads = 1 must reproduce the sequential result exactly; more
        // threads may differ slightly (weaker thread-local pruning changes
        // greedy acceptance), but every result stays a valid community.
        if threads == 1 {
            let seq = local_search(&wg, &config, Aggregation::Average).unwrap();
            prop_assert_eq!(par, seq);
        }
    }

    #[test]
    fn min_index_matches_online_solver(wg in arb_wgraph(14), k in 1usize..4, r in 1usize..5) {
        let idx = ic_core::algo::MinCommunityIndex::build(&wg, k);
        let from_index = idx.topr(&wg, r).unwrap();
        let online = min_topr(&wg, k, r).unwrap();
        prop_assert_eq!(from_index, online);
    }

    #[test]
    fn min_index_chains_are_nested(wg in arb_wgraph(14), k in 1usize..3) {
        let idx = ic_core::algo::MinCommunityIndex::build(&wg, k);
        for v in 0..wg.num_vertices() as u32 {
            let chain = idx.chain_of(v);
            for w in chain.windows(2) {
                prop_assert!(w[0].1 < w[1].1, "sizes must strictly grow");
                prop_assert!(w[0].0 >= w[1].0, "values must not grow");
            }
            if let Some(c) = idx.minimal_community_of(&wg, v) {
                prop_assert!(c.contains(v));
                prop_assert!(check_community(&wg, k, None, Aggregation::Min, &c).is_ok());
            }
        }
    }

    #[test]
    fn truss_min_matches_threshold_recomputation(wg in arb_wgraph(12), k in 2usize..4) {
        // Oracle: recompute the k-truss of G>=theta for every threshold.
        let g = wg.graph();
        let mut thresholds: Vec<f64> =
            (0..g.num_vertices()).map(|v| wg.weight(v as u32)).collect();
        thresholds.sort_by(f64::total_cmp);
        thresholds.dedup();
        let mut seen = std::collections::HashSet::new();
        let mut expected: Vec<ic_core::Community> = Vec::new();
        for &theta in &thresholds {
            let keep: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| wg.weight(v) >= theta)
                .collect();
            let sub = ic_graph::induce(g, &keep);
            for comp in ic_kcore::maximal_ktruss_components(&sub.graph, k) {
                let original: Vec<u32> = comp.iter().map(|&lv| sub.to_original(lv)).collect();
                let weights: Vec<f64> = original.iter().map(|&v| wg.weight(v)).collect();
                let value = Aggregation::Min.evaluate(&weights, wg.total_weight());
                let c = ic_core::Community::new(original, value);
                if c.value == theta && seen.insert(c.vertices.clone()) {
                    expected.push(c);
                }
            }
        }
        expected.sort_by(|a, b| a.ranking_cmp(b));
        expected.truncate(4);
        let got = ic_core::algo::truss_min_topr(&wg, k, 4).unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn oracle_results_pass_full_verification(wg in arb_wgraph(10), k in 1usize..3) {
        for agg in [Aggregation::Sum, Aggregation::Average, Aggregation::Min, Aggregation::Max] {
            let res = algo::exact_topr(&wg, k, 4, None, agg).unwrap();
            for c in &res {
                prop_assert!(check_community(&wg, k, None, agg, c).is_ok(),
                    "{} produced invalid community {:?}", agg.name(), c.vertices);
            }
        }
    }
}
