//! TONIC (non-overlapping) behaviour and constraint handling on realistic
//! workloads, plus error-path coverage across the public API.

use ic_core::algo::{self, LocalSearchConfig};
use ic_core::verify::check_community;
use ic_core::{Aggregation, SearchError};
use ic_gen::datasets::{by_name, Profile};
use ic_kcore::maximal_kcore_components;

fn email() -> ic_graph::WeightedGraph {
    by_name(Profile::Quick, "email")
        .unwrap()
        .generate_weighted()
}

#[test]
fn tonic_sum_returns_kcore_components() {
    let wg = email();
    let res = algo::nonoverlap::sum_topr(&wg, 6, 5, Aggregation::Sum).unwrap();
    assert!(algo::nonoverlap::is_nonoverlapping(&res));
    let comps = maximal_kcore_components(wg.graph(), 6);
    for c in &res {
        assert!(comps.iter().any(|comp| comp == &c.vertices));
    }
    // Values sorted descending.
    for w in res.windows(2) {
        assert!(w[0].value >= w[1].value);
    }
}

#[test]
fn tonic_min_produces_disjoint_verified_communities() {
    let wg = email();
    let res = algo::nonoverlap::min_topr_nonoverlapping(&wg, 6, 4).unwrap();
    assert!(algo::nonoverlap::is_nonoverlapping(&res));
    assert!(!res.is_empty());
    for c in &res {
        check_community(&wg, 6, None, Aggregation::Min, c).unwrap();
    }
    // Greedy peel: each round's winner is at least as good as the next.
    for w in res.windows(2) {
        assert!(w[0].value >= w[1].value);
    }
}

#[test]
fn tonic_local_search_is_disjoint_for_all_aggregations() {
    let wg = email();
    let config = LocalSearchConfig {
        k: 4,
        r: 4,
        s: 15,
        greedy: true,
    };
    for agg in [
        Aggregation::Sum,
        Aggregation::Average,
        Aggregation::Min,
        Aggregation::Max,
        Aggregation::SumSurplus { alpha: 0.001 },
        Aggregation::WeightDensity { beta: 0.0001 },
    ] {
        let res = algo::local_search_nonoverlapping(&wg, &config, agg).unwrap();
        assert!(
            algo::nonoverlap::is_nonoverlapping(&res),
            "{} overlaps",
            agg.name()
        );
        for c in &res {
            check_community(&wg, 4, Some(15), agg, c).unwrap();
        }
    }
}

#[test]
fn size_bound_is_respected_across_s_grid() {
    let wg = email();
    for s in [5usize, 10, 15, 20] {
        let config = LocalSearchConfig {
            k: 4,
            r: 5,
            s,
            greedy: true,
        };
        let res = algo::local_search(&wg, &config, Aggregation::Sum).unwrap();
        for c in &res {
            assert!(c.len() <= s, "s={s} violated: {}", c.len());
            check_community(&wg, 4, Some(s), Aggregation::Sum, c).unwrap();
        }
    }
}

#[test]
fn larger_s_never_hurts_greedy_sum_quality() {
    let wg = email();
    let mut prev_best = f64::NEG_INFINITY;
    for s in [5usize, 10, 15, 20] {
        let config = LocalSearchConfig {
            k: 4,
            r: 5,
            s,
            greedy: true,
        };
        let res = algo::local_search(&wg, &config, Aggregation::Sum).unwrap();
        let best = res.first().map_or(f64::NEG_INFINITY, |c| c.value);
        assert!(
            best >= prev_best - 1e-12,
            "s={s}: best {best} < previous {prev_best}"
        );
        prev_best = best;
    }
}

#[test]
fn error_paths_are_typed_not_panics() {
    use ic_core::Query;
    use ic_kcore::{GraphSnapshot, PeelArena};
    let wg = email();
    let snap = GraphSnapshot::new(wg.clone());
    let mut arena = PeelArena::for_graph(snap.graph());

    // r = 0 on every routed path and on the Algorithm-1 entry point.
    assert!(matches!(
        algo::sum_naive_on(&snap, 4, 0, Aggregation::Sum, &mut arena),
        Err(SearchError::InvalidParams(_))
    ));
    assert!(Query::new(4, 0, Aggregation::Sum).solve(&wg).is_err());
    assert!(Query::new(4, 0, Aggregation::Min).solve(&wg).is_err());

    // Aggregations without the removal-decreasing certificate are
    // rejected by the Corollary-2 solvers.
    for agg in [
        Aggregation::Average,
        Aggregation::Min,
        Aggregation::BalancedDensity,
        Aggregation::TopTSum { t: 2 },
        Aggregation::Percentile { p: 0.5 },
        Aggregation::GeometricMean,
    ] {
        assert!(matches!(
            algo::sum_naive_on(&snap, 4, 5, agg, &mut arena),
            Err(SearchError::UnsupportedAggregation { .. })
        ));
    }

    // epsilon out of range.
    assert!(Query::new(4, 5, Aggregation::Sum)
        .approx(1.0)
        .solve(&wg)
        .is_err());

    // s <= k for local search.
    let bad = LocalSearchConfig {
        k: 5,
        r: 3,
        s: 5,
        greedy: true,
    };
    assert!(matches!(
        algo::local_search(&wg, &bad, Aggregation::Sum),
        Err(SearchError::InvalidParams(_))
    ));

    // k above kmax: valid call, empty result.
    let res = Query::new(10_000, 3, Aggregation::Sum).solve(&wg).unwrap();
    assert!(res.is_empty());
}

#[test]
fn weight_validation_errors_from_graph_layer() {
    use ic_graph::{graph_from_edges, GraphError, WeightedGraph};
    let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
    assert!(matches!(
        WeightedGraph::new(g.clone(), vec![1.0, 2.0]),
        Err(GraphError::WeightLengthMismatch { .. })
    ));
    assert!(matches!(
        WeightedGraph::new(g, vec![1.0, -1.0, 2.0]),
        Err(GraphError::InvalidWeight { .. })
    ));
}
