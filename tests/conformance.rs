//! Cross-solver conformance: every path to the same query must give the
//! same answer.
//!
//! For **every built-in aggregation** — the paper's seven plus the PR-4
//! extension built-ins `top-t-sum`, `percentile`, and `geo-mean` — there
//! are up to four ways to answer a query:
//!
//! * **oracle** — the from-scratch reference solvers
//!   (`ic_core::algo::oracle`, the exhaustive `exact_topr` on tiny
//!   graphs, and sequential `local_search` for the heuristic route);
//! * **arena** — the zero-rebuild `PeelArena` solvers, reached through
//!   [`Query::solve_on`] (routing is by declared certificates since
//!   PR 4 — nothing here dispatches on the aggregation itself);
//! * **engine-batched** — `ic_engine::Engine::run_batch`, including its
//!   dedup and r-family merging;
//! * **streamed** — `ic_engine::Engine::submit`, the progressive
//!   session, drained to completion.
//!
//! The deterministic paths must agree **bit for bit** — same vertex
//! sets, same values, same order — on ER, Barabási-Albert, Chung-Lu,
//! and planted-partition graphs, including the edge cases `r = 1`,
//! `r > #communities`, `k = 1`, and `k > degeneracy`. Heuristic local
//! search is held to the contract its docs state: engine(1 worker) ≡
//! `par_local_search(1 thread)` ≡ sequential `local_search`, and
//! multi-worker results are valid communities of the same cardinality
//! regime. Any future refactor that silently diverges from the oracle
//! semantics fails here first.

use ic_core::algo::{self, oracle, LocalSearchConfig};
use ic_core::verify::check_community;
use ic_core::{Aggregation, Community, Query};
use ic_engine::{AnswerStatus, BatchOptions, Engine, EngineError};
use ic_gen::{
    barabasi_albert, chung_lu, gnm, pareto_weights, planted_partition, rank_weights,
    uniform_weights, GraphSeed, PlantedPartitionConfig,
};
use ic_graph::{Graph, WeightedGraph};
use ic_kcore::{degeneracy, GraphSnapshot, PeelArena};
use proptest::prelude::*;

/// One synthetic workload drawn from the four graph families with a
/// seed-derived weight model.
fn arb_workload() -> impl Strategy<Value = WeightedGraph> {
    (
        0u32..4,      // family: ER / BA / Chung-Lu / planted
        0u32..3,      // weights: uniform / pareto / rank permutation
        24usize..72,  // vertices
        any::<u64>(), // seed
    )
        .prop_map(|(family, weight_model, n, seed)| {
            let g: Graph = match family {
                0 => gnm(n, n * 2, GraphSeed(seed)),
                1 => barabasi_albert(n, 3, GraphSeed(seed)),
                2 => chung_lu(n, n * 2, 2.5, GraphSeed(seed)),
                _ => planted_partition(
                    &PlantedPartitionConfig {
                        communities: 4,
                        community_size: (n / 4).max(2),
                        p_in: 0.6,
                        p_out: 0.03,
                    },
                    GraphSeed(seed),
                ),
            };
            let n = g.num_vertices();
            let w: Vec<f64> = match weight_model {
                0 => uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xabcd)),
                1 => pareto_weights(n, 1.5, GraphSeed(seed ^ 0xabcd)),
                _ => rank_weights(n, GraphSeed(seed ^ 0xabcd)),
            };
            WeightedGraph::new(g, w).unwrap()
        })
}

fn engine(wg: &WeightedGraph, threads: usize) -> Engine {
    Engine::with_threads(wg.clone(), threads)
}

fn unwrap_batch(results: Vec<Result<Vec<Community>, ic_core::SearchError>>) -> Vec<Vec<Community>> {
    results
        .into_iter()
        .map(|r| r.expect("conformance queries are valid"))
        .collect()
}

/// The arena path: [`Query::solve_on`] against a fresh memoized
/// snapshot (bit-identical to `Query::solve` by contract).
fn arena_solve(wg: &WeightedGraph, q: Query) -> Vec<Community> {
    let snap = GraphSnapshot::new(wg.clone());
    let mut arena = PeelArena::for_graph(snap.graph());
    q.solve_on(&snap, &mut arena).expect("valid query")
}

/// The streamed path: a fresh engine's progressive session, drained.
fn streamed(wg: &WeightedGraph, q: Query, threads: usize) -> Vec<Community> {
    engine(wg, threads)
        .submit(q)
        .expect("valid query")
        .collect()
}

/// Algorithm 1 on a fresh snapshot (shared harness; the per-graph free
/// function was removed from the public API in PR 4).
fn arena_sum_naive(wg: &WeightedGraph, k: usize, r: usize, agg: Aggregation) -> Vec<Community> {
    ic_bench::harness::sum_naive(wg, k, r, agg).expect("valid params")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// min/max: oracle ≡ arena ≡ engine (any thread count) ≡ streamed,
    /// across the k grid including k = 1 and k > degeneracy, r
    /// including 1 and r > #communities.
    #[test]
    fn node_domination_paths_agree(wg in arb_workload()) {
        let d = degeneracy(wg.graph()) as usize;
        let ks = [1usize, 2, (d / 2).max(1), d + 1];
        let rs = [1usize, 3, 10_000];
        for threads in [1usize, 4] {
            let eng = engine(&wg, threads);
            for &k in &ks {
                for &r in &rs {
                    let batch = [
                        Query::new(k, r, Aggregation::Min),
                        Query::new(k, r, Aggregation::Max),
                    ];
                    let got = unwrap_batch(eng.run_batch(&batch));
                    let arena_min = arena_solve(&wg, batch[0]);
                    let oracle_min = oracle::min_topr(&wg, k, r).unwrap();
                    prop_assert_eq!(&arena_min, &oracle_min, "min arena/oracle k={} r={}", k, r);
                    prop_assert_eq!(&got[0], &arena_min, "min engine k={} r={} t={}", k, r, threads);
                    let arena_max = arena_solve(&wg, batch[1]);
                    let oracle_max = oracle::max_topr(&wg, k, r).unwrap();
                    prop_assert_eq!(&arena_max, &oracle_max, "max arena/oracle k={} r={}", k, r);
                    prop_assert_eq!(&got[1], &arena_max, "max engine k={} r={} t={}", k, r, threads);
                    if k > d {
                        prop_assert!(got[0].is_empty() && got[1].is_empty(), "k>degeneracy");
                    }
                }
            }
        }
    }

    /// sum / sum-surplus: oracle ≡ arena ≡ engine ≡ streamed for
    /// Algorithm 1 and Algorithm 2 (exact and approximate).
    #[test]
    fn removal_decreasing_paths_agree(wg in arb_workload(), k in 1usize..4) {
        let aggs = [Aggregation::Sum, Aggregation::SumSurplus { alpha: 0.75 }];
        let eng = engine(&wg, 2);
        for &agg in &aggs {
            for r in [1usize, 4] {
                let q = Query::new(k, r, agg);
                let oracle_naive = oracle::sum_naive(&wg, k, r, agg).unwrap();
                let arena_naive = arena_sum_naive(&wg, k, r, agg);
                prop_assert_eq!(&arena_naive, &oracle_naive, "naive k={} r={}", k, r);
                let oracle_tic = oracle::tic_improved(&wg, k, r, agg, 0.0).unwrap();
                let arena_tic = arena_solve(&wg, q);
                prop_assert_eq!(&arena_tic, &oracle_tic, "tic k={} r={}", k, r);
                let got = unwrap_batch(eng.run_batch(&[q]));
                prop_assert_eq!(&got[0], &arena_tic, "engine k={} r={}", k, r);
                prop_assert_eq!(&streamed(&wg, q, 2), &arena_tic, "streamed k={} r={}", k, r);
                // The two algorithms agree on values (tie-broken sets may
                // legitimately differ between Algorithm 1 and 2).
                let nv: Vec<f64> = arena_naive.iter().map(|c| c.value).collect();
                let tv: Vec<f64> = arena_tic.iter().map(|c| c.value).collect();
                prop_assert_eq!(nv.len(), tv.len());
                for (a, b) in nv.iter().zip(&tv) {
                    prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
                }
            }
            // Approximate mode: engine ≡ arena ≡ oracle at the same ε.
            for eps in [0.1, 0.4] {
                let q = Query::new(k, 3, agg).approx(eps);
                let oracle_eps = oracle::tic_improved(&wg, k, 3, agg, eps).unwrap();
                let arena_eps = arena_solve(&wg, q);
                prop_assert_eq!(&arena_eps, &oracle_eps, "eps={}", eps);
                let got = unwrap_batch(eng.run_batch(&[q]));
                prop_assert_eq!(&got[0], &arena_eps, "engine eps={}", eps);
                prop_assert_eq!(&streamed(&wg, q, 2), &arena_eps, "streamed eps={}", eps);
            }
        }
    }

    /// Every built-in aggregation, pinned across all four paths at once
    /// — including the PR-4 additions (`top-t-sum`, `percentile`,
    /// `geo-mean`). Aggregations with a polynomial certificate run
    /// unconstrained; the NP-hard rest run through their size-bounded
    /// local-search route, whose single-worker paths are all
    /// bit-identical by contract.
    #[test]
    fn every_builtin_agrees_across_all_paths(wg in arb_workload(), k in 1usize..4) {
        for agg in Aggregation::builtins() {
            let certs = agg.certificates();
            let unconstrained = certs.peel_extremum.is_some() || certs.removal_decreasing;
            let q = if unconstrained {
                Query::new(k, 3, agg)
            } else {
                Query::new(k, 3, agg).size_bound(k + 4, true)
            };
            // Reference (oracle) path.
            let reference = if let Some(ext) = certs.peel_extremum {
                match ext {
                    ic_core::Extremum::Min => oracle::min_topr(&wg, k, 3).unwrap(),
                    ic_core::Extremum::Max => oracle::max_topr(&wg, k, 3).unwrap(),
                }
            } else if certs.removal_decreasing {
                oracle::tic_improved(&wg, k, 3, agg, 0.0).unwrap()
            } else {
                let config = LocalSearchConfig { k, r: 3, s: k + 4, greedy: true };
                let seq = algo::local_search(&wg, &config, agg).unwrap();
                let par1 = algo::par_local_search(&wg, &config, agg, 1).unwrap();
                prop_assert_eq!(&par1, &seq, "par(1) {}", agg.name());
                seq
            };
            // Arena ≡ oracle.
            let arena = arena_solve(&wg, q);
            prop_assert_eq!(&arena, &reference, "{} arena k={}", agg.name(), k);
            // Engine-batched ≡ arena (single worker keeps the heuristic
            // route bit-deterministic).
            let got = unwrap_batch(engine(&wg, 1).run_batch(&[q]));
            prop_assert_eq!(&got[0], &arena, "{} engine k={}", agg.name(), k);
            // Streamed ≡ arena.
            prop_assert_eq!(&streamed(&wg, q, 1), &arena, "{} streamed k={}", agg.name(), k);
            // Every community checks out structurally and value-wise.
            let bound = if unconstrained { None } else { Some(k + 4) };
            for c in &arena {
                prop_assert!(
                    check_community(&wg, k, bound, agg, c).is_ok(),
                    "{} invalid community {:?}", agg.name(), c.vertices
                );
            }
        }
    }

    /// Constrained queries (avg and friends): one engine worker is
    /// bit-identical to sequential local search and single-threaded
    /// par_local_search; multi-worker results are valid communities.
    #[test]
    fn constrained_paths_agree(wg in arb_workload(), k in 1usize..4, greedy in any::<bool>()) {
        let s = k + 4;
        let aggs = [
            Aggregation::Average,
            Aggregation::Min,
            Aggregation::Sum,
            Aggregation::SumSurplus { alpha: 0.25 },
            Aggregation::TopTSum { t: 2 },
            Aggregation::Percentile { p: 0.75 },
            Aggregation::GeometricMean,
        ];
        for &agg in &aggs {
            let config = LocalSearchConfig { k, r: 3, s, greedy };
            let seq = algo::local_search(&wg, &config, agg).unwrap();
            let par1 = algo::par_local_search(&wg, &config, agg, 1).unwrap();
            prop_assert_eq!(&par1, &seq, "par(1) {}", agg.name());
            let eng1 = engine(&wg, 1);
            let got = unwrap_batch(
                eng1.run_batch(&[Query::new(k, 3, agg).size_bound(s, greedy)]),
            );
            prop_assert_eq!(&got[0], &seq, "engine(1) {}", agg.name());

            let eng4 = engine(&wg, 4);
            let got4 = unwrap_batch(
                eng4.run_batch(&[Query::new(k, 3, agg).size_bound(s, greedy)]),
            );
            for c in &got4[0] {
                prop_assert!(
                    check_community(&wg, k, Some(s), agg, c).is_ok(),
                    "{} multi-worker community invalid: {:?}", agg.name(), c.vertices
                );
            }
        }
    }

    /// Mixed fault batches: queries with randomly drawn deadlines (none,
    /// already-expired, generous) share one batch. Whatever each query's
    /// outcome is, the conformance contract holds —
    ///
    /// * `Complete` answers are bit-identical to the query solved alone
    ///   on a fresh engine;
    /// * `Degraded` answers carry a prefix certificate: the
    ///   `proven_prefix_len` leading communities equal the solo answer's
    ///   prefix bit for bit;
    /// * `DeadlineExceeded` is only legal for a query that was actually
    ///   armed;
    ///
    /// and afterwards the engine is undamaged: the arena pool is fully
    /// restored (nothing quarantined — deadlines are not faults) and an
    /// unarmed re-run of the whole batch is bit-identical to solo runs.
    #[test]
    fn mixed_deadline_batches_leave_survivors_bit_identical(
        wg in arb_workload(),
        k in 1usize..4,
        picks in proptest::collection::vec(0u8..3, 4),
        threads in 1usize..5,
    ) {
        let probes = [
            Query::new(k, 3, Aggregation::Min),
            Query::new(k, 4, Aggregation::Max),
            Query::new(k, 3, Aggregation::Sum),
            Query::new(k, 3, Aggregation::Sum).approx(0.2),
        ];
        let armed: Vec<Query> = probes
            .iter()
            .zip(&picks)
            .map(|(q, pick)| match pick {
                0 => *q,
                1 => q.deadline(std::time::Duration::ZERO),
                _ => q.deadline(std::time::Duration::from_secs(3600)),
            })
            .collect();
        let solo: Vec<Vec<Community>> = probes
            .iter()
            .map(|q| unwrap_batch(engine(&wg, threads).run_batch(&[*q]))[0].clone())
            .collect();

        let eng = engine(&wg, threads);
        let got = eng.run_batch_with(&armed, &BatchOptions::default());
        for (i, res) in got.iter().enumerate() {
            match res {
                Ok(ans) => match ans.status {
                    AnswerStatus::Complete => prop_assert_eq!(
                        &ans.communities, &solo[i],
                        "probe {} complete answer must equal solo", i
                    ),
                    AnswerStatus::Degraded { proven_prefix_len, .. } => {
                        prop_assert!(picks[i] != 0, "unarmed probe {} degraded", i);
                        prop_assert!(proven_prefix_len <= ans.communities.len());
                        prop_assert_eq!(
                            &ans.communities[..proven_prefix_len],
                            &solo[i][..proven_prefix_len],
                            "probe {} proven prefix must be bit-identical", i
                        );
                    }
                    // `AnswerStatus` is non-exhaustive outside ic-engine.
                    _ => prop_assert!(false, "probe {i} unknown answer status"),
                },
                Err(EngineError::DeadlineExceeded) => {
                    prop_assert!(picks[i] != 0, "unarmed probe {} hit a deadline", i);
                }
                Err(e) => prop_assert!(false, "probe {i} unexpected error {e}"),
            }
        }

        // The engine is undamaged: pool fully restored, nothing
        // quarantined, and a fresh unarmed pass is bit-exact.
        prop_assert_eq!(eng.arenas_quarantined(), 0, "deadlines are not faults");
        prop_assert_eq!(
            eng.arenas_available(),
            eng.arenas_created(),
            "every arena must be back in the pool"
        );
        eng.clear_result_cache();
        let rerun = unwrap_batch(eng.run_batch(&probes));
        for (i, got) in rerun.iter().enumerate() {
            prop_assert_eq!(got, &solo[i], "post-deadline probe {} diverged", i);
        }
    }

    /// Pool-restoration invariant under chaotic take / return /
    /// quarantine interleavings (including takers that panic while
    /// holding the free-list lock): once every arena is handed back one
    /// way or the other, `len() == created() - quarantined()`.
    #[test]
    fn arena_pool_len_is_restored_after_chaos(
        ops in proptest::collection::vec(0u8..4, 1..64),
    ) {
        let g = ic_gen::gnm(16, 32, GraphSeed(7));
        let pool = ic_kcore::ArenaPool::for_graph(&g);
        let mut out: Vec<ic_kcore::PeelArena> = Vec::new();
        for op in ops {
            match op {
                0 => out.push(pool.take_arena()),
                1 => {
                    if let Some(a) = out.pop() {
                        pool.put_arena(a);
                    }
                }
                2 => {
                    if let Some(a) = out.pop() {
                        pool.quarantine(a);
                    }
                }
                _ => {
                    // A worker dying mid-pool-access must not wedge the
                    // pool for everyone else (poison-recovering lock).
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _a = pool.take_arena();
                        panic!("die while an arena is out");
                    }));
                    prop_assert!(res.is_err());
                    // The arena died with the panicking taker — one
                    // arena gone without reaching the free list. Record
                    // the loss through the quarantine counter (a
                    // zero-sized stand-in; it does not touch `created`),
                    // which is exactly how the engine's executor
                    // accounts for an arena lost to a panicked solver.
                    pool.quarantine(ic_kcore::PeelArena::with_capacity(0, 0));
                }
            }
        }
        for a in out.drain(..) {
            pool.put_arena(a);
        }
        prop_assert_eq!(pool.len(), pool.created() - pool.quarantined());
        // And the pool still serves: a post-chaos take/put round-trips.
        let a = pool.take_arena();
        pool.put_arena(a);
        prop_assert_eq!(pool.len(), pool.created() - pool.quarantined());
    }

    /// Batch composition invariance: a query answered inside a mixed,
    /// duplicate-heavy batch (r-family siblings, repeats, unrelated
    /// queries) must equal the same query answered alone.
    #[test]
    fn batch_composition_does_not_change_answers(wg in arb_workload(), k in 1usize..4) {
        let eng = engine(&wg, 3);
        let probes = [
            Query::new(k, 2, Aggregation::Min),
            Query::new(k, 5, Aggregation::Max),
            Query::new(k, 3, Aggregation::Sum),
        ];
        let mut batch: Vec<Query> = probes.to_vec();
        // Family siblings and exact repeats around the probes.
        batch.push(Query::new(k, 1, Aggregation::Min));
        batch.push(Query::new(k, 9, Aggregation::Min));
        batch.push(Query::new(k, 2, Aggregation::Min));
        batch.push(Query::new(k + 1, 2, Aggregation::Max));
        batch.push(Query::new(k, 3, Aggregation::Sum).approx(0.2));
        let batched = unwrap_batch(eng.run_batch(&batch));
        for (i, q) in probes.iter().enumerate() {
            // A fresh engine per probe keeps the comparison honest: the
            // first engine would answer from its result cache.
            let alone = unwrap_batch(engine(&wg, 3).run_batch(&[*q]));
            prop_assert_eq!(&batched[i], &alone[0], "probe {} changed inside batch", i);
        }
    }
}

/// On tiny graphs the exhaustive maximality-aware oracle anchors all
/// deterministic paths at once.
#[test]
fn exhaustive_oracle_anchors_every_path_on_tiny_graphs() {
    for seed in 0..12u64 {
        let n = 6 + (seed as usize % 5);
        let g = gnm(n, n * 2, GraphSeed(seed));
        let w = uniform_weights(n, 0.5, 20.0, GraphSeed(seed ^ 0xfeed));
        let wg = WeightedGraph::new(g, w).unwrap();
        let eng = engine(&wg, 2);
        for k in 1..3usize {
            for r in [1usize, 2, 50] {
                let exact_min = algo::exact_topr(&wg, k, r, None, Aggregation::Min).unwrap();
                assert_eq!(
                    arena_solve(&wg, Query::new(k, r, Aggregation::Min)),
                    exact_min,
                    "min vs exhaustive seed={seed} k={k} r={r}"
                );
                let exact_sum = algo::exact_topr(&wg, k, r, None, Aggregation::Sum).unwrap();
                let got = unwrap_batch(eng.run_batch(&[Query::new(k, r, Aggregation::Sum)]));
                let gv: Vec<f64> = got[0].iter().map(|c| c.value).collect();
                let ev: Vec<f64> = exact_sum.iter().map(|c| c.value).collect();
                assert_eq!(gv, ev, "sum vs exhaustive seed={seed} k={k} r={r}");
            }
        }
    }
}

/// Explicit edge-case sweep on a planted graph with known structure.
#[test]
fn edge_cases_agree_across_paths() {
    let g = planted_partition(
        &PlantedPartitionConfig {
            communities: 3,
            community_size: 8,
            p_in: 0.8,
            p_out: 0.02,
        },
        GraphSeed(77),
    );
    let n = g.num_vertices();
    let d = degeneracy(&g) as usize;
    assert!(d >= 2, "planted graph must have cohesive blocks");
    let wg = WeightedGraph::new(g, rank_weights(n, GraphSeed(78))).unwrap();
    let eng = engine(&wg, 2);

    // r = 1 and r far beyond the number of communities. The direct path
    // goes through the unified router (`Query::solve`) — no more
    // hand-dispatching per aggregation.
    for agg in [Aggregation::Min, Aggregation::Max] {
        for r in [1usize, 10_000] {
            for k in [1usize, d, d + 1, d + 10] {
                let direct = Query::new(k, r, agg).solve(&wg).unwrap();
                let got = unwrap_batch(eng.run_batch(&[Query::new(k, r, agg)]));
                assert_eq!(got[0], direct, "{} k={k} r={r}", agg.name());
                if k > d {
                    assert!(got[0].is_empty(), "k > degeneracy must be empty");
                }
            }
        }
    }

    // r > #communities returns every community once, identically.
    let all_min = unwrap_batch(eng.run_batch(&[Query::new(2, 10_000, Aggregation::Min)]));
    assert!(!all_min[0].is_empty());
    let again = Query::new(2, 10_000, Aggregation::Min).solve(&wg).unwrap();
    assert_eq!(all_min[0], again);

    // r = 0 is an error on every path.
    assert!(Query::new(2, 0, Aggregation::Min).solve(&wg).is_err());
    assert!(oracle::min_topr(&wg, 2, 0).is_err());
    assert!(eng.run_batch(&[Query::new(2, 0, Aggregation::Min)])[0].is_err());
}

/// Regression (PR 4, satellite): `BalancedDensity`'s `−∞` sentinel must
/// behave identically on every path — a community carrying a weight
/// majority surfaces with its finite value, minority communities rank
/// as `−∞` and are never served as positive hits, and all four paths
/// agree bit for bit.
#[test]
fn balanced_density_sentinel_is_consistent_across_paths() {
    // Two triangles; the heavy one owns ~90% of the total weight, so it
    // is the unique finite-valued community. A third, disconnected
    // light pair pads the total.
    let g =
        ic_graph::graph_from_edges(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (6, 7)]);
    let wg = WeightedGraph::new(g, vec![100.0, 120.0, 110.0, 5.0, 6.0, 7.0, 10.0, 12.0]).unwrap();
    let q = Query::new(2, 3, Aggregation::BalancedDensity).size_bound(6, true);

    let config = LocalSearchConfig {
        k: 2,
        r: 3,
        s: 6,
        greedy: true,
    };
    let seq = algo::local_search(&wg, &config, Aggregation::BalancedDensity).unwrap();
    let arena = arena_solve(&wg, q);
    let batched = unwrap_batch(engine(&wg, 1).run_batch(&[q]));
    let stream = streamed(&wg, q, 1);
    assert_eq!(arena, seq, "arena vs sequential");
    assert_eq!(batched[0], seq, "engine vs sequential");
    assert_eq!(stream, seq, "streamed vs sequential");

    // The majority triangle is found with its finite value; no −∞
    // community is served as a positive hit by the heuristic route.
    assert!(!seq.is_empty(), "majority community must be found");
    for c in &seq {
        assert!(c.value.is_finite(), "served {:?} at −∞", c.vertices);
        let w: f64 = c.vertices.iter().map(|&v| wg.weight(v)).sum();
        assert!(2.0 * w > wg.total_weight(), "finite value implies majority");
    }

    // The exhaustive oracle ranks −∞ (minority) communities last but
    // keeps them — deduped and tie-broken deterministically.
    let all = algo::exact_topr(&wg, 2, 50, None, Aggregation::BalancedDensity).unwrap();
    let finite: Vec<_> = all.iter().filter(|c| c.value.is_finite()).collect();
    let sentinel: Vec<_> = all.iter().filter(|c| !c.value.is_finite()).collect();
    assert!(!finite.is_empty() && !sentinel.is_empty());
    // Finite values strictly precede every sentinel entry.
    let first_sentinel = all.iter().position(|c| !c.value.is_finite()).unwrap();
    assert!(all[first_sentinel..].iter().all(|c| !c.value.is_finite()));
}
