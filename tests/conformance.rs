//! Cross-solver conformance: every path to the same query must give the
//! same answer.
//!
//! For each aggregation (`min`, `max`, `sum`, the size-weighted
//! `sum-surplus`, and constrained `avg`) there are up to four ways to
//! answer a query:
//!
//! * **oracle** — the from-scratch reference solvers
//!   (`ic_core::algo::oracle`, and the exhaustive `exact_topr` on tiny
//!   graphs);
//! * **arena** — the zero-rebuild `PeelArena` solvers (`ic_core::algo`);
//! * **engine-batched** — `ic_engine::Engine::run_batch`, including its
//!   dedup and min/max r-family merging;
//! * **parallel** — `par_local_search` / multi-worker engine execution.
//!
//! The deterministic paths must agree **bit for bit** — same vertex
//! sets, same values, same order — on ER, Barabási-Albert, Chung-Lu,
//! and planted-partition graphs, including the edge cases `r = 1`,
//! `r > #communities`, `k = 1`, and `k > degeneracy`. Heuristic local
//! search is held to the contract its docs state: engine(1 worker) ≡
//! `par_local_search(1 thread)` ≡ sequential `local_search`, and
//! multi-worker results are valid communities of the same cardinality
//! regime. Any future refactor that silently diverges from the oracle
//! semantics fails here first.

use ic_core::algo::{self, oracle, LocalSearchConfig};
use ic_core::verify::check_community;
use ic_core::{Aggregation, Community};
use ic_engine::{Engine, Query};
use ic_gen::{
    barabasi_albert, chung_lu, gnm, pareto_weights, planted_partition, rank_weights,
    uniform_weights, GraphSeed, PlantedPartitionConfig,
};
use ic_graph::{Graph, WeightedGraph};
use ic_kcore::degeneracy;
use proptest::prelude::*;

/// One synthetic workload drawn from the four graph families with a
/// seed-derived weight model.
fn arb_workload() -> impl Strategy<Value = WeightedGraph> {
    (
        0u32..4,      // family: ER / BA / Chung-Lu / planted
        0u32..3,      // weights: uniform / pareto / rank permutation
        24usize..72,  // vertices
        any::<u64>(), // seed
    )
        .prop_map(|(family, weight_model, n, seed)| {
            let g: Graph = match family {
                0 => gnm(n, n * 2, GraphSeed(seed)),
                1 => barabasi_albert(n, 3, GraphSeed(seed)),
                2 => chung_lu(n, n * 2, 2.5, GraphSeed(seed)),
                _ => planted_partition(
                    &PlantedPartitionConfig {
                        communities: 4,
                        community_size: (n / 4).max(2),
                        p_in: 0.6,
                        p_out: 0.03,
                    },
                    GraphSeed(seed),
                ),
            };
            let n = g.num_vertices();
            let w: Vec<f64> = match weight_model {
                0 => uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xabcd)),
                1 => pareto_weights(n, 1.5, GraphSeed(seed ^ 0xabcd)),
                _ => rank_weights(n, GraphSeed(seed ^ 0xabcd)),
            };
            WeightedGraph::new(g, w).unwrap()
        })
}

fn engine(wg: &WeightedGraph, threads: usize) -> Engine {
    Engine::with_threads(wg.clone(), threads)
}

fn unwrap_batch(results: Vec<Result<Vec<Community>, ic_core::SearchError>>) -> Vec<Vec<Community>> {
    results
        .into_iter()
        .map(|r| r.expect("conformance queries are valid"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// min/max: oracle ≡ arena ≡ engine (any thread count), across the
    /// k grid including k = 1 and k > degeneracy, r including 1 and
    /// r > #communities.
    #[test]
    fn node_domination_paths_agree(wg in arb_workload()) {
        let d = degeneracy(wg.graph()) as usize;
        let ks = [1usize, 2, (d / 2).max(1), d + 1];
        let rs = [1usize, 3, 10_000];
        for threads in [1usize, 4] {
            let eng = engine(&wg, threads);
            for &k in &ks {
                for &r in &rs {
                    let batch = [
                        Query::new(k, r, Aggregation::Min),
                        Query::new(k, r, Aggregation::Max),
                    ];
                    let got = unwrap_batch(eng.run_batch(&batch));
                    let arena_min = algo::min_topr(&wg, k, r).unwrap();
                    let oracle_min = oracle::min_topr(&wg, k, r).unwrap();
                    prop_assert_eq!(&arena_min, &oracle_min, "min arena/oracle k={} r={}", k, r);
                    prop_assert_eq!(&got[0], &arena_min, "min engine k={} r={} t={}", k, r, threads);
                    let arena_max = algo::max_topr(&wg, k, r).unwrap();
                    let oracle_max = oracle::max_topr(&wg, k, r).unwrap();
                    prop_assert_eq!(&arena_max, &oracle_max, "max arena/oracle k={} r={}", k, r);
                    prop_assert_eq!(&got[1], &arena_max, "max engine k={} r={} t={}", k, r, threads);
                    if k > d {
                        prop_assert!(got[0].is_empty() && got[1].is_empty(), "k>degeneracy");
                    }
                }
            }
        }
    }

    /// sum / sum-surplus: oracle ≡ arena ≡ engine for Algorithm 1 and
    /// Algorithm 2 (exact and approximate).
    #[test]
    fn removal_decreasing_paths_agree(wg in arb_workload(), k in 1usize..4) {
        let aggs = [Aggregation::Sum, Aggregation::SumSurplus { alpha: 0.75 }];
        let eng = engine(&wg, 2);
        for &agg in &aggs {
            for r in [1usize, 4] {
                let oracle_naive = oracle::sum_naive(&wg, k, r, agg).unwrap();
                let arena_naive = algo::sum_naive(&wg, k, r, agg).unwrap();
                prop_assert_eq!(&arena_naive, &oracle_naive, "naive k={} r={}", k, r);
                let oracle_tic = oracle::tic_improved(&wg, k, r, agg, 0.0).unwrap();
                let arena_tic = algo::tic_improved(&wg, k, r, agg, 0.0).unwrap();
                prop_assert_eq!(&arena_tic, &oracle_tic, "tic k={} r={}", k, r);
                let got = unwrap_batch(eng.run_batch(&[Query::new(k, r, agg)]));
                prop_assert_eq!(&got[0], &arena_tic, "engine k={} r={}", k, r);
                // The two algorithms agree on values (tie-broken sets may
                // legitimately differ between Algorithm 1 and 2).
                let nv: Vec<f64> = arena_naive.iter().map(|c| c.value).collect();
                let tv: Vec<f64> = arena_tic.iter().map(|c| c.value).collect();
                prop_assert_eq!(nv.len(), tv.len());
                for (a, b) in nv.iter().zip(&tv) {
                    prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
                }
            }
            // Approximate mode: engine ≡ arena ≡ oracle at the same ε.
            for eps in [0.1, 0.4] {
                let oracle_eps = oracle::tic_improved(&wg, k, 3, agg, eps).unwrap();
                let arena_eps = algo::tic_improved(&wg, k, 3, agg, eps).unwrap();
                prop_assert_eq!(&arena_eps, &oracle_eps, "eps={}", eps);
                let got = unwrap_batch(eng.run_batch(&[Query::new(k, 3, agg).approx(eps)]));
                prop_assert_eq!(&got[0], &arena_eps, "engine eps={}", eps);
            }
        }
    }

    /// Constrained queries (avg and friends): one engine worker is
    /// bit-identical to sequential local search and single-threaded
    /// par_local_search; multi-worker results are valid communities.
    #[test]
    fn constrained_paths_agree(wg in arb_workload(), k in 1usize..4, greedy in any::<bool>()) {
        let s = k + 4;
        let aggs = [
            Aggregation::Average,
            Aggregation::Min,
            Aggregation::Sum,
            Aggregation::SumSurplus { alpha: 0.25 },
        ];
        for &agg in &aggs {
            let config = LocalSearchConfig { k, r: 3, s, greedy };
            let seq = algo::local_search(&wg, &config, agg).unwrap();
            let par1 = algo::par_local_search(&wg, &config, agg, 1).unwrap();
            prop_assert_eq!(&par1, &seq, "par(1) {}", agg.name());
            let eng1 = engine(&wg, 1);
            let got = unwrap_batch(
                eng1.run_batch(&[Query::new(k, 3, agg).size_bound(s, greedy)]),
            );
            prop_assert_eq!(&got[0], &seq, "engine(1) {}", agg.name());

            let eng4 = engine(&wg, 4);
            let got4 = unwrap_batch(
                eng4.run_batch(&[Query::new(k, 3, agg).size_bound(s, greedy)]),
            );
            for c in &got4[0] {
                prop_assert!(
                    check_community(&wg, k, Some(s), agg, c).is_ok(),
                    "{} multi-worker community invalid: {:?}", agg.name(), c.vertices
                );
            }
        }
    }

    /// Batch composition invariance: a query answered inside a mixed,
    /// duplicate-heavy batch (r-family siblings, repeats, unrelated
    /// queries) must equal the same query answered alone.
    #[test]
    fn batch_composition_does_not_change_answers(wg in arb_workload(), k in 1usize..4) {
        let eng = engine(&wg, 3);
        let probes = [
            Query::new(k, 2, Aggregation::Min),
            Query::new(k, 5, Aggregation::Max),
            Query::new(k, 3, Aggregation::Sum),
        ];
        let mut batch: Vec<Query> = probes.to_vec();
        // Family siblings and exact repeats around the probes.
        batch.push(Query::new(k, 1, Aggregation::Min));
        batch.push(Query::new(k, 9, Aggregation::Min));
        batch.push(Query::new(k, 2, Aggregation::Min));
        batch.push(Query::new(k + 1, 2, Aggregation::Max));
        batch.push(Query::new(k, 3, Aggregation::Sum).approx(0.2));
        let batched = unwrap_batch(eng.run_batch(&batch));
        for (i, q) in probes.iter().enumerate() {
            // A fresh engine per probe keeps the comparison honest: the
            // first engine would answer from its result cache.
            let alone = unwrap_batch(engine(&wg, 3).run_batch(&[*q]));
            prop_assert_eq!(&batched[i], &alone[0], "probe {} changed inside batch", i);
        }
    }
}

/// On tiny graphs the exhaustive maximality-aware oracle anchors all
/// deterministic paths at once.
#[test]
fn exhaustive_oracle_anchors_every_path_on_tiny_graphs() {
    for seed in 0..12u64 {
        let n = 6 + (seed as usize % 5);
        let g = gnm(n, n * 2, GraphSeed(seed));
        let w = uniform_weights(n, 0.5, 20.0, GraphSeed(seed ^ 0xfeed));
        let wg = WeightedGraph::new(g, w).unwrap();
        let eng = engine(&wg, 2);
        for k in 1..3usize {
            for r in [1usize, 2, 50] {
                let exact_min = algo::exact_topr(&wg, k, r, None, Aggregation::Min).unwrap();
                assert_eq!(
                    algo::min_topr(&wg, k, r).unwrap(),
                    exact_min,
                    "min vs exhaustive seed={seed} k={k} r={r}"
                );
                let exact_sum = algo::exact_topr(&wg, k, r, None, Aggregation::Sum).unwrap();
                let got = unwrap_batch(eng.run_batch(&[Query::new(k, r, Aggregation::Sum)]));
                let gv: Vec<f64> = got[0].iter().map(|c| c.value).collect();
                let ev: Vec<f64> = exact_sum.iter().map(|c| c.value).collect();
                assert_eq!(gv, ev, "sum vs exhaustive seed={seed} k={k} r={r}");
            }
        }
    }
}

/// Explicit edge-case sweep on a planted graph with known structure.
#[test]
fn edge_cases_agree_across_paths() {
    let g = planted_partition(
        &PlantedPartitionConfig {
            communities: 3,
            community_size: 8,
            p_in: 0.8,
            p_out: 0.02,
        },
        GraphSeed(77),
    );
    let n = g.num_vertices();
    let d = degeneracy(&g) as usize;
    assert!(d >= 2, "planted graph must have cohesive blocks");
    let wg = WeightedGraph::new(g, rank_weights(n, GraphSeed(78))).unwrap();
    let eng = engine(&wg, 2);

    // r = 1 and r far beyond the number of communities. The direct path
    // goes through the unified router (`Query::solve`) — no more
    // hand-dispatching per aggregation.
    for agg in [Aggregation::Min, Aggregation::Max] {
        for r in [1usize, 10_000] {
            for k in [1usize, d, d + 1, d + 10] {
                let direct = Query::new(k, r, agg).solve(&wg).unwrap();
                let got = unwrap_batch(eng.run_batch(&[Query::new(k, r, agg)]));
                assert_eq!(got[0], direct, "{} k={k} r={r}", agg.name());
                if k > d {
                    assert!(got[0].is_empty(), "k > degeneracy must be empty");
                }
            }
        }
    }

    // r > #communities returns every community once, identically.
    let all_min = unwrap_batch(eng.run_batch(&[Query::new(2, 10_000, Aggregation::Min)]));
    assert!(!all_min[0].is_empty());
    let again = algo::min_topr(&wg, 2, 10_000).unwrap();
    assert_eq!(all_min[0], again);

    // r = 0 is an error on every path.
    assert!(algo::min_topr(&wg, 2, 0).is_err());
    assert!(oracle::min_topr(&wg, 2, 0).is_err());
    assert!(eng.run_batch(&[Query::new(2, 0, Aggregation::Min)])[0].is_err());
}
