//! Cross-solver consistency on realistic workloads: the paper's three
//! unconstrained solvers must agree (Naive ≡ Improve; Approx within the
//! Theorem-6 bound), and every solver's output must verify.

use ic_core::algo::{self, ImprovedOptions};
use ic_core::Query;

/// Algorithm 1 on a fresh snapshot (shared harness; the per-graph free
/// function was removed from the public API in PR 4).
fn sum_naive_on_fresh(
    wg: &ic_graph::WeightedGraph,
    k: usize,
    r: usize,
) -> Result<Vec<ic_core::Community>, ic_core::SearchError> {
    ic_bench::harness::sum_naive(wg, k, r, Aggregation::Sum)
}
use ic_core::verify::check_community;
use ic_core::Aggregation;
use ic_gen::datasets::{by_name, Profile};

fn email() -> ic_graph::WeightedGraph {
    by_name(Profile::Quick, "email")
        .unwrap()
        .generate_weighted()
}

#[test]
fn naive_equals_improved_on_email() {
    let wg = email();
    for k in [4usize, 8] {
        for r in [1usize, 5] {
            let naive = sum_naive_on_fresh(&wg, k, r).unwrap();
            let improved = Query::new(k, r, Aggregation::Sum).solve(&wg).unwrap();
            let nv: Vec<f64> = naive.iter().map(|c| c.value).collect();
            let iv: Vec<f64> = improved.iter().map(|c| c.value).collect();
            assert_eq!(nv.len(), iv.len(), "k={k} r={r}");
            for (a, b) in nv.iter().zip(&iv) {
                assert!((a - b).abs() < 1e-9, "k={k} r={r}: {nv:?} vs {iv:?}");
            }
        }
    }
}

#[test]
fn approx_bound_holds_across_epsilons_on_email() {
    let wg = email();
    let k = 4;
    let r = 5;
    let exact = Query::new(k, r, Aggregation::Sum).solve(&wg).unwrap();
    let re = exact.last().unwrap().value;
    for eps in [0.01, 0.05, 0.1, 0.2, 0.5] {
        let approx = Query::new(k, r, Aggregation::Sum)
            .approx(eps)
            .solve(&wg)
            .unwrap();
        assert_eq!(approx.len(), r);
        let ra = approx.last().unwrap().value;
        assert!(ra >= (1.0 - eps) * re - 1e-9, "eps={eps}: ra={ra} re={re}");
        for c in &approx {
            check_community(&wg, k, None, Aggregation::Sum, c).unwrap();
        }
    }
}

#[test]
fn pruning_ablations_preserve_exactness() {
    let wg = email();
    let base = Query::new(6, 5, Aggregation::Sum).solve(&wg).unwrap();
    for opts in [
        ImprovedOptions {
            epsilon: 0.0,
            prune_by_threshold: false,
            trim_candidates: true,
        },
        ImprovedOptions {
            epsilon: 0.0,
            prune_by_threshold: true,
            trim_candidates: false,
        },
    ] {
        let got = algo::tic_improved_with_options(&wg, 6, 5, Aggregation::Sum, opts).unwrap();
        let gv: Vec<f64> = got.iter().map(|c| c.value).collect();
        let bv: Vec<f64> = base.iter().map(|c| c.value).collect();
        for (a, b) in gv.iter().zip(&bv) {
            assert!((a - b).abs() < 1e-9, "{opts:?}");
        }
    }
}

#[test]
fn min_and_max_baselines_verify_on_email() {
    let wg = email();
    let min = Query::new(6, 5, Aggregation::Min).solve(&wg).unwrap();
    assert!(!min.is_empty());
    for c in &min {
        check_community(&wg, 6, None, Aggregation::Min, c).unwrap();
    }
    // Values are non-increasing.
    for w in min.windows(2) {
        assert!(w[0].value >= w[1].value);
    }
    let max = Query::new(6, 5, Aggregation::Max).solve(&wg).unwrap();
    for c in &max {
        check_community(&wg, 6, None, Aggregation::Max, c).unwrap();
    }
    // max top-1 contains the heaviest core vertex and dominates min top-1.
    assert!(max[0].value >= min[0].value);
}

#[test]
fn parallel_and_sequential_local_search_agree_on_quality() {
    let wg = email();
    let config = algo::LocalSearchConfig {
        k: 4,
        r: 5,
        s: 20,
        greedy: true,
    };
    let seq = algo::local_search(&wg, &config, Aggregation::Average).unwrap();
    let one = algo::par_local_search(&wg, &config, Aggregation::Average, 1).unwrap();
    assert_eq!(one, seq, "threads = 1 must be exactly sequential");
    for threads in [2usize, 4] {
        let par = algo::par_local_search(&wg, &config, Aggregation::Average, threads).unwrap();
        assert_eq!(par.len(), seq.len());
        for c in &par {
            check_community(&wg, 4, Some(20), Aggregation::Average, c).unwrap();
        }
        // Thread-local thresholds may shift greedy acceptance slightly in
        // either direction; demand the merged answer stays in the same
        // ballpark as the sequential one.
        assert!(par[0].value >= 0.5 * seq[0].value);
    }
}

#[test]
fn sum_surplus_tracks_sum_plus_alpha_times_size() {
    let wg = email();
    let sum = Query::new(4, 3, Aggregation::Sum).solve(&wg).unwrap();
    let surplus = Query::new(4, 3, Aggregation::SumSurplus { alpha: 0.001 })
        .solve(&wg)
        .unwrap();
    // With PageRank weights summing to 1 and communities of hundreds of
    // vertices, a per-member bonus shifts values but both solvers return
    // valid communities.
    for (c, agg) in sum.iter().map(|c| (c, Aggregation::Sum)).chain(
        surplus
            .iter()
            .map(|c| (c, Aggregation::SumSurplus { alpha: 0.001 })),
    ) {
        check_community(&wg, 4, None, agg, c).unwrap();
    }
}
