//! The certificate-validation harness, end to end.
//!
//! Three things are pinned here:
//!
//! 1. **Every aggregation certifies** — all built-ins (across their
//!    parameter grids) and every registered custom function pass the
//!    sampled certificate checks on proptest-randomized weight
//!    multisets (CI runs this under the randomized session seed, so
//!    each run explores fresh inputs);
//! 2. **Mis-declared certificates are caught** — a function claiming a
//!    property it does not have is rejected by
//!    [`Aggregation::custom`] at registration, before it can touch a
//!    ranking;
//! 3. **User-defined aggregations are served end to end** — an
//!    [`AggregateFn`] defined *in this test crate* (outside `ic-core`)
//!    flows through `QueryBuilder` → `Engine::run_batch` and
//!    `Engine::submit` with correct, cache-safe, bit-reproducible
//!    results, on both the polynomial (TIC) and the NP-hard (local
//!    search) routes.

use ic_core::algo::{self, LocalSearchConfig};
use ic_core::certify::{certify, certify_with};
use ic_core::verify::check_community;
use ic_core::{AggregateFn, Aggregation, Certificates, Community, StateView, TieSemantics};
use ic_engine::{Engine, Query};
use ic_gen::{barabasi_albert, gnm, uniform_weights, GraphSeed};
use ic_graph::WeightedGraph;
use proptest::prelude::*;
use std::sync::OnceLock;

// ---------------------------------------------------------------------
// Custom aggregations defined OUTSIDE ic-core.
// ---------------------------------------------------------------------

/// `f(H) = factor · Σ w(v)`: removal-decreasing with an exact O(1)
/// remove delta, so the router sends it down the zero-rebuild TIC path
/// — automatically, from the declared certificates alone.
#[derive(Debug)]
struct ScaledSum {
    factor: f64,
}

impl AggregateFn for ScaledSum {
    fn name(&self) -> &str {
        "scaled-sum"
    }
    fn certificates(&self) -> Certificates {
        Certificates {
            removal_decreasing: true,
            size_proportional: true,
            incremental_removal: true,
            hardness_unconstrained: ic_core::Hardness::Polynomial,
            ..Certificates::opaque()
        }
    }
    fn param_key(&self) -> u64 {
        ic_core::aggregate::canonical_f64_bits(self.factor)
    }
    fn validate(&self) -> Result<(), String> {
        if !(self.factor.is_finite() && self.factor > 0.0) {
            return Err(format!(
                "factor must be positive finite, got {}",
                self.factor
            ));
        }
        Ok(())
    }
    fn evaluate(&self, w: &[f64], _total: f64) -> f64 {
        let s: f64 = w.iter().sum();
        self.factor * s
    }
    fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
        parent_value - self.factor * removed_weight
    }
    fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
        self.factor * state.sum()
    }
}

/// `f(H) = max w − min w` (the influence spread): an opaque NP-hard
/// declaration with order statistics — served through the
/// size-constrained local-search route.
#[derive(Debug)]
struct Spread;

impl AggregateFn for Spread {
    fn name(&self) -> &str {
        "spread"
    }
    fn certificates(&self) -> Certificates {
        Certificates {
            needs_multiset: true,
            ..Certificates::opaque()
        }
    }
    fn evaluate(&self, w: &[f64], _total: f64) -> f64 {
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
    fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
        state.max_weight().expect("non-empty") - state.min_weight().expect("non-empty")
    }
}

fn scaled_sum() -> Aggregation {
    static HANDLE: OnceLock<Aggregation> = OnceLock::new();
    *HANDLE.get_or_init(|| Aggregation::custom(ScaledSum { factor: 2.0 }).expect("certifies"))
}

fn spread() -> Aggregation {
    static HANDLE: OnceLock<Aggregation> = OnceLock::new();
    *HANDLE.get_or_init(|| Aggregation::custom(Spread).expect("certifies"))
}

fn fixture(seed: u64, n: usize) -> WeightedGraph {
    let g = barabasi_albert(n, 3, GraphSeed(seed));
    let w = uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xfeed));
    WeightedGraph::new(g, w).unwrap()
}

/// The built-ins plus a parameter sweep (what the CI randomized leg
/// certifies every run).
fn certifiable_aggregations() -> Vec<Aggregation> {
    let mut all = Aggregation::builtins();
    all.extend([
        Aggregation::SumSurplus { alpha: 0.0 },
        Aggregation::SumSurplus { alpha: -1.5 },
        Aggregation::WeightDensity { beta: 3.0 },
        Aggregation::TopTSum { t: 1 },
        Aggregation::TopTSum { t: 64 },
        Aggregation::Percentile { p: 0.0 },
        Aggregation::Percentile { p: 1.0 },
        Aggregation::Percentile { p: 0.9 },
    ]);
    all.push(scaled_sum());
    all.push(spread());
    all.extend(Aggregation::registered_customs());
    all
}

// ---------------------------------------------------------------------
// 1. Randomized certification sweep (the proptest entry point).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every built-in (across parameters) and every registered custom
    /// aggregation passes the certificate checks on random multisets.
    #[test]
    fn all_registered_aggregations_certify_on_random_samples(
        samples in proptest::collection::vec(
            proptest::collection::vec(0.1f64..64.0, 1..12), 1..6),
    ) {
        for agg in certifiable_aggregations() {
            prop_assert!(
                certify_with(&agg, &samples).is_ok(),
                "{} failed certification on {:?}", agg.name(), samples
            );
        }
    }

    /// A deliberately mis-declared certificate is falsified by random
    /// samples too (any multiset of two or more distinct weights is a
    /// counterexample to "average strictly decreases on removal").
    #[test]
    fn mis_declared_certificate_is_caught_on_random_samples(
        mut samples in proptest::collection::vec(
            proptest::collection::vec(0.1f64..64.0, 2..10), 1..4),
    ) {
        #[derive(Debug)]
        struct LyingAverage;
        impl AggregateFn for LyingAverage {
            fn name(&self) -> &str { "lying-average" }
            fn certificates(&self) -> Certificates {
                Certificates {
                    removal_decreasing: true, // false claim
                    ..Certificates::opaque()
                }
            }
            fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
                w.iter().sum::<f64>() / w.len() as f64
            }
            fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
                state.sum() / state.len() as f64
            }
        }
        // Ensure at least one sample has ≥ 2 members (generator already
        // guarantees it, but keep the counterexample explicit).
        samples.push(vec![1.0, 2.0, 3.0]);
        let agg = Aggregation::custom(LyingAverage);
        prop_assert!(agg.is_err(), "registration must reject the false certificate");
        // And the standalone harness agrees on these specific samples.
        let e = ic_core::certify::certify_fn_with(&LyingAverage, &samples).unwrap_err();
        prop_assert_eq!(e.certificate, "removal_decreasing");
    }
}

#[test]
fn default_battery_certifies_everything_registered() {
    for agg in certifiable_aggregations() {
        certify(&agg).unwrap_or_else(|e| panic!("{} failed: {e}", agg.name()));
    }
}

// ---------------------------------------------------------------------
// 2. Custom aggregations served end to end.
// ---------------------------------------------------------------------

/// The TIC-routed custom function: built through `QueryBuilder`,
/// answered by `run_batch` and `submit`, bit-reproducible across
/// engines and served from the result cache on repetition.
#[test]
fn custom_tic_aggregation_flows_through_builder_batch_and_stream() {
    let wg = fixture(2022, 60);
    let agg = scaled_sum();

    // QueryBuilder accepts and routes it by certificates.
    let q = Query::builder(2, 4, agg)
        .build()
        .expect("valid custom query");
    assert_eq!(q.solver().unwrap(), ic_engine::Solver::TicExact);

    // Correctness anchor: factor · sum ranks exactly like sum, with
    // values scaled by the factor.
    let direct = q.solve(&wg).unwrap();
    let sum_ref = Query::new(2, 4, Aggregation::Sum).solve(&wg).unwrap();
    assert_eq!(direct.len(), sum_ref.len());
    for (c, s) in direct.iter().zip(&sum_ref) {
        assert_eq!(c.vertices, s.vertices, "scaled-sum must rank like sum");
        assert!((c.value - 2.0 * s.value).abs() < 1e-9);
        check_community(&wg, 2, None, agg, c).unwrap();
    }

    // Engine batch ≡ direct; repeated batch is served from the
    // epoch-tagged cache bit-identically; a fresh engine reproduces the
    // same bits.
    let eng = Engine::with_threads(wg.clone(), 2);
    let first = eng.run_batch(&[q])[0].clone().unwrap();
    assert_eq!(first, direct, "engine vs direct");
    let cached = eng.run_batch(&[q])[0].clone().unwrap();
    assert_eq!(cached, first, "cache hit must be bit-identical");
    let fresh = Engine::with_threads(wg.clone(), 2).run_batch(&[q])[0]
        .clone()
        .unwrap();
    assert_eq!(fresh, first, "bit-reproducible across engines");

    // Progressive stream: full drain and genuine prefixes match.
    let drained: Vec<Community> = eng.submit(q).unwrap().collect();
    assert_eq!(drained, first, "streamed vs batch");
    let prefix: Vec<Community> = Engine::with_threads(wg.clone(), 2)
        .submit(q)
        .unwrap()
        .take(2)
        .collect();
    assert_eq!(prefix.as_slice(), &first[..2], "stream prefix");

    // r-family merging serves the custom aggregation too: mixed-r
    // batches equal the one-at-a-time answers.
    let family = [
        Query::new(2, 1, agg),
        Query::new(2, 4, agg),
        Query::new(2, 2, agg),
    ];
    let merged = eng.run_batch(&family);
    for (q, res) in family.iter().zip(&merged) {
        let alone = Engine::with_threads(wg.clone(), 2).run_batch(&[*q])[0]
            .clone()
            .unwrap();
        assert_eq!(res.clone().unwrap(), alone, "family member r={}", q.r);
    }
}

/// The locally-searched custom function: size-bounded route, engine(1)
/// ≡ sequential local search, stream buffered identically.
#[test]
fn custom_opaque_aggregation_flows_through_local_search_route() {
    let wg = fixture(7, 48);
    let agg = spread();

    let q = Query::builder(2, 3, agg)
        .size_bound(6, true)
        .build()
        .expect("valid custom query");
    assert_eq!(q.solver().unwrap(), ic_engine::Solver::LocalSearch);
    // Unconstrained is rejected: no polynomial certificate declared.
    assert!(Query::builder(2, 3, agg).build().is_err());

    let config = LocalSearchConfig {
        k: 2,
        r: 3,
        s: 6,
        greedy: true,
    };
    let seq = algo::local_search(&wg, &config, agg).unwrap();
    let direct = q.solve(&wg).unwrap();
    assert_eq!(direct, seq, "router vs sequential");

    let eng = Engine::with_threads(wg.clone(), 1);
    let batched = eng.run_batch(&[q])[0].clone().unwrap();
    assert_eq!(batched, seq, "engine(1) vs sequential");
    let drained: Vec<Community> = eng.submit(q).unwrap().collect();
    assert_eq!(drained, seq, "streamed vs sequential");
    for c in &seq {
        check_community(&wg, 2, Some(6), agg, c).unwrap();
    }
}

/// A custom aggregation declaring `TieSemantics::Approximate` still
/// answers correctly — the planner just refuses to merge its
/// r-families (each query runs alone) — and batch answers equal the
/// one-at-a-time answers.
#[test]
fn approximate_tie_semantics_disable_family_merging_but_not_service() {
    #[derive(Debug)]
    struct NoTieSum;
    impl AggregateFn for NoTieSum {
        fn name(&self) -> &str {
            "no-tie-sum"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                removal_decreasing: true,
                size_proportional: true,
                incremental_removal: true,
                hardness_unconstrained: ic_core::Hardness::Polynomial,
                ties: TieSemantics::Approximate,
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
            w.iter().sum()
        }
        fn value_after_removal(&self, parent: f64, w: f64) -> f64 {
            parent - w
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.sum()
        }
    }
    static HANDLE: OnceLock<Aggregation> = OnceLock::new();
    let agg = *HANDLE.get_or_init(|| Aggregation::custom(NoTieSum).expect("certifies"));

    let wg = fixture(99, 40);
    let eng = Engine::with_threads(wg.clone(), 2);
    let family = [Query::new(2, 1, agg), Query::new(2, 3, agg)];
    let res = eng.run_batch(&family);
    for (q, r) in family.iter().zip(&res) {
        let alone = q.solve(&wg).unwrap();
        assert_eq!(r.clone().unwrap(), alone, "r={}", q.r);
        // And it answers exactly like plain sum.
        let sum_ref = Query::new(q.k, q.r, Aggregation::Sum).solve(&wg).unwrap();
        assert_eq!(r.clone().unwrap(), sum_ref);
    }
}

/// New built-ins answer through the same end-to-end surfaces on a
/// second graph family (gnm), with value semantics spot-checked.
#[test]
fn new_builtins_serve_end_to_end() {
    let g = gnm(50, 120, GraphSeed(5));
    let w = uniform_weights(50, 1.0, 9.0, GraphSeed(6));
    let wg = WeightedGraph::new(g, w).unwrap();
    let eng = Engine::with_threads(wg.clone(), 1);
    for agg in [
        Aggregation::TopTSum { t: 3 },
        Aggregation::Percentile { p: 0.5 },
        Aggregation::GeometricMean,
    ] {
        let q = Query::builder(2, 2, agg)
            .size_bound(6, true)
            .build()
            .unwrap();
        let direct = q.solve(&wg).unwrap();
        let batched = eng.run_batch(&[q])[0].clone().unwrap();
        let drained: Vec<Community> = Engine::with_threads(wg.clone(), 1)
            .submit(q)
            .unwrap()
            .collect();
        assert_eq!(batched, direct, "{}", agg.name());
        assert_eq!(drained, direct, "{}", agg.name());
        for c in &direct {
            check_community(&wg, 2, Some(6), agg, c).unwrap();
        }
    }
}
