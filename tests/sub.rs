//! Standing-query conformance: the deltas a [`SubscriptionManager`]
//! streams are **defined** to equal diffing two full re-solves — the
//! journal pruning, index repair, and answer caching in between are
//! pure optimization and must be observationally invisible.
//!
//! Property-based over ER / Barabási-Albert / Chung-Lu graphs and
//! randomized update scripts (mixed inserts and removes, including
//! no-ops and duplicates). For every batch of every script:
//!
//! * a subscription is notified **iff** a fresh re-solve of its query
//!   on a twin engine (same script, no subscription machinery) yields
//!   a different answer;
//! * the notification's deltas equal `diff_answers(old, new)` of the
//!   twin's answers, and replaying them onto the old answer reproduces
//!   the new one bit-for-bit;
//! * epochs advance in lockstep on both engines;
//! * an unsubscribed query is never notified again, and its removal
//!   does not perturb anyone else's stream.

use ic_core::{Aggregation, Community, Query};
use ic_engine::{EdgeUpdate, Engine};
use ic_gen::{
    barabasi_albert, chung_lu, gnm, pareto_weights, rank_weights, uniform_weights, GraphSeed,
};
use ic_graph::{Graph, WeightedGraph};
use ic_sub::{diff_answers, replay, SubscriptionManager};
use proptest::prelude::*;
use std::sync::Arc;

/// One synthetic workload from the three random-graph families the
/// delta contract is asserted over, with a tie-heavy weight model in
/// the mix (rank collisions are where a sloppy diff would misattribute
/// a `RankMoved` as a leave/enter pair).
fn arb_workload() -> impl Strategy<Value = WeightedGraph> {
    (
        0u32..3,      // family: ER / BA / Chung-Lu
        0u32..4,      // weights: uniform / pareto / rank / quantized ties
        20usize..64,  // vertices
        any::<u64>(), // seed
    )
        .prop_map(|(family, weight_model, n, seed)| {
            let g: Graph = match family {
                0 => gnm(n, n * 2, GraphSeed(seed)),
                1 => barabasi_albert(n, 3, GraphSeed(seed)),
                _ => chung_lu(n, n * 2, 2.5, GraphSeed(seed)),
            };
            let n = g.num_vertices();
            let w: Vec<f64> = match weight_model {
                0 => uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xabcd)),
                1 => pareto_weights(n, 1.5, GraphSeed(seed ^ 0xabcd)),
                2 => rank_weights(n, GraphSeed(seed ^ 0xabcd)),
                _ => (0..n).map(|i| ((i * 7 + 3) % 5) as f64 + 1.0).collect(),
            };
            WeightedGraph::new(g, w).unwrap()
        })
}

/// A randomized update script: batches of abstract (insert?, u, v)
/// ops, folded onto the graph's vertex range at runtime. Removes of
/// absent edges and inserts of present ones are deliberately in
/// distribution — no-op batches must notify nobody.
fn arb_script() -> impl Strategy<Value = Vec<Vec<(bool, u32, u32)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), any::<u32>(), any::<u32>()), 1..8),
        1..5,
    )
}

/// Folds one abstract batch onto concrete vertex ids, dropping
/// self-loops (not representable as edges).
fn concrete_batch(batch: &[(bool, u32, u32)], n: usize) -> Vec<EdgeUpdate> {
    batch
        .iter()
        .filter_map(|&(insert, a, b)| {
            let u = a % n as u32;
            let v = b % n as u32;
            if u == v {
                return None;
            }
            Some(if insert {
                EdgeUpdate::Insert { u, v }
            } else {
                EdgeUpdate::Remove { u, v }
            })
        })
        .collect()
}

/// The standing mix: extremal and sum families across small (k, r),
/// covering both the index-repair refresh path and the full peel.
fn standing_mix() -> Vec<Query> {
    vec![
        Query::new(2, 1, Aggregation::Min),
        Query::new(2, 3, Aggregation::Max),
        Query::new(3, 2, Aggregation::Min),
        Query::new(2, 2, Aggregation::Sum),
        Query::new(3, 1, Aggregation::Max),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline contract, end to end over a whole script: every
    /// notification equals the twin-engine re-solve diff, silence means
    /// a bit-identical answer, and epochs stay in lockstep.
    #[test]
    fn deltas_match_the_full_resolve_oracle(
        wg in arb_workload(),
        script in arb_script(),
    ) {
        let n = wg.num_vertices();
        let queries = standing_mix();

        let manager = SubscriptionManager::new(Arc::new(Engine::with_threads(wg.clone(), 1)));
        let twin = Engine::with_threads(wg, 1);

        let mut ids = Vec::with_capacity(queries.len());
        let mut held: Vec<Vec<Community>> = Vec::with_capacity(queries.len());
        for q in &queries {
            let sub = manager.subscribe(*q).expect("subscribe");
            let oracle = twin.run_batch(&[*q])[0].clone().expect("twin answers");
            prop_assert_eq!(&sub.answer, &oracle, "initial answer must match a fresh solve");
            ids.push(sub.id);
            held.push(sub.answer);
        }

        // Drop one subscription after the first batch: the rest of the
        // script must keep satisfying the oracle for everyone else
        // while the dead id stays silent.
        let mut dropped: Option<usize> = None;

        for (step, batch) in script.iter().enumerate() {
            let updates = concrete_batch(batch, n);
            if updates.is_empty() {
                continue;
            }
            let report = manager.apply(&updates).expect("apply");
            let twin_epoch = twin.try_apply(&updates).expect("twin apply");
            prop_assert_eq!(report.epoch, twin_epoch, "epochs must advance in lockstep");
            prop_assert!(report.failed.is_empty(), "no deadline-free refresh may fail");

            for (i, q) in queries.iter().enumerate() {
                let new = twin.run_batch(&[*q])[0].clone().expect("twin re-solve");
                let notification = report.notifications.iter().find(|x| x.id == ids[i]);
                if dropped == Some(i) {
                    prop_assert!(
                        notification.is_none(),
                        "unsubscribed query notified at step {}", step
                    );
                    held[i] = new;
                    continue;
                }
                let want = diff_answers(&held[i], &new);
                match notification {
                    Some(x) => {
                        prop_assert!(
                            !want.is_empty(),
                            "notified at step {} but the oracle answer is unchanged", step
                        );
                        prop_assert_eq!(&x.deltas, &want, "delta mismatch at step {}", step);
                        prop_assert_eq!(
                            replay(&held[i], &x.deltas), new.clone(),
                            "replay must reproduce the oracle answer at step {}", step
                        );
                        prop_assert_eq!(&x.answer, &new);
                        prop_assert_eq!(x.epoch, report.epoch);
                    }
                    None => prop_assert!(
                        want.is_empty(),
                        "oracle changed at step {} but no notification arrived: {:?}",
                        step, want
                    ),
                }
                held[i] = new;
            }

            if step == 0 {
                let victim = 1usize;
                prop_assert!(manager.unsubscribe(ids[victim]));
                dropped = Some(victim);
            }
        }

        // The journal's accounting must cover exactly the live
        // subscriptions on every changed apply.
        let stats = manager.stats();
        prop_assert_eq!(stats.subscriptions, queries.len() - dropped.map_or(0, |_| 1));
    }
}
