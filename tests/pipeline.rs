//! End-to-end pipeline tests: generate → weight → search → verify,
//! spanning every crate in the workspace.

use ic_centrality::{degree_centrality, pagerank, PageRankConfig};
use ic_core::algo::{self, LocalSearchConfig};
use ic_core::verify::check_community;
use ic_core::{Aggregation, Query};
use ic_gen::datasets::{by_name, Profile};
use ic_gen::{aminer_network, GraphSeed};
use ic_graph::{io, WeightedGraph};
use ic_kcore::core_decomposition;

#[test]
fn generate_pagerank_search_verify_email() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let wg = spec.generate_weighted();

    // The dataset supports its full k grid.
    let kmax = core_decomposition(wg.graph()).max_core as usize;
    assert!(kmax >= *spec.k_grid.last().unwrap());

    // Unconstrained search: Improve and Approx agree within the bound.
    let k = spec.default_k;
    let exact = Query::new(k, 5, Aggregation::Sum).solve(&wg).unwrap();
    assert_eq!(exact.len(), 5);
    let approx = Query::new(k, 5, Aggregation::Sum)
        .approx(0.1)
        .solve(&wg)
        .unwrap();
    assert!(approx.last().unwrap().value >= 0.9 * exact.last().unwrap().value - 1e-12);
    for c in exact.iter().chain(&approx) {
        check_community(&wg, k, None, Aggregation::Sum, c).unwrap();
    }

    // Constrained search returns verifiable size-bounded communities.
    let config = LocalSearchConfig {
        k: 4,
        r: 5,
        s: 20,
        greedy: true,
    };
    for agg in [Aggregation::Sum, Aggregation::Average] {
        let res = algo::local_search(&wg, &config, agg).unwrap();
        assert!(!res.is_empty(), "{}", agg.name());
        for c in &res {
            check_community(&wg, 4, Some(20), agg, c).unwrap();
        }
    }
}

#[test]
fn graph_round_trips_through_store_and_text_io() {
    let spec = by_name(Profile::Quick, "dblp").unwrap();
    let g = spec.generate();

    // Binary caching goes through the unified ICS1 store since PR 5
    // (the ad-hoc ICG1 format is gone): graph + weights round-trip
    // bit-for-bit through one checksummed file.
    let w = pagerank(&g, &PageRankConfig::default());
    let wg = WeightedGraph::new(g.clone(), w).unwrap();
    let bin = ic_store::StoreBuilder::new(&wg).to_bytes().unwrap();
    let wg2 = ic_store::StoreFile::from_bytes(&bin)
        .unwrap()
        .graph()
        .unwrap();
    assert_eq!(&g, wg2.graph());
    assert_eq!(wg.weights(), wg2.weights());

    let mut text = Vec::new();
    io::write_edge_list(&g, &mut text).unwrap();
    let g3 = io::read_edge_list(&text[..]).unwrap();
    assert_eq!(
        g.edges().collect::<Vec<_>>(),
        g3.edges().collect::<Vec<_>>()
    );

    // Search results on the round-tripped graph are identical.
    let a = Query::new(4, 3, Aggregation::Sum).solve(&wg).unwrap();
    let b = Query::new(4, 3, Aggregation::Sum).solve(&wg2).unwrap();
    assert_eq!(a, b);
}

#[test]
fn alternative_centralities_plug_in_as_weights() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let g = spec.generate();

    // Degree and neighborhood-H-index weights both drive a valid search.
    for weights in [degree_centrality(&g), ic_centrality::neighbor_hindex(&g)] {
        let wg = WeightedGraph::new(g.clone(), weights).unwrap();
        let res = Query::new(4, 3, Aggregation::Min).solve(&wg).unwrap();
        for c in &res {
            check_community(&wg, 4, None, Aggregation::Min, c).unwrap();
        }
    }
}

#[test]
fn case_study_recovers_planted_groups() {
    let net = aminer_network(GraphSeed(2022));

    // min over i10: top-1 must be exactly the pioneers.
    let wg = net.weighted_by_i10();
    let top = algo::nonoverlap::min_topr_nonoverlapping(&wg, 4, 3).unwrap();
    let pioneers = net.group("db-pioneers").unwrap();
    let mut expected = pioneers.members.clone();
    expected.sort_unstable();
    assert_eq!(top[0].vertices, expected);
    assert_eq!(top[0].value, 90.0);
    // top-2 is the imaging core (without Penney), top-3 the informatics
    // group.
    assert_eq!(top[1].value, 70.0);
    assert_eq!(top[2].value, 60.0);

    // avg over G-index: top-1 is inside db-systems.
    let wg = net.weighted_by_gindex();
    let config = LocalSearchConfig {
        k: 4,
        r: 3,
        s: 7,
        greedy: true,
    };
    let top = algo::local_search_nonoverlapping(&wg, &config, Aggregation::Average).unwrap();
    let systems = net.group("db-systems").unwrap();
    assert!(
        top[0].vertices.iter().all(|v| systems.members.contains(v)),
        "avg top-1 should be a db-systems subset: {:?}",
        top[0].vertices
    );
    assert!(top[0].value > 90.0);

    // sum over citations: top-1 is exactly db-systems.
    let wg = net.weighted_by_citations();
    let config = LocalSearchConfig {
        k: 4,
        r: 3,
        s: 6,
        greedy: true,
    };
    let top = algo::local_search_nonoverlapping(&wg, &config, Aggregation::Sum).unwrap();
    let mut expected = systems.members.clone();
    expected.sort_unstable();
    assert_eq!(top[0].vertices, expected);
    assert_eq!(top[0].value, 57_500.0);
}

#[test]
fn all_quick_datasets_generate_and_search() {
    for spec in ic_gen::datasets::registry(Profile::Quick) {
        let wg = spec.generate_weighted();
        assert_eq!(wg.num_vertices(), spec.n);
        let k = spec.default_k;
        let res = Query::new(k, 3, Aggregation::Sum)
            .approx(0.1)
            .solve(&wg)
            .unwrap();
        assert!(!res.is_empty(), "{} found no communities", spec.name);
        for c in &res {
            check_community(&wg, k, None, Aggregation::Sum, c).unwrap();
        }
    }
}
