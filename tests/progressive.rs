//! The progressive-session and mutable-engine contracts, held as
//! property tests (PR 3's acceptance criteria):
//!
//! 1. **Stream-prefix conformance** — for every solver path and any
//!    `n`, `submit(q).take(n)` equals the first `n` entries of
//!    `run_batch(&[q])`, bit for bit, on ER / Barabási-Albert /
//!    Chung-Lu / planted graphs (including tie-heavy weight models and
//!    the edge cases `r = 1`, `r > #communities`, `k > degeneracy`).
//! 2. **Post-`apply` conformance** — after any script of edge
//!    insertions/deletions, the engine answers every query exactly like
//!    a *fresh* engine built from scratch on the mutated graph, the
//!    epoch advances, and pre-update cache entries are never served.
//! 3. **Isolation** — streams opened before an `apply` keep answering
//!    on the snapshot they were submitted against.

use ic_core::Aggregation;
use ic_engine::prelude::*;
use ic_gen::{
    barabasi_albert, chung_lu, gnm, pareto_weights, planted_partition, rank_weights,
    uniform_weights, GraphSeed, PlantedPartitionConfig,
};
use ic_graph::{Graph, WeightedGraph};
use proptest::prelude::*;

/// One synthetic workload drawn from the four graph families with a
/// seed-derived weight model (the tie-heavy rank model included).
fn arb_workload() -> impl Strategy<Value = WeightedGraph> {
    (
        0u32..4,      // family: ER / BA / Chung-Lu / planted
        0u32..3,      // weights: uniform / pareto / rank permutation
        24usize..64,  // vertices
        any::<u64>(), // seed
    )
        .prop_map(|(family, weight_model, n, seed)| {
            let g: Graph = match family {
                0 => gnm(n, n * 2, GraphSeed(seed)),
                1 => barabasi_albert(n, 3, GraphSeed(seed)),
                2 => chung_lu(n, n * 2, 2.5, GraphSeed(seed)),
                _ => planted_partition(
                    &PlantedPartitionConfig {
                        communities: 4,
                        community_size: (n / 4).max(2),
                        p_in: 0.6,
                        p_out: 0.03,
                    },
                    GraphSeed(seed),
                ),
            };
            let n = g.num_vertices();
            let w: Vec<f64> = match weight_model {
                0 => uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xabcd)),
                1 => pareto_weights(n, 1.5, GraphSeed(seed ^ 0xabcd)),
                _ => rank_weights(n, GraphSeed(seed ^ 0xabcd)),
            };
            WeightedGraph::new(g, w).unwrap()
        })
}

/// The queries whose progressive paths the suite pins: every solver
/// route the engine streams (min/max incremental, exact TIC
/// incremental, approximate TIC buffered, local-search buffered).
fn probe_queries(k: usize, r: usize) -> Vec<Query> {
    vec![
        Query::new(k, r, Aggregation::Min),
        Query::new(k, r, Aggregation::Max),
        Query::new(k, r, Aggregation::Sum),
        Query::new(k, r, Aggregation::SumSurplus { alpha: 0.5 }),
        Query::new(k, r, Aggregation::Sum).approx(0.2),
        Query::new(k, r, Aggregation::Average).size_bound(k + 4, true),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// submit(q).take(n) ≡ run_batch(&[q])[..n] bit for bit, for every
    /// solver path and a spread of n, including full drains.
    #[test]
    fn stream_prefix_equals_batch_prefix(wg in arb_workload(), k in 1usize..4) {
        let eng = Engine::with_threads(wg.clone(), 2);
        for r in [1usize, 4, 10_000] {
            for q in probe_queries(k, r) {
                // The heuristic local-search path is only bit-pinned
                // across *runs* at one worker; at two workers its
                // stream/batch agreement is guaranteed through the
                // shared cache entry, so we only clear the cache (to
                // force a live stream) on the deterministic paths. The
                // live constrained path is covered at one worker below.
                let deterministic = !matches!(q.solver().unwrap(), Solver::LocalSearch);
                let batch = eng.run_batch(&[q])[0].clone().unwrap();
                if deterministic {
                    eng.clear_result_cache();
                }
                let streamed: Vec<Community> = eng.submit(q).unwrap().collect();
                prop_assert_eq!(&streamed, &batch, "full drain {:?}", q);
                // Genuine prefixes: a fresh stream per n, cancelled early.
                for n in [0usize, 1, batch.len() / 2, batch.len().saturating_sub(1)] {
                    let n = n.min(batch.len());
                    if deterministic {
                        eng.clear_result_cache();
                    }
                    let prefix: Vec<Community> = eng.submit(q).unwrap().take(n).collect();
                    prop_assert_eq!(&prefix[..], &batch[..n], "take({}) of {:?}", n, q);
                }
                // Cached resubmission must stream the same answer (a
                // fully drained live stream memoizes its result).
                let cached: Vec<Community> = eng.submit(q).unwrap().collect();
                prop_assert_eq!(&cached, &batch, "cached drain {:?}", q);
            }
        }
        // Live (uncached) constrained path: one worker makes the
        // heuristic bit-deterministic, so stream ≡ batch directly.
        let eng1 = Engine::with_threads(wg.clone(), 1);
        let q = Query::new(k, 3, Aggregation::Average).size_bound(k + 4, true);
        let batch = eng1.run_batch(&[q])[0].clone().unwrap();
        eng1.clear_result_cache();
        let streamed: Vec<Community> = eng1.submit(q).unwrap().collect();
        prop_assert_eq!(&streamed, &batch, "live constrained stream");
        // k > degeneracy streams nothing.
        let kk = ic_kcore::degeneracy(wg.graph()) as usize + 1;
        let mut empty = eng.submit(Query::new(kk, 3, Aggregation::Min)).unwrap();
        prop_assert!(empty.next().is_none());
    }

    /// After a random script of edge updates, the mutated engine answers
    /// identically to a from-scratch engine on the updated graph; epochs
    /// advance exactly when the edge set changes; the cache never serves
    /// across epochs.
    #[test]
    fn apply_matches_fresh_engine_on_mutated_graph(
        wg in arb_workload(),
        k in 1usize..4,
        script in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..24),
    ) {
        let n = wg.num_vertices() as u32;
        // One worker throughout: the constrained probes run the
        // heuristic path, which is only bit-pinned across independent
        // engines at a single worker (multi-worker execution semantics
        // are covered by conformance.rs).
        let eng = Engine::with_threads(wg.clone(), 1);
        // Warm the cache under epoch 0 so staleness would be caught.
        let probes = probe_queries(k, 4);
        let before = eng.run_batch(&probes);

        let updates: Vec<EdgeUpdate> = script
            .iter()
            .map(|&(u, v, insert)| {
                let (u, v) = (u % n, v % n);
                if insert {
                    EdgeUpdate::Insert { u, v }
                } else {
                    EdgeUpdate::Remove { u, v }
                }
            })
            .collect();
        let e0 = eng.epoch();
        let e1 = eng.apply(&updates);

        // Reference: the same edge script applied to a plain edge set.
        // `changed` is tracked per update exactly like the maintainer
        // does (an insert-then-remove of the same edge nets to nothing
        // but still counts as a change and must advance the epoch).
        let mut edges: std::collections::BTreeSet<(u32, u32)> = wg
            .graph()
            .edges()
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        let mut changed = false;
        for up in &updates {
            let (u, v) = up.endpoints();
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            match up {
                EdgeUpdate::Insert { .. } => changed |= edges.insert(key),
                _ => changed |= edges.remove(&key),
            }
        }
        let edge_list: Vec<(u32, u32)> = edges.iter().copied().collect();
        let fresh_graph = ic_graph::graph_from_edges(n as usize, &edge_list);
        prop_assert_eq!(
            e1 > e0,
            changed,
            "epoch advances iff some update changed the edge set"
        );

        let fresh = Engine::with_threads(
            WeightedGraph::new(fresh_graph, wg.weights().to_vec()).unwrap(),
            1,
        );
        let mutated = eng.run_batch(&probes);
        let reference = fresh.run_batch(&probes);
        for ((q, got), expect) in probes.iter().zip(&mutated).zip(&reference) {
            match (got, expect) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "post-apply {:?}", q),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "ok/err divergence on {:?}", q),
            }
        }
        // Streams agree too: a post-apply submit answers like the fresh
        // engine's batch, proving streams read the swapped snapshot.
        for (q, expect) in probes.iter().zip(&reference) {
            if let Ok(expect) = expect {
                eng.clear_result_cache();
                let streamed: Vec<Community> = eng.submit(*q).unwrap().collect();
                prop_assert_eq!(&streamed, expect, "post-apply stream {:?}", q);
            }
        }
        drop(before);
    }
}

/// Deterministic end-to-end walk: update, re-query, stream — on the
/// paper's running example, with a pre-apply stream held open across the
/// update to pin snapshot isolation.
#[test]
fn apply_isolation_and_requery_walkthrough() {
    let wg = ic_core::figure1::figure1();
    let eng = Engine::with_threads(wg.clone(), 2);
    let q = Query::new(2, 3, Aggregation::Min);
    let original = eng.run_batch(&[q])[0].clone().unwrap();

    // Open a stream, then mutate underneath it.
    eng.clear_result_cache();
    let pre_stream = eng.submit(q).unwrap();
    let e1 = eng.apply(&[
        EdgeUpdate::Remove { u: 4, v: 5 }, // v5-v6
        EdgeUpdate::Insert { u: 0, v: 9 }, // v1-v10
    ]);
    assert_eq!(e1.index(), 1);

    // The pre-apply stream still answers on its pinned snapshot.
    let streamed: Vec<Community> = pre_stream.collect();
    assert_eq!(streamed, original, "stream isolation across apply");

    // Post-apply answers equal a fresh engine on the mutated graph.
    let fresh = Engine::with_threads(eng.snapshot().weighted().clone(), 2);
    assert_eq!(
        eng.run_batch(&[q])[0].as_ref().unwrap(),
        fresh.run_batch(&[q])[0].as_ref().unwrap()
    );

    // Reverting the changes restores the original answers (epoch still
    // advances — epochs are history positions, not content hashes).
    let e2 = eng.apply(&[
        EdgeUpdate::Insert { u: 4, v: 5 },
        EdgeUpdate::Remove { u: 0, v: 9 },
    ]);
    assert_eq!(e2.index(), 2);
    assert_eq!(eng.run_batch(&[q])[0].as_ref().unwrap(), &original);
}

/// The builder vocabulary round-trips through the prelude and the
/// engine: one import surface serves batch, stream, and update code.
#[test]
fn prelude_covers_the_serving_vocabulary() {
    let wg = ic_core::figure1::figure1();
    let engine = Engine::with_threads(wg, 1);
    let q: Query = Query::builder(2, 2, Aggregation::Sum).build().unwrap();
    let solver: Solver = q.solver().unwrap();
    assert_eq!(solver, Solver::TicExact);
    let batch: Vec<Result<Vec<Community>, SearchError>> = engine.run_batch(&[q]);
    let streamed: Vec<Community> = {
        engine.clear_result_cache();
        engine.submit(q).unwrap().collect()
    };
    assert_eq!(&streamed, batch[0].as_ref().unwrap());
    let epoch: Epoch = engine.apply(&[EdgeUpdate::Remove { u: 0, v: 1 }]);
    assert_eq!(epoch.index(), 1);
    let snap: std::sync::Arc<GraphSnapshot> = engine.snapshot();
    assert_eq!(snap.graph().num_edges(), 16);
}
