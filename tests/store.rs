//! Persistence conformance: `persist → open` must be **bit-identical**
//! to the in-memory engine, and corrupt stores must **fail closed**.
//!
//! Property-based over the same four graph families as the solver
//! conformance suite (ER, Barabási-Albert, Chung-Lu, planted
//! partition), plus a quantized weight model that forces value ties —
//! the case where index rank order, peel tie-breaks, and persisted rank
//! arrays could drift apart if any layer cut a corner:
//!
//! * the graph, weights, core decomposition, and every persisted forest
//!   round-trip bit-for-bit through `ICS1` bytes;
//! * a store-loaded engine answers a min/max/sum query sweep exactly
//!   like a fresh engine built from the original graph;
//! * truncations, byte flips, and unknown versions all surface as typed
//!   [`StoreError`]s — never a panic, never a silently wrong answer.

use ic_core::algo::ExtremumIndex;
use ic_core::{Aggregation, Extremum, Query};
use ic_engine::Engine;
use ic_gen::{
    barabasi_albert, chung_lu, gnm, pareto_weights, planted_partition, rank_weights,
    uniform_weights, GraphSeed, PlantedPartitionConfig,
};
use ic_graph::{Graph, WeightedGraph};
use ic_kcore::{core_decomposition, GraphSnapshot};
use ic_store::{StoreBuilder, StoreError, StoreFile};
use proptest::prelude::*;

/// One synthetic workload drawn from the four graph families. Weight
/// model 3 quantizes to a handful of distinct values, forcing the tie
/// paths through every layer.
fn arb_workload() -> impl Strategy<Value = WeightedGraph> {
    (
        0u32..4,      // family: ER / BA / Chung-Lu / planted
        0u32..4,      // weights: uniform / pareto / rank / quantized ties
        20usize..64,  // vertices
        any::<u64>(), // seed
    )
        .prop_map(|(family, weight_model, n, seed)| {
            let g: Graph = match family {
                0 => gnm(n, n * 2, GraphSeed(seed)),
                1 => barabasi_albert(n, 3, GraphSeed(seed)),
                2 => chung_lu(n, n * 2, 2.5, GraphSeed(seed)),
                _ => planted_partition(
                    &PlantedPartitionConfig {
                        communities: 4,
                        community_size: (n / 4).max(2),
                        p_in: 0.6,
                        p_out: 0.03,
                    },
                    GraphSeed(seed),
                ),
            };
            let n = g.num_vertices();
            let w: Vec<f64> = match weight_model {
                0 => uniform_weights(n, 0.5, 50.0, GraphSeed(seed ^ 0xabcd)),
                1 => pareto_weights(n, 1.5, GraphSeed(seed ^ 0xabcd)),
                2 => rank_weights(n, GraphSeed(seed ^ 0xabcd)),
                // Heavy ties: at most five distinct weights.
                _ => (0..n).map(|i| ((i * 7 + 3) % 5) as f64 + 1.0).collect(),
            };
            WeightedGraph::new(g, w).unwrap()
        })
}

/// Warm a snapshot the way served traffic would, then serialize it.
fn store_bytes_for(wg: &WeightedGraph, ks: &[usize]) -> Vec<u8> {
    let snap = GraphSnapshot::new(wg.clone());
    let decomp = snap.decomposition();
    let levels: Vec<_> = ks.iter().map(|&k| snap.level(k)).collect();
    let forests: Vec<_> = ks
        .iter()
        .flat_map(|&k| {
            [
                ExtremumIndex::cached(&snap, k, Extremum::Min),
                ExtremumIndex::cached(&snap, k, Extremum::Max),
            ]
        })
        .collect();
    let mut builder = StoreBuilder::new(snap.weighted());
    builder.decomposition(&decomp);
    for level in &levels {
        builder.level(level);
    }
    for forest in &forests {
        builder.forest(forest.parts());
    }
    builder.to_bytes().expect("consistent store")
}

fn query_sweep(ks: &[usize]) -> Vec<Query> {
    let mut queries = Vec::new();
    for &k in ks {
        for r in [1usize, 3, 100] {
            queries.push(Query::new(k, r, Aggregation::Min));
            queries.push(Query::new(k, r, Aggregation::Max));
            queries.push(Query::new(k, r, Aggregation::Sum));
        }
    }
    queries
}

/// A randomized update script: batches of abstract (insert?, u, v)
/// ops, folded onto the graph's vertex range at runtime (self-loops
/// dropped). Removes of absent edges and inserts of present ones are
/// in distribution on purpose: no-op batches must not advance state.
fn arb_script() -> impl Strategy<Value = Vec<Vec<(bool, u32, u32)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), any::<u32>(), any::<u32>()), 1..8),
        1..4,
    )
}

fn concrete_batch(batch: &[(bool, u32, u32)], n: usize) -> Vec<ic_engine::EdgeUpdate> {
    use ic_engine::EdgeUpdate;
    batch
        .iter()
        .filter_map(|&(insert, a, b)| {
            let u = a % n as u32;
            let v = b % n as u32;
            if u == v {
                return None;
            }
            Some(if insert {
                EdgeUpdate::Insert { u, v }
            } else {
                EdgeUpdate::Remove { u, v }
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `persist → open` ≡ in-memory, bit for bit: structures and top-r
    /// answers.
    #[test]
    fn store_round_trip_is_bit_identical(wg in arb_workload()) {
        let ks = [1usize, 2];
        let bytes = store_bytes_for(&wg, &ks);
        let file = StoreFile::from_bytes(&bytes).expect("fresh store validates");
        let contents = file.load().expect("fresh store loads");

        // Graph, weights, decomposition: exact.
        prop_assert_eq!(contents.weighted.graph(), wg.graph());
        prop_assert_eq!(contents.weighted.weights(), wg.weights());
        let decomp = contents.decomposition.as_ref().expect("persisted");
        prop_assert_eq!(decomp, &core_decomposition(wg.graph()));

        // Forests: exact equality with a fresh build, both directions.
        prop_assert_eq!(contents.forests.len(), 2 * ks.len());
        for forest in &contents.forests {
            let fresh = ExtremumIndex::build(&wg, forest.k(), forest.extremum());
            prop_assert_eq!(forest, &fresh);
        }

        // A store-loaded engine answers exactly like a fresh one.
        let fresh = Engine::with_threads(wg.clone(), 1);
        let opened = Engine::from_snapshot(contents.into_snapshot(), 1);
        let sweep = query_sweep(&ks);
        let a = fresh.run_batch(&sweep);
        let b = opened.run_batch(&sweep);
        for ((q, x), y) in sweep.iter().zip(&a).zip(&b) {
            prop_assert_eq!(
                x.as_ref().expect("valid query"),
                y.as_ref().expect("valid query"),
                "store-loaded engine diverged on {:?}", q
            );
        }
    }

    /// The evolving-store contract, property-based: a store-opened
    /// engine driven through a randomized update script must keep
    /// answering exactly like a fresh engine built from the mutated
    /// graph — the persisted (pre-update) forests are never served
    /// post-`apply`, and the forests the post-apply snapshot *does*
    /// carry (incrementally repaired where the touched region was
    /// small) are bit-identical to full rebuilds.
    #[test]
    fn applied_store_engines_never_serve_stale_state(
        wg in arb_workload(),
        script in arb_script(),
    ) {
        let ks = [1usize, 2];
        let bytes = store_bytes_for(&wg, &ks);
        let contents = StoreFile::from_bytes(&bytes).expect("valid store").load().expect("loads");
        let opened = Engine::from_snapshot(contents.into_snapshot(), 1);
        let sweep = query_sweep(&ks);

        // Warm the persisted forests into the serving path before any
        // mutation, so staleness (if the engine ever leaked them) would
        // actually be observable.
        for r in opened.run_batch(&sweep) {
            r.expect("pre-update answers");
        }

        let n = wg.num_vertices();
        for batch in &script {
            let updates = concrete_batch(batch, n);
            if updates.is_empty() {
                continue;
            }
            opened.apply(&updates);

            // Ground truth: a fresh engine over the mutated graph.
            let mutated = opened.snapshot().weighted().clone();
            let fresh = Engine::with_threads(mutated.clone(), 1);
            let a = opened.run_batch(&sweep);
            let b = fresh.run_batch(&sweep);
            for ((q, x), y) in sweep.iter().zip(&a).zip(&b) {
                prop_assert_eq!(
                    x.as_ref().expect("valid query"),
                    y.as_ref().expect("valid query"),
                    "store-opened engine served stale state after {:?} on {:?}",
                    updates, q
                );
            }

            // Whatever forests the post-apply snapshot carries —
            // incrementally repaired or rebuilt on demand — must be
            // bit-identical to a from-scratch build on the mutated
            // graph.
            for (_, _, forest) in opened
                .snapshot()
                .memoized_extensions::<ExtremumIndex>()
            {
                let rebuilt = ExtremumIndex::build(&mutated, forest.k(), forest.extremum());
                prop_assert_eq!(
                    forest.as_ref(), &rebuilt,
                    "post-apply forest diverged from a full rebuild"
                );
            }
        }
    }

    /// Any truncation fails closed with a typed error.
    #[test]
    fn truncated_stores_fail_closed(wg in arb_workload(), frac in 0.0f64..1.0) {
        let bytes = store_bytes_for(&wg, &[2]);
        let cut = ((bytes.len() as f64) * frac) as usize; // always < len
        let result = StoreFile::from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncation at {} of {} accepted", cut, bytes.len());
        prop_assert!(matches!(
            result.expect_err("just asserted"),
            StoreError::Corrupt { .. } | StoreError::Unsupported { .. }
        ));
    }

    /// Any single flipped byte fails closed with a typed error.
    #[test]
    fn flipped_bytes_fail_closed(wg in arb_workload(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = store_bytes_for(&wg, &[2]);
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= 1u8 << bit;
        match StoreFile::from_bytes(&bytes) {
            Err(
                StoreError::Corrupt { .. }
                | StoreError::Unsupported { .. }
                | StoreError::Missing { .. }
                | StoreError::Graph(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            Ok(_) => prop_assert!(false, "flip at byte {} bit {} accepted", pos, bit),
        }
    }
}

/// The staleness story: a store-opened engine that then mutates its
/// graph must never serve the persisted (pre-update) structures — the
/// post-`apply` snapshot starts with empty caches and rebuilds lazily,
/// so answers equal a fresh engine on the mutated graph, bit for bit.
#[test]
fn persisted_indexes_are_not_served_across_apply() {
    use ic_engine::EdgeUpdate;
    let wg = WeightedGraph::new(
        gnm(120, 360, GraphSeed(21)),
        rank_weights(120, GraphSeed(22)),
    )
    .unwrap();
    let bytes = store_bytes_for(&wg, &[2]);
    let contents = StoreFile::from_bytes(&bytes).unwrap().load().unwrap();
    let opened = Engine::from_snapshot(contents.into_snapshot(), 1);

    // Mutate through the opened engine: remove a handful of edges that
    // exist, insert a couple that do not.
    let updates: Vec<EdgeUpdate> = wg
        .graph()
        .edges()
        .take(5)
        .map(|(u, v)| EdgeUpdate::Remove { u, v })
        .chain([
            EdgeUpdate::Insert { u: 0, v: 119 },
            EdgeUpdate::Insert { u: 1, v: 118 },
        ])
        .collect();
    let epoch = opened.apply(&updates);
    assert!(epoch.index() > 0, "edge set changed");

    // A fresh engine built from the mutated graph is the ground truth.
    let fresh = Engine::with_threads(opened.snapshot().weighted().clone(), 1);
    let sweep = query_sweep(&[1, 2]);
    let a = opened.run_batch(&sweep);
    let b = fresh.run_batch(&sweep);
    for ((q, x), y) in sweep.iter().zip(&a).zip(&b) {
        assert_eq!(
            x.as_ref().unwrap(),
            y.as_ref().unwrap(),
            "post-apply store engine served stale state on {q:?}"
        );
    }
}

/// Wrong format versions are refused with the dedicated error, not a
/// parse attempt.
#[test]
fn unknown_versions_are_refused() {
    let wg = WeightedGraph::unit_weights(gnm(20, 40, GraphSeed(7)));
    let mut bytes = store_bytes_for(&wg, &[1]);
    for version in [0u8, 2, 200] {
        bytes[4] = version;
        match StoreFile::from_bytes(&bytes) {
            Err(StoreError::Unsupported { version: v }) => assert_eq!(v, version as u32),
            other => panic!("expected Unsupported for version {version}, got {other:?}"),
        }
    }
}

/// End-to-end through the engine's own entry points and a real file:
/// persist a served engine, reopen it, and cross-check answers — the
/// two-process-lifetimes story the store exists for.
#[test]
fn engine_persist_open_file_round_trip() {
    let wg = WeightedGraph::new(
        chung_lu(300, 900, 2.4, GraphSeed(11)),
        rank_weights(300, GraphSeed(12)),
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("ic-store-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("served.ics1");

    let sweep = query_sweep(&[1, 2, 3]);
    let first = Engine::with_threads(wg.clone(), 2);
    let expect = first.run_batch(&sweep);
    first.persist(&path).unwrap();
    drop(first); // "process" 1 exits

    let second = Engine::open_with_threads(&path, 2).unwrap(); // "process" 2 cold start
    let got = second.run_batch(&sweep);
    for ((q, x), y) in sweep.iter().zip(&expect).zip(&got) {
        assert_eq!(
            x.as_ref().unwrap(),
            y.as_ref().unwrap(),
            "reopened engine diverged on {q:?}"
        );
    }
    // Deep verification of the artifact itself.
    StoreFile::open(&path).unwrap().verify_deep().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
