//! Chaos property suite: fault injection through `ic-fail` failpoints.
//!
//! Compiled only with `--features failpoints` (a `required-features`
//! test target of `ic-bench`); the CI chaos leg runs it on the
//! randomized-seed matrix. Every test drives the engine/store through
//! injected panics, deadline pressure, or transient I/O errors and then
//! asserts the resilience invariants:
//!
//! * **Isolation** — only the queries of the faulted job report
//!   [`EngineError::Internal`]; everything else in the batch completes
//!   bit-identical to a fault-free run.
//! * **Pool restoration** — every arena is either back in the pool or
//!   quarantined: `available() == created() - quarantined()` at idle.
//! * **No wedged locks** — all shared state (serving snapshot, result
//!   cache, maintainer, pool free list) keeps working after a panic
//!   unwound through it.
//! * **Amnesia** — once injection stops, the engine answers
//!   bit-identically to a freshly built engine on the same graph.
//!
//! Tests serialize on [`FailScenario`]'s global lock (the failpoint
//! registry is process-wide).

use ic_core::Aggregation;
use ic_engine::{AnswerStatus, BatchOptions, EdgeUpdate, Engine, EngineError, Query};
use ic_fail::FailScenario;
use ic_gen::{gnm, uniform_weights, GraphSeed};
use ic_graph::WeightedGraph;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Session seed shared with the proptest suites: the CI randomized leg
/// exports `IC_PROPTEST_SEED`, so chaos explores a fresh graph + fault
/// interleaving per run while any failure reproduces from the logged
/// seed.
fn session_seed() -> u64 {
    std::env::var("IC_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn workload(salt: u64) -> WeightedGraph {
    let seed = session_seed() ^ salt;
    let g = gnm(56, 120, GraphSeed(seed));
    let n = g.num_vertices();
    WeightedGraph::new(g, uniform_weights(n, 0.5, 40.0, GraphSeed(seed ^ 0xabcd))).unwrap()
}

/// Deterministic-path probes (min / max / exact sum / approx sum across
/// two k levels) — safe to compare bit-for-bit at any worker count.
fn probe_batch() -> Vec<Query> {
    vec![
        Query::new(2, 3, Aggregation::Min),
        Query::new(2, 4, Aggregation::Max),
        Query::new(2, 3, Aggregation::Sum),
        Query::new(3, 2, Aggregation::Sum),
        Query::new(2, 3, Aggregation::Sum).approx(0.2),
    ]
}

fn solo_answers(
    wg: &WeightedGraph,
    batch: &[Query],
    threads: usize,
) -> Vec<Vec<ic_core::Community>> {
    batch
        .iter()
        .map(|q| {
            Engine::with_threads(wg.clone(), threads).run_batch(&[*q])[0]
                .clone()
                .expect("probe queries are valid")
        })
        .collect()
}

/// The idle-pool invariant: every arena accounted for.
fn assert_pool_restored(eng: &Engine, context: &str) {
    assert_eq!(
        eng.arenas_available(),
        eng.arenas_created() - eng.arenas_quarantined(),
        "{context}: pool must hold exactly the non-quarantined arenas \
         (created {}, quarantined {}, available {})",
        eng.arenas_created(),
        eng.arenas_quarantined(),
        eng.arenas_available()
    );
}

/// After injection stops the engine must behave like a fresh one.
fn assert_amnesia(
    eng: &Engine,
    wg: &WeightedGraph,
    batch: &[Query],
    solo: &[Vec<ic_core::Community>],
) {
    eng.clear_result_cache();
    let got = eng.run_batch(batch);
    for (i, res) in got.iter().enumerate() {
        assert_eq!(
            res.as_ref().expect("post-fault queries must succeed"),
            &solo[i],
            "post-fault answer {i} diverged from a fresh engine on {} vertices",
            wg.num_vertices()
        );
    }
}

#[test]
fn cascade_panic_is_isolated_and_arena_quarantined() {
    let _s = FailScenario::setup();
    let wg = workload(0x01);
    let batch = probe_batch();
    let solo = solo_answers(&wg, &batch, 3);
    let eng = Engine::with_threads(wg.clone(), 3);

    ic_fail::cfg("kcore::cascade", "1*panic(chaos: torn cascade)").unwrap();
    let got = eng.run_batch_with(&batch, &BatchOptions::default());
    let mut internal = 0usize;
    for (i, res) in got.iter().enumerate() {
        match res {
            Err(EngineError::Internal { detail }) => {
                internal += 1;
                assert!(detail.contains("torn cascade"), "payload lost: {detail}");
            }
            Ok(ans) => {
                assert!(ans.is_complete(), "query {i}: no deadline was armed");
                assert_eq!(&ans.communities, &solo[i], "surviving query {i} diverged");
            }
            Err(e) => panic!("query {i}: unexpected error {e}"),
        }
    }
    assert!(internal >= 1, "the injected panic must surface as Internal");
    assert_eq!(
        eng.arenas_quarantined(),
        1,
        "exactly the panicked worker's arena is retired"
    );
    assert_pool_restored(&eng, "after isolated cascade panic");

    ic_fail::remove("kcore::cascade");
    assert_amnesia(&eng, &wg, &batch, &solo);
}

#[test]
fn tic_search_panic_is_isolated() {
    let _s = FailScenario::setup();
    let wg = workload(0x02);
    let batch = probe_batch();
    let solo = solo_answers(&wg, &batch, 2);
    let eng = Engine::with_threads(wg.clone(), 2);

    ic_fail::cfg("core::tic_advance", "1*panic(chaos: tic mid-expand)").unwrap();
    let got = eng.run_batch_with(&batch, &BatchOptions::default());
    let mut internal = 0usize;
    for (i, res) in got.iter().enumerate() {
        match res {
            Err(EngineError::Internal { .. }) => internal += 1,
            Ok(ans) => {
                assert!(ans.is_complete());
                assert_eq!(&ans.communities, &solo[i], "surviving query {i} diverged");
            }
            Err(e) => panic!("query {i}: unexpected error {e}"),
        }
    }
    // The TIC failpoint sits in the shared expansion loop; at least the
    // faulted family reports Internal, min/max peels are untouched.
    assert!(internal >= 1);
    assert!(
        got[0].is_ok() && got[1].is_ok(),
        "min/max peels must survive a TIC fault"
    );
    assert_pool_restored(&eng, "after isolated TIC panic");

    ic_fail::remove("core::tic_advance");
    assert_amnesia(&eng, &wg, &batch, &solo);
}

#[test]
fn local_chunk_panic_poisons_only_its_family() {
    let _s = FailScenario::setup();
    let wg = workload(0x03);
    let constrained = Query::new(2, 3, Aggregation::Average).size_bound(5, true);
    let batch = vec![
        Query::new(2, 3, Aggregation::Min),
        constrained,
        Query::new(2, 3, Aggregation::Sum),
    ];
    let eng = Engine::with_threads(wg.clone(), 3);
    let clean = solo_answers(&wg, &batch[..1], 3);

    ic_fail::cfg("engine::local_chunk", "1*panic(chaos: chunk died)").unwrap();
    let got = eng.run_batch_with(&batch, &BatchOptions::default());
    // A panicked chunk poisons its whole family exactly once: partial
    // seed coverage must never be merged and served as a full answer.
    match &got[1] {
        Err(EngineError::Internal { detail }) => {
            assert!(detail.contains("chunk died"), "payload lost: {detail}")
        }
        other => panic!("constrained query must be Internal, got {other:?}"),
    }
    assert_eq!(
        got[0].as_ref().unwrap().communities,
        clean[0],
        "unrelated min query harmed by a local-search fault"
    );
    assert!(got[2].is_ok(), "unrelated sum query harmed");
    assert_eq!(eng.arenas_quarantined(), 1);
    assert_pool_restored(&eng, "after local-chunk panic");

    // The family is not permanently poisoned: a clean re-run answers.
    ic_fail::remove("engine::local_chunk");
    eng.clear_result_cache();
    assert!(eng.run_batch(&batch)[1].is_ok(), "family must recover");
}

#[test]
fn cache_insert_panic_fails_closed_and_recovers() {
    let _s = FailScenario::setup();
    let wg = workload(0x04);
    let batch = probe_batch();
    let solo = solo_answers(&wg, &batch, 2);
    let eng = Engine::with_threads(wg.clone(), 2);

    // The injected panic fires inside the result cache's critical
    // section on the *delivering* thread, so the batch call itself
    // unwinds — the worst case for shared-state hygiene.
    ic_fail::cfg("engine::cache_insert", "1*panic(chaos: die in cache)").unwrap();
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        eng.run_batch_with(&batch, &BatchOptions::default())
    }));
    assert!(unwound.is_err(), "the cache panic must unwind the caller");

    // Fail-closed recovery: the poisoned cache dropped its contents
    // (a memoization cache may forget, never lie), the pool is intact,
    // and the engine serves bit-identical answers afterwards.
    ic_fail::remove("engine::cache_insert");
    assert_pool_restored(&eng, "after cache-insert panic");
    assert_amnesia(&eng, &wg, &batch, &solo);
    // And caching itself works again.
    assert!(eng.cached_results() > 0, "cache must resume memoizing");
}

#[test]
fn apply_panic_via_failpoint_is_atomic() {
    let _s = FailScenario::setup();
    let wg = workload(0x05);
    let eng = Engine::with_threads(wg.clone(), 2);
    let q = Query::new(2, 3, Aggregation::Min);
    let before = eng.run_batch(&[q])[0].clone().unwrap();
    let e0 = eng.epoch();
    // A genuine edge change, so apply reaches the failpoint (placed
    // after the new snapshot is built, before the swap).
    let (u, v) = (0u32, 1u32);
    let update = if wg.graph().has_edge(u, v) {
        EdgeUpdate::Remove { u, v }
    } else {
        EdgeUpdate::Insert { u, v }
    };

    ic_fail::cfg("engine::apply", "panic(chaos: die mid-apply)").unwrap();
    let unwound = catch_unwind(AssertUnwindSafe(|| eng.apply(&[update])));
    assert!(unwound.is_err());
    assert_eq!(eng.epoch(), e0, "a panicked apply must not move the epoch");
    eng.clear_result_cache();
    assert_eq!(
        eng.run_batch(&[q])[0].clone().unwrap(),
        before,
        "serving state must be the pre-apply snapshot, untouched"
    );

    // Injection off: the same update applies cleanly (the maintainer
    // slot reseeded; the mutex did not stay wedged) and answers match a
    // fresh engine on the mutated graph.
    ic_fail::remove("engine::apply");
    let e1 = eng.apply(&[update]);
    assert!(e1 > e0, "post-chaos apply must advance the epoch");
    let after = eng.run_batch(&[q])[0].clone().unwrap();
    let fresh = Engine::with_threads(eng.snapshot().weighted().clone(), 2);
    assert_eq!(&after, fresh.run_batch(&[q])[0].as_ref().unwrap());
}

#[test]
fn transient_store_reads_retry_and_corruption_fails_closed() {
    let _s = FailScenario::setup();
    let dir = std::env::temp_dir().join(format!("ic-chaos-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.ics1");

    let wg = workload(0x06);
    let eng = Engine::with_threads(wg.clone(), 2);
    let q = Query::new(2, 3, Aggregation::Min);
    let want = eng.run_batch(&[q])[0].clone().unwrap();
    eng.persist(&path).unwrap();

    // Two injected transient timeouts, then the real read: the bounded
    // retry loop absorbs them and the cold start still answers
    // bit-identically.
    ic_fail::cfg("store::read_io", "2*return(injected timeout)").unwrap();
    let reopened = Engine::open_with_threads(&path, 2).expect("retry must absorb transients");
    assert_eq!(reopened.run_batch(&[q])[0].clone().unwrap(), want);

    // A *persistent* transient error exhausts the three attempts and
    // surfaces typed.
    ic_fail::cfg("store::read_io", "return(injected timeout)").unwrap();
    match ic_store::StoreFile::open(&path) {
        Err(ic_store::StoreError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::TimedOut)
        }
        other => panic!("persistent I/O fault must surface as Io, got {other:?}"),
    }
    ic_fail::remove("store::read_io");

    // Corruption is never retried: fail closed on the first observation.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        ic_store::StoreFile::open(&path).is_err(),
        "flipped byte must fail closed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The randomized sweep: several rounds of probabilistic panics across
/// every solver-side failpoint, mixed with deadline pressure, against
/// one long-lived engine. Per-round outcomes are only sanity-checked
/// (isolation is covered by the targeted tests above); what this test
/// pins is the *accumulated* state: the pool invariant holds after
/// every round, nothing stays wedged, and when the dust settles the
/// engine is bit-identical to a fresh one.
#[test]
fn randomized_fault_sweep_preserves_engine_invariants() {
    let _s = FailScenario::setup();
    let wg = workload(0x07);
    let batch = probe_batch();
    let solo = solo_answers(&wg, &batch, 3);
    let eng = Engine::with_threads(wg.clone(), 3);

    for round in 0..8u32 {
        // Reconfiguring each round reseeds the deterministic per-site
        // generators, so rounds explore different fire patterns while
        // the whole sweep replays exactly under one IC_FAIL_SEED.
        ic_fail::cfg("kcore::cascade", "3%panic(chaos: cascade)").unwrap();
        ic_fail::cfg("core::tic_advance", "3%panic(chaos: tic)").unwrap();
        ic_fail::cfg("engine::local_chunk", "10%panic(chaos: chunk)").unwrap();

        // Every third round also applies batch-wide deadline pressure.
        let options = match round % 3 {
            0 => BatchOptions::default(),
            1 => BatchOptions::default().deadline(std::time::Duration::from_secs(3600)),
            _ => BatchOptions::default().deadline(std::time::Duration::ZERO),
        };
        let got = eng.run_batch_with(&batch, &options);
        for (i, res) in got.iter().enumerate() {
            match res {
                Ok(ans) => match ans.status {
                    AnswerStatus::Complete => {
                        assert_eq!(&ans.communities, &solo[i], "round {round} query {i}")
                    }
                    AnswerStatus::Degraded {
                        proven_prefix_len, ..
                    } => {
                        assert_eq!(
                            &ans.communities[..proven_prefix_len],
                            &solo[i][..proven_prefix_len],
                            "round {round} query {i}: broken prefix certificate"
                        );
                    }
                    _ => panic!("round {round} query {i}: unknown status"),
                },
                Err(EngineError::Internal { .. }) => {}
                Err(EngineError::DeadlineExceeded) => {
                    assert!(round % 3 == 2, "round {round} query {i}: spurious deadline")
                }
                Err(e) => panic!("round {round} query {i}: unexpected error {e}"),
            }
        }
        eng.clear_result_cache();
        assert_pool_restored(&eng, &format!("after round {round}"));
    }

    ic_fail::teardown();
    assert_pool_restored(&eng, "after the sweep");
    assert_amnesia(&eng, &wg, &batch, &solo);
}
