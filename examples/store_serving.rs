//! Build once, serve many: the `ic-store` cold-start story across two
//! simulated process lifetimes.
//!
//! ```text
//! cargo run -p ic-bench --release --example store_serving
//! ```
//!
//! **Lifetime 1** (the build/deploy job) generates the graph, serves a
//! little traffic — which warms the snapshot's core level and extremum
//! community forests — and persists the whole serving state with
//! [`Engine::persist`].
//!
//! **Lifetime 2** (every serving process thereafter) calls
//! [`Engine::open`]: one checksummed read, no edge-list parse, no CSR
//! rebuild, no core decomposition — and the first `min`/`max` query is
//! answered from the persisted forest in output-sensitive time, bit
//! for bit what lifetime 1 answered.

use ic_core::Aggregation;
use ic_engine::{Engine, Query};
use ic_gen::datasets::{by_name, Profile};
use std::time::Instant;

fn main() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let k = spec.default_k;
    let dir = std::env::temp_dir().join(format!("ic-store-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("email.ics1");

    let sweep: Vec<Query> = (1..=10usize)
        .flat_map(|r| {
            [
                Query::new(k, r, Aggregation::Min),
                Query::new(k, r, Aggregation::Max),
            ]
        })
        .chain(std::iter::once(Query::new(k, 3, Aggregation::Sum)))
        .collect();

    // ---- Lifetime 1: build, serve, persist ---------------------------
    let t = Instant::now();
    let wg = spec.generate_weighted();
    let engine = Engine::new(wg);
    let stats = engine.plan(&sweep).stats; // plan before serving: live stats
    let expect = engine.run_batch(&sweep);
    println!(
        "[lifetime 1] built engine + served {} queries in {:.1?} \
         ({} index-routed)",
        sweep.len(),
        t.elapsed(),
        stats.index_routed,
    );
    let t = Instant::now();
    engine.persist(&path).unwrap();
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "[lifetime 1] persisted warm serving state to {} ({size} bytes) in {:.1?}",
        path.display(),
        t.elapsed()
    );
    drop(engine); // process 1 exits

    // ---- Lifetime 2: open, serve, verify -----------------------------
    let t = Instant::now();
    let served = Engine::open(&path).unwrap();
    let opened_in = t.elapsed();
    let t = Instant::now();
    let first = served.run_batch(&[Query::new(k, 5, Aggregation::Min)]);
    println!(
        "[lifetime 2] opened store in {opened_in:.1?}; first query answered in {:.1?} \
         (index-served, no decomposition, no peel)",
        t.elapsed()
    );
    let top = first[0].as_ref().unwrap();
    for (i, c) in top.iter().enumerate() {
        println!("  #{} value {:.6}, {} members", i + 1, c.value, c.len());
    }

    // Every answer matches lifetime 1 bit for bit.
    let got = served.run_batch(&sweep);
    let identical = expect
        .iter()
        .zip(&got)
        .all(|(a, b)| a.as_ref().unwrap() == b.as_ref().unwrap());
    println!("[lifetime 2] full sweep re-served: bit-identical to lifetime 1: {identical}");
    assert!(identical, "store-served answers diverged");

    // The graph stays mutable: updates move the engine to a new epoch,
    // whose snapshot rebuilds its indexes lazily — persisted state is
    // never served across an update.
    let before = served.epoch();
    let epoch = served.apply(&[ic_engine::EdgeUpdate::Remove { u: 0, v: 1 }]);
    if epoch > before {
        let post = served.run_batch(&[Query::new(k, 5, Aggregation::Min)]);
        println!(
            "[lifetime 2] after an edge update ({epoch}): indexes rebuilt lazily, \
             top-5 min still served ({} communities)",
            post[0].as_ref().map(|c| c.len()).unwrap_or(0)
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
