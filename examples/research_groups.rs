//! The paper's case study (Section VI.C, Figure 14): identifying
//! influential research groups in an Aminer-like co-authorship network
//! under different aggregation functions.
//!
//! * `min` over an i10-index-like metric surfaces groups whose *every*
//!   member is highly cited (the database pioneers);
//! * `avg` over a G-index-like metric surfaces groups with the highest
//!   mean influence;
//! * `sum` over raw citations surfaces larger groups with the highest
//!   total impact.
//!
//! ```text
//! cargo run -p ic-bench --release --example research_groups
//! ```

use ic_core::algo::{self, LocalSearchConfig};
use ic_core::{Aggregation, Community};
use ic_gen::{aminer_network, AminerNetwork, GraphSeed};

fn print_groups(net: &AminerNetwork, title: &str, communities: &[Community]) {
    println!("\n=== {title} ===");
    for (i, c) in communities.iter().enumerate() {
        println!("top-{} (value {:.2}):", i + 1, c.value);
        for &v in &c.vertices {
            println!("    {} [{}]", net.name_of(v), net.fields[v as usize]);
        }
    }
}

fn main() {
    let net = aminer_network(GraphSeed(2022));
    println!(
        "synthetic Aminer-like network: {} researchers, {} co-authorship edges, 5 fields",
        net.graph.num_vertices(),
        net.graph.num_edges()
    );

    // k = 4 as in the paper's case study; results are non-overlapping.
    let k = 4;

    // (a-c) min over the i10-like metric: exact threshold peeling.
    let wg = net.weighted_by_i10();
    let top = algo::nonoverlap::min_topr_nonoverlapping(&wg, k, 3).unwrap();
    print_groups(&net, "min over i10 — uniformly highly-cited groups", &top);

    // (d-f) avg over the G-index-like metric: greedy local search, s = 7.
    let wg = net.weighted_by_gindex();
    let config = LocalSearchConfig {
        k,
        r: 3,
        s: 7,
        greedy: true,
    };
    let top = algo::local_search_nonoverlapping(&wg, &config, Aggregation::Average).unwrap();
    print_groups(&net, "avg over G-index — highest-mean groups", &top);

    // (g-i) sum over citations: greedy local search, s = 6.
    let wg = net.weighted_by_citations();
    let config = LocalSearchConfig {
        k,
        r: 3,
        s: 6,
        greedy: true,
    };
    let top = algo::local_search_nonoverlapping(&wg, &config, Aggregation::Sum).unwrap();
    print_groups(&net, "sum over citations — highest total impact", &top);

    println!(
        "\nNote how the three aggregations surface *different* groups, the\n\
         paper's core motivation for going beyond the classic min model."
    );
}
