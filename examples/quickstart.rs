//! Quickstart: build a weighted graph, run every solver family, verify the
//! results.
//!
//! ```text
//! cargo run -p ic-bench --release --example quickstart
//! ```

use ic_core::algo::{self, LocalSearchConfig};
use ic_core::figure1::figure1;
use ic_core::verify::check_community;
use ic_core::{Aggregation, Community, Query};
use ic_graph::{GraphBuilder, WeightedGraph};

fn show(title: &str, communities: &[Community]) {
    println!("{title}");
    for (i, c) in communities.iter().enumerate() {
        println!(
            "  #{:<2} value {:>10.3}  members {:?}",
            i + 1,
            c.value,
            c.vertices
        );
    }
    println!();
}

fn main() {
    // --- 1. Build a graph by hand -------------------------------------
    // Two departments connected by one liaison edge; weights are each
    // person's influence score.
    let mut b = GraphBuilder::new();
    // Department A: a 4-clique of senior folks.
    for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        b.add_edge(u, v);
    }
    // Department B: a 5-cycle with a chord (still a 2-core).
    for (u, v) in [(4, 5), (5, 6), (6, 7), (7, 8), (8, 4), (5, 8)] {
        b.add_edge(u, v);
    }
    b.add_edge(3, 4); // the liaison
    let weights = vec![9.0, 8.0, 7.5, 7.0, 3.0, 2.5, 2.0, 1.5, 1.0];
    let wg = WeightedGraph::new(b.build(), weights).expect("valid weights");

    // --- 2. Size-unconstrained top-r under sum (Algorithm 2) ----------
    let top = Query::new(2, 3, Aggregation::Sum)
        .solve(&wg)
        .expect("valid params");
    show("Top-3 communities under sum (k = 2):", &top);

    // --- 3. The classic min model (prior-work baseline) ---------------
    let top = Query::new(2, 3, Aggregation::Min)
        .solve(&wg)
        .expect("valid params");
    show("Top-3 communities under min (k = 2):", &top);

    // --- 4. Size-constrained search under avg (Algorithm 4) -----------
    let config = LocalSearchConfig {
        k: 2,
        r: 2,
        s: 4,
        greedy: true,
    };
    let top = algo::local_search(&wg, &config, Aggregation::Average).expect("valid params");
    show("Top-2 size-≤4 communities under avg (k = 2, greedy):", &top);

    // --- 5. Always verify what a solver hands back --------------------
    for c in &top {
        check_community(&wg, 2, Some(4), Aggregation::Average, c).expect("solver output is valid");
    }
    println!("all results verified against Definition 3/4 ✓");

    // --- 6. The paper's own example graph ------------------------------
    let fig = figure1();
    let top = Query::new(2, 2, Aggregation::Sum).solve(&fig).unwrap();
    println!(
        "\nFigure 1 of the paper, sum top-2 values: {} and {} (expected 203 and 195)",
        top[0].value, top[1].value
    );
}
