//! The paper's second motivating application (Section I, "Group
//! Recommendation"): suggest interest groups in a social network, ranked
//! by the *average* influence of their members, without recommending the
//! same users twice — served through a progressive query session.
//!
//! The pre-PR-3 version of this example called
//! `local_search_nonoverlapping` directly. Here the same product flow
//! runs on the engine's session API: [`Engine::submit`] opens a
//! [`ResultStream`] of candidate groups in rank order, and the serving
//! loop *pulls* candidates one at a time, keeping the disjoint ones
//! until the slate is full. Rank order is guaranteed to match
//! `run_batch` prefix-for-prefix, so consuming the stream early never
//! changes what the user sees. (Size-constrained queries have no
//! incremental solver hook — the stream buffers a completed local
//! search, so the laziness here is in *consumption*, not solver work;
//! submit a `min`/`max`/`sum` query to see genuinely pay-per-pull
//! streaming, e.g. in `batch_service.rs`.)
//!
//! ```text
//! cargo run -p ic-bench --release --example group_recommendation
//! ```

use ic_core::verify::check_community;
use ic_engine::prelude::*;
use ic_gen::{pagerank_weights, planted_partition, GraphSeed, PlantedPartitionConfig};
use ic_graph::WeightedGraph;

fn main() {
    // A social network with eight interest clusters.
    let graph = planted_partition(
        &PlantedPartitionConfig {
            communities: 8,
            community_size: 25,
            p_in: 0.4,
            p_out: 0.01,
        },
        GraphSeed(11),
    );
    // Influence = PageRank, exactly like the paper's experiments.
    let weights = pagerank_weights(&graph);
    let wg = WeightedGraph::new(graph, weights).expect("valid weights");

    println!(
        "social network: {} users, {} ties",
        wg.num_vertices(),
        wg.num_edges()
    );

    // Recommend up to 4 disjoint groups of at most 12 members whose
    // every member knows at least 4 others in the group. The stream is
    // asked for a deep candidate list (r = 16) so the disjointness
    // filter below never runs dry; only as many candidates as the
    // slate needs are ever *consumed*.
    let engine = Engine::new(wg.clone());
    let query = Query::builder(4, 16, Aggregation::Average)
        .size_bound(12, true)
        .build()
        .expect("valid recommendation query");

    let slate_size = 4;
    let mut slate: Vec<Community> = Vec::new();
    let mut considered = 0usize;
    let mut stream = engine.submit(query).expect("valid recommendation query");
    for candidate in stream.by_ref() {
        considered += 1;
        // Non-overlap policy: a candidate sharing a user with an
        // already-recommended group is skipped (TONIC-style greedy).
        if slate.iter().any(|g| g.overlaps(&candidate)) {
            continue;
        }
        slate.push(candidate);
        if slate.len() == slate_size {
            break; // slate full; unread candidates are simply discarded
        }
    }
    drop(stream);

    println!(
        "\nrecommended groups (ranked by average member influence; \
         {considered} candidates pulled):"
    );
    for (i, g) in slate.iter().enumerate() {
        // Which planted cluster does the group live in?
        let cluster = g.vertices[0] / 25;
        let pure = g.vertices.iter().all(|&v| v / 25 == cluster);
        println!(
            "  #{} avg influence {:.5}, {} members, cluster {}{}",
            i + 1,
            g.value,
            g.len(),
            cluster,
            if pure { "" } else { " (mixed)" }
        );
        check_community(&wg, 4, Some(12), Aggregation::Average, g).expect("valid group");
    }

    // Sanity: recommendations never overlap.
    for (i, a) in slate.iter().enumerate() {
        for b in &slate[i + 1..] {
            assert!(!a.overlaps(b), "slate must be disjoint");
        }
    }
    println!("\nno user appears in two recommendations ✓");
}
