//! The paper's second motivating application (Section I, "Group
//! Recommendation"): suggest interest groups in a social network, ranked
//! by the *average* influence of their members, without recommending the
//! same users twice (the non-overlapping constraint).
//!
//! ```text
//! cargo run -p ic-bench --release --example group_recommendation
//! ```

use ic_core::algo::{self, LocalSearchConfig};
use ic_core::verify::check_community;
use ic_core::Aggregation;
use ic_gen::{pagerank_weights, planted_partition, GraphSeed, PlantedPartitionConfig};
use ic_graph::WeightedGraph;

fn main() {
    // A social network with eight interest clusters.
    let graph = planted_partition(
        &PlantedPartitionConfig {
            communities: 8,
            community_size: 25,
            p_in: 0.4,
            p_out: 0.01,
        },
        GraphSeed(11),
    );
    // Influence = PageRank, exactly like the paper's experiments.
    let weights = pagerank_weights(&graph);
    let wg = WeightedGraph::new(graph, weights).expect("valid weights");

    println!(
        "social network: {} users, {} ties",
        wg.num_vertices(),
        wg.num_edges()
    );

    // Recommend up to 4 disjoint groups of at most 12 members whose every
    // member knows at least 4 others in the group.
    let config = LocalSearchConfig {
        k: 4,
        r: 4,
        s: 12,
        greedy: true,
    };
    let groups =
        algo::local_search_nonoverlapping(&wg, &config, Aggregation::Average).expect("valid");

    println!("\nrecommended groups (ranked by average member influence):");
    for (i, g) in groups.iter().enumerate() {
        // Which planted cluster does the group live in?
        let cluster = g.vertices[0] / 25;
        let pure = g.vertices.iter().all(|&v| v / 25 == cluster);
        println!(
            "  #{} avg influence {:.5}, {} members, cluster {}{}",
            i + 1,
            g.value,
            g.len(),
            cluster,
            if pure { "" } else { " (mixed)" }
        );
        check_community(&wg, 4, Some(12), Aggregation::Average, g).expect("valid group");
    }

    // Sanity: recommendations never overlap.
    assert!(algo::nonoverlap::is_nonoverlapping(&groups));
    println!("\nno user appears in two recommendations ✓");
}
