//! The paper's first motivating application (Section I, "Engagement"):
//! a team must shrink while keeping a cohesive, strong core — served
//! through the engine's session API, on a graph that *changes*.
//!
//! Each member's engagement depends on having at least `k` friends in
//! the retained group (the k-core constraint); ability scores are the
//! vertex weights. The top size-constrained k-influential community
//! under an aggregation answers "whom do we keep". This example runs the
//! whole scenario through `ic_engine`:
//!
//! * one [`Engine`] owns the org graph and answers every aggregation's
//!   retention plan from one shared snapshot (`run_batch`);
//! * when the org changes — friendships dissolve, a new mentorship
//!   forms — [`Engine::apply`] feeds the edge updates through the
//!   incremental core maintainer and swaps in a new epoch, and the same
//!   queries are simply re-submitted: no rebuild, no second engine.
//!
//! ```text
//! cargo run -p ic-bench --release --example team_layoff
//! ```

use ic_engine::prelude::*;
use ic_gen::{planted_partition, uniform_weights, GraphSeed, PlantedPartitionConfig};
use ic_graph::WeightedGraph;

fn report(engine: &Engine, queries: &[(Aggregation, Query)], wg_total: f64) {
    let batch: Vec<Query> = queries.iter().map(|&(_, q)| q).collect();
    let results = engine.run_batch(&batch);
    let snapshot = engine.snapshot(); // one serving-state grab for the whole report
    for ((agg, _), result) in queries.iter().zip(&results) {
        match result.as_ref().expect("valid layoff query").first() {
            Some(keep) => {
                let n = snapshot.graph().num_vertices();
                let kept_ability: f64 = keep
                    .vertices
                    .iter()
                    .map(|&v| snapshot.weighted().weight(v))
                    .sum();
                println!(
                    "  [{}] keep {:?}\n       objective {:.2}, retained ability {:.1} of {:.1}, lay off {} people",
                    agg.name(),
                    keep.vertices,
                    keep.value,
                    kept_ability,
                    wg_total,
                    n - keep.len()
                );
            }
            None => println!("  [{}] no feasible retention plan", agg.name()),
        }
    }
}

fn main() {
    // A 30-person org: three squads of 10 with dense internal friendship
    // and sparse cross-squad ties.
    let graph = planted_partition(
        &PlantedPartitionConfig {
            communities: 3,
            community_size: 10,
            p_in: 0.7,
            p_out: 0.08,
        },
        GraphSeed(7),
    );
    // Ability scores in [1, 10).
    let ability = uniform_weights(graph.num_vertices(), 1.0, 10.0, GraphSeed(99));
    let wg = WeightedGraph::new(graph, ability).expect("valid weights");
    let total = wg.total_weight();

    let headcount_target = 12; // the size constraint s
    let k = 3; // everyone kept must have >= 3 friends kept

    println!(
        "org: {} people, {} friendships; target headcount {} with k = {}",
        wg.num_vertices(),
        wg.num_edges(),
        headcount_target,
        k
    );

    // One engine serves every retention scenario. The validating builder
    // rejects nonsensical plans (s <= k, bad epsilon, ...) up front.
    // One worker: the size-constrained path is heuristic, and a single
    // worker keeps it bit-deterministic for the equality check below.
    let engine = Engine::with_threads(wg.clone(), 1);
    let queries: Vec<(Aggregation, Query)> = [
        Aggregation::Sum,
        Aggregation::Average,
        Aggregation::Max,
        // Weight density: total ability minus a per-head cost.
        Aggregation::WeightDensity { beta: 2.0 },
    ]
    .into_iter()
    .map(|agg| {
        let q = Query::builder(k, 1, agg)
            .size_bound(headcount_target, true)
            .build()
            .expect("layoff query is valid");
        (agg, q)
    })
    .collect();

    println!("\nretention plans at {}:", engine.epoch());
    report(&engine, &queries, total);

    // The org changes: two friendships dissolve (attrition fallout) and
    // a cross-squad mentorship forms. `apply` maintains core numbers
    // incrementally and swaps the snapshot; the old epoch's cached
    // answers are retired automatically.
    let updates = [
        EdgeUpdate::Remove { u: 1, v: 7 },
        EdgeUpdate::Remove { u: 14, v: 17 },
        EdgeUpdate::Insert { u: 4, v: 25 },
    ];
    let epoch = engine.apply(&updates);
    println!(
        "\norg changed ({} updates) -> {}; same queries, new answers:",
        updates.len(),
        epoch
    );
    report(&engine, &queries, total);

    // The mutable engine is exact: a from-scratch engine on the mutated
    // graph gives bit-identical answers.
    let fresh = Engine::with_threads(engine.snapshot().weighted().clone(), 1);
    let batch: Vec<Query> = queries.iter().map(|&(_, q)| q).collect();
    let a = engine.run_batch(&batch);
    let b = fresh.run_batch(&batch);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.as_ref().unwrap(),
            y.as_ref().unwrap(),
            "post-apply engine must equal a fresh engine"
        );
    }
    println!("\npost-update answers equal a from-scratch engine ✓");
}
