//! The paper's first motivating application (Section I, "Engagement"):
//! a team must shrink while keeping a cohesive, strong core.
//!
//! Each member's engagement depends on having at least `k` friends in the
//! retained group (the k-core constraint); ability scores are the vertex
//! weights. Finding the top size-constrained k-influential community under
//! `sum` answers "whom do we keep"; everyone else is the layoff list.
//!
//! ```text
//! cargo run -p ic-bench --release --example team_layoff
//! ```

use ic_core::algo::{self, LocalSearchConfig};
use ic_core::Aggregation;
use ic_gen::{planted_partition, uniform_weights, GraphSeed, PlantedPartitionConfig};
use ic_graph::WeightedGraph;

fn main() {
    // A 30-person org: three squads of 10 with dense internal friendship
    // and sparse cross-squad ties.
    let graph = planted_partition(
        &PlantedPartitionConfig {
            communities: 3,
            community_size: 10,
            p_in: 0.7,
            p_out: 0.08,
        },
        GraphSeed(7),
    );
    // Ability scores in [1, 10).
    let ability = uniform_weights(graph.num_vertices(), 1.0, 10.0, GraphSeed(99));
    let wg = WeightedGraph::new(graph, ability).expect("valid weights");

    let headcount_target = 12; // the size constraint s
    let k = 3; // everyone kept must have >= 3 friends kept

    println!(
        "org: {} people, {} friendships; target headcount {} with k = {}",
        wg.num_vertices(),
        wg.num_edges(),
        headcount_target,
        k
    );

    let config = LocalSearchConfig {
        k,
        r: 1,
        s: headcount_target,
        greedy: true,
    };

    for agg in [
        Aggregation::Sum,
        Aggregation::Average,
        Aggregation::Max,
        // Weight density: total ability minus a per-head cost.
        Aggregation::WeightDensity { beta: 2.0 },
    ] {
        let result = algo::local_search(&wg, &config, agg).expect("valid params");
        match result.first() {
            Some(keep) => {
                let mut laid_off: Vec<u32> = (0..wg.num_vertices() as u32)
                    .filter(|&v| !keep.contains(v))
                    .collect();
                laid_off.sort_unstable();
                let kept_ability: f64 = keep.vertices.iter().map(|&v| wg.weight(v)).sum();
                println!(
                    "\n[{}] keep {:?}\n    objective {:.2}, retained ability {:.1} of {:.1}, lay off {} people",
                    agg.name(),
                    keep.vertices,
                    keep.value,
                    kept_ability,
                    wg.total_weight(),
                    laid_off.len()
                );
            }
            None => println!("\n[{}] no feasible retention plan at k = {k}", agg.name()),
        }
    }
}
