//! Define your own aggregation function and serve it end to end.
//!
//! ```text
//! cargo run -p ic-bench --release --example custom_aggregation
//! ```
//!
//! The aggregation layer is open (PR 4): implement
//! [`ic_core::AggregateFn`], declare the property certificates that
//! actually hold, register with [`ic_core::Aggregation::custom`], and
//! the returned handle works everywhere a built-in does —
//! `QueryBuilder`, `Engine::run_batch`, progressive `Engine::submit`
//! streams, and the epoch-tagged result cache. Routing is decided by
//! the certificates alone:
//!
//! * this example's `CappedSum` declares removal-decreasing
//!   monotonicity plus an O(1) remove delta, so the router sends it
//!   down the zero-rebuild TIC-IMPROVED path automatically;
//! * a function declaring nothing (NP-hard) is still servable through
//!   the size-bounded local-search route;
//! * a *false* declaration is rejected at registration by the sampled
//!   certification harness — shown at the end.

use ic_core::aggregate::canonical_f64_bits;
use ic_core::{AggregateFn, Aggregation, Certificates, Hardness, StateView};
use ic_engine::{Engine, Query};
use ic_gen::datasets::{by_name, Profile};

/// `f(H) = Σ min(w(v), cap)`: total influence where any single member
/// counts at most `cap` — a robust sum that stops one whale from
/// dominating the ranking.
///
/// Every certificate below is machine-checked at registration:
/// removing a member always subtracts its (positive) capped weight, so
/// the value strictly decreases (Corollary 2 holds) and the remove
/// delta is exact in O(1).
#[derive(Debug)]
struct CappedSum {
    cap: f64,
}

impl CappedSum {
    fn capped(&self, w: f64) -> f64 {
        w.min(self.cap)
    }
}

impl AggregateFn for CappedSum {
    fn name(&self) -> &str {
        "capped-sum"
    }

    fn certificates(&self) -> Certificates {
        Certificates {
            removal_decreasing: true,
            size_proportional: true,
            incremental_removal: true,
            hardness_unconstrained: Hardness::Polynomial,
            // Capping is per-weight, so the incremental state keeps the
            // weight multiset (a plain running sum cannot re-cap).
            needs_multiset: true,
            ..Certificates::opaque()
        }
    }

    fn param_key(&self) -> u64 {
        canonical_f64_bits(self.cap)
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.cap.is_finite() && self.cap > 0.0) {
            return Err(format!("cap must be positive finite, got {}", self.cap));
        }
        Ok(())
    }

    fn evaluate(&self, member_weights: &[f64], _total_weight: f64) -> f64 {
        member_weights.iter().map(|&w| self.capped(w)).sum()
    }

    fn value_after_removal(&self, parent_value: f64, removed_weight: f64) -> f64 {
        parent_value - self.capped(removed_weight)
    }

    fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
        let mut s = 0.0;
        for (w, count) in state.weights_asc() {
            s += self.capped(w) * count as f64;
        }
        s
    }
}

fn main() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let wg = spec.generate_weighted();
    println!(
        "graph: {} ({} vertices, {} edges)",
        spec.name,
        wg.num_vertices(),
        wg.num_edges()
    );

    // 1. Register. The certification harness runs here: a mis-declared
    //    certificate never reaches the solvers.
    let capped = Aggregation::custom(CappedSum { cap: 0.002 }).expect("certificates hold");
    println!(
        "registered `{}` (routes to {:?})",
        capped.name(),
        Query::new(4, 5, capped).solver().unwrap()
    );
    // With PageRank weights, a 0.002 cap genuinely limits the hubs, so
    // the ranking is not just a rescaled plain sum.

    // 2. One-shot query through the validating builder + router.
    let q = Query::builder(4, 5, capped).build().unwrap();
    let top = q.solve(&wg).unwrap();
    println!("\ntop-{} under {} (k = {}):", q.r, capped.name(), q.k);
    for (i, c) in top.iter().enumerate() {
        println!(
            "  #{:<2} value {:>10.3}  ({} members)",
            i + 1,
            c.value,
            c.len()
        );
    }

    // 3. Batched serving: the custom handle merges into r-families and
    //    lands in the epoch-tagged result cache like any built-in.
    let engine = Engine::new(wg.clone());
    let batch = [
        Query::new(4, 1, capped),
        Query::new(4, 5, capped), // shares one TIC run with the others
        Query::new(4, 3, capped),
        Query::new(4, 5, Aggregation::Sum), // built-ins mix freely
    ];
    let stats = engine.plan(&batch).stats;
    println!(
        "\nbatch: {} queries -> {} solver runs (family merging)",
        stats.total_queries, stats.solver_runs
    );
    let answers = engine.run_batch(&batch);
    for (q, a) in batch.iter().zip(&answers) {
        let a = a.as_ref().expect("valid");
        println!(
            "  {}(k={}, r={}) -> {} communities, best {:.3}",
            q.aggregation.name(),
            q.k,
            q.r,
            a.len(),
            a.first().map_or(f64::NEG_INFINITY, |c| c.value)
        );
    }
    assert_eq!(answers[1].as_ref().unwrap().as_slice(), top.as_slice());

    // 4. Progressive stream: first answer without waiting for the rest.
    let mut stream = engine.submit(Query::new(4, 5, capped)).unwrap();
    let first = stream.next().expect("non-empty core");
    println!(
        "\nstreamed rank-1 answer: value {:.3} ({} members); rest of the stream cancelled for free",
        first.value,
        first.len()
    );
    drop(stream);

    // 5. A false certificate is caught at registration. `Average` is
    //    not removal-decreasing — claiming it must fail.
    #[derive(Debug)]
    struct BogusAverage;
    impl AggregateFn for BogusAverage {
        fn name(&self) -> &str {
            "bogus-average"
        }
        fn certificates(&self) -> Certificates {
            Certificates {
                removal_decreasing: true, // <- lie
                ..Certificates::opaque()
            }
        }
        fn evaluate(&self, w: &[f64], _t: f64) -> f64 {
            w.iter().sum::<f64>() / w.len() as f64
        }
        fn evaluate_state(&self, state: &StateView<'_>) -> f64 {
            state.sum() / state.len() as f64
        }
    }
    match Aggregation::custom(BogusAverage) {
        Err(e) => println!("\nmis-declared certificate rejected as expected:\n  {e}"),
        Ok(_) => unreachable!("the certification harness must catch the false claim"),
    }
}
