//! Extensions tour: engine-served extremum forests, batched queries,
//! truss-based communities, and hill-climbing refinement.
//!
//! ```text
//! cargo run -p ic-bench --release --example indexed_queries
//! ```
//!
//! Since PR 5 the extremum community forest is wired into the engine:
//! every exact-tie `min`/`max` query is index-served from the forest
//! memoized on the engine's snapshot — built once, shared by every
//! batch, persisted by `Engine::persist` (see `store_serving.rs`).

use ic_core::algo::{self, ExtremumIndex, LocalSearchConfig};
use ic_core::{Aggregation, Extremum};
use ic_engine::{Engine, Query};
use ic_gen::datasets::{by_name, Profile};
use std::time::Instant;

fn main() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let wg = spec.generate_weighted();
    let k = 6;

    // --- 1. The engine serves min queries from its community forest --
    let engine = Engine::new(wg.clone());
    let sweep: Vec<Query> = [1usize, 5, 10, 20]
        .iter()
        .map(|&r| Query::new(k, r, Aggregation::Min))
        .chain(std::iter::once(Query::new(k, 5, Aggregation::Max)))
        .collect();
    let stats = engine.plan(&sweep).stats;
    let t = Instant::now();
    let batched = engine.run_batch(&sweep);
    println!(
        "engine answered an r-sweep of {} queries in {:.1?}: {} index-routed \
         (forest built once on first touch), {} solver runs",
        sweep.len(),
        t.elapsed(),
        stats.index_routed,
        stats.solver_runs,
    );
    let top = batched[1].as_ref().unwrap().clone();

    // Repeat sweeps are output-sensitive: the forest is already on the
    // snapshot, so no peel ever runs again at this (k, direction).
    engine.clear_result_cache(); // force live index serves, not memos
    let t = Instant::now();
    let again = engine.run_batch(&sweep);
    println!(
        "repeat sweep in {:.1?} (index-served; same bits: {})",
        t.elapsed(),
        again[1].as_ref().unwrap() == &top
    );

    // The same answers as the one-query-at-a-time peel, bit for bit.
    let t = Instant::now();
    let online = Query::new(k, 5, Aggregation::Min).solve(&wg).unwrap();
    println!(
        "online peel gives the same answer: {} ({:.1?})",
        online == top,
        t.elapsed()
    );
    println!("\ntop-5 min communities at k = {k}:");
    for (i, c) in top.iter().enumerate() {
        println!("  #{} value {:.6}, {} members", i + 1, c.value, c.len());
    }

    // --- 1b. The forest doubles as a containment index ---------------
    // `ExtremumIndex::cached` hands back the engine's own forest (the
    // same one the batch above was served from).
    let index = ExtremumIndex::cached(&engine.snapshot(), k, Extremum::Min);
    println!(
        "\nforest at k = {k}: {} nested communities ({} indexed vertices)",
        index.len(),
        index.num_vertices()
    );
    let heaviest = (0..wg.num_vertices() as u32)
        .max_by(|&a, &b| wg.weight(a).total_cmp(&wg.weight(b)))
        .unwrap();
    let chain = index.chain_of(heaviest);
    println!(
        "vertex {heaviest} (weight {:.6}) sits in {} nested communities:",
        wg.weight(heaviest),
        chain.len()
    );
    for (value, size) in chain.iter().take(5) {
        println!("  value {value:.6}, size {size}");
    }

    // --- 2. Truss communities are cliquier than core communities ------
    let core_top = Query::new(4, 1, Aggregation::Min).solve(&wg).unwrap();
    let truss_top = algo::truss_min_topr(&wg, 4, 1).unwrap();
    println!(
        "\nk = 4 top-1 community sizes: core model {}, truss model {}",
        core_top.first().map_or(0, |c| c.len()),
        truss_top.first().map_or(0, |c| c.len())
    );

    // --- 3. Refinement lifts heuristic results ------------------------
    let config = LocalSearchConfig {
        k: 4,
        r: 5,
        s: 20,
        greedy: false, // start from the weaker random variant
    };
    let plain = algo::local_search(&wg, &config, Aggregation::Average).unwrap();
    let refined = algo::local_search_refined(&wg, &config, Aggregation::Average).unwrap();
    let pv = plain.first().map_or(f64::NEG_INFINITY, |c| c.value);
    let rv = refined.first().map_or(f64::NEG_INFINITY, |c| c.value);
    println!(
        "\navg local search top value: plain {pv:.6} -> refined {rv:.6} ({:+.1}%)",
        (rv / pv - 1.0) * 100.0
    );
}
