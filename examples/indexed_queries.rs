//! Extensions tour: the ICP-style min index, batched engine queries,
//! truss-based communities, and hill-climbing refinement.
//!
//! ```text
//! cargo run -p ic-bench --release --example indexed_queries
//! ```

use ic_core::algo::{self, LocalSearchConfig, MinCommunityIndex};
use ic_core::Aggregation;
use ic_engine::{Engine, Query};
use ic_gen::datasets::{by_name, Profile};
use std::time::Instant;

fn main() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let wg = spec.generate_weighted();
    let k = 6;

    // --- 1. Build the min-community index once ... --------------------
    let t = Instant::now();
    let index = MinCommunityIndex::build(&wg, k);
    println!(
        "index built in {:.1?}: {} nested communities at k = {k}",
        t.elapsed(),
        index.len()
    );

    // --- ... then answer queries in output-sensitive time -------------
    let t = Instant::now();
    let top = index.topr(&wg, 5).unwrap();
    let indexed = t.elapsed();
    println!("\ntop-5 min communities from the index ({indexed:.1?}):");
    for (i, c) in top.iter().enumerate() {
        println!("  #{} value {:.6}, {} members", i + 1, c.value, c.len());
    }
    let t = Instant::now();
    let online = Query::new(k, 5, Aggregation::Min).solve(&wg).unwrap();
    println!(
        "online peel gives the same answer: {} ({:.1?})",
        online == top,
        t.elapsed()
    );

    // --- 1b. The batched engine serves the same online queries --------
    // One snapshot answers a whole r-sweep (and a max mirror) with a
    // single shared peel per direction; output is bit-identical to the
    // one-at-a-time calls above.
    let engine = Engine::new(wg.clone());
    let sweep: Vec<Query> = [1usize, 5, 10, 20]
        .iter()
        .map(|&r| Query::new(k, r, Aggregation::Min))
        .chain(std::iter::once(Query::new(k, 5, Aggregation::Max)))
        .collect();
    let stats = engine.plan(&sweep).stats;
    let t = Instant::now();
    let batched = engine.run_batch(&sweep);
    println!(
        "\nengine answered an r-sweep of {} queries with {} solver runs in {:.1?} \
         (r = 5 agrees with the index: {})",
        sweep.len(),
        stats.solver_runs,
        t.elapsed(),
        batched[1].as_ref().unwrap() == &top
    );

    // Nesting chain around the most influential vertex.
    let heaviest = (0..wg.num_vertices() as u32)
        .max_by(|&a, &b| wg.weight(a).total_cmp(&wg.weight(b)))
        .unwrap();
    let chain = index.chain_of(heaviest);
    println!(
        "\nvertex {heaviest} (weight {:.6}) sits in {} nested communities:",
        wg.weight(heaviest),
        chain.len()
    );
    for (value, size) in chain.iter().take(5) {
        println!("  value {value:.6}, size {size}");
    }

    // --- 2. Truss communities are cliquier than core communities ------
    let core_top = Query::new(4, 1, Aggregation::Min).solve(&wg).unwrap();
    let truss_top = algo::truss_min_topr(&wg, 4, 1).unwrap();
    println!(
        "\nk = 4 top-1 community sizes: core model {}, truss model {}",
        core_top.first().map_or(0, |c| c.len()),
        truss_top.first().map_or(0, |c| c.len())
    );

    // --- 3. Refinement lifts heuristic results ------------------------
    let config = LocalSearchConfig {
        k: 4,
        r: 5,
        s: 20,
        greedy: false, // start from the weaker random variant
    };
    let plain = algo::local_search(&wg, &config, Aggregation::Average).unwrap();
    let refined = algo::local_search_refined(&wg, &config, Aggregation::Average).unwrap();
    let pv = plain.first().map_or(f64::NEG_INFINITY, |c| c.value);
    let rv = refined.first().map_or(f64::NEG_INFINITY, |c| c.value);
    println!(
        "\navg local search top value: plain {pv:.6} -> refined {rv:.6} ({:+.1}%)",
        (rv / pv - 1.0) * 100.0
    );
}
