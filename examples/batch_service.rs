//! A miniature serving loop on the batched engine: mixed multi-user
//! traffic against one shared graph snapshot.
//!
//! ```text
//! cargo run -p ic-bench --release --example batch_service
//! ```
//!
//! Simulates three ticks of a query service: each tick drains a batch of
//! Zipf-popular mixed queries (min/max/sum families, approximate sum,
//! size-constrained avg) through `Engine::run_batch`, streaming answers
//! back in completion order. The engine plans every batch — dedup,
//! min/max r-family merging, k-grouping — and reuses pooled arenas and
//! memoized core levels across ticks, which is where the steady-state
//! speedup comes from.

use ic_bench::batch::{solve_sequential, to_engine_query};
use ic_engine::{Engine, Query};
use ic_gen::datasets::{by_name, Profile};
use ic_gen::workload::{mixed_query_traffic, TrafficProfile};
use ic_gen::GraphSeed;
use std::time::Instant;

fn main() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let wg = spec.generate_weighted();
    println!(
        "serving {} ({} vertices, {} edges)",
        spec.name,
        wg.num_vertices(),
        wg.num_edges()
    );

    let engine = Engine::new(wg.clone());
    let profile = TrafficProfile::paper_defaults(spec.k_grid);

    let mut sequential_total = 0.0;
    let mut batched_total = 0.0;
    for tick in 0..3u64 {
        let batch: Vec<Query> = mixed_query_traffic(64, &profile, GraphSeed(1000 + tick))
            .iter()
            .map(to_engine_query)
            .collect();
        let stats = engine.plan(&batch).stats;

        // Streaming execution: answers are forwarded the moment they
        // complete (completion order, not submission order).
        let t = Instant::now();
        let mut answered = 0usize;
        let mut first_answer = None;
        engine.for_each_result(&batch, |idx, res| {
            answered += 1;
            if first_answer.is_none() {
                let top = res
                    .ok()
                    .and_then(|ans| ans.communities.first())
                    .map_or(f64::NAN, |c| c.value);
                first_answer = Some((idx, top, t.elapsed()));
            }
        });
        let batched = t.elapsed();
        batched_total += batched.as_secs_f64();

        // The loop a caller would write without the engine.
        let t = Instant::now();
        for q in &batch {
            let _ = solve_sequential(&wg, q);
        }
        let sequential = t.elapsed();
        sequential_total += sequential.as_secs_f64();

        let (fi, fv, ft) = first_answer.unwrap();
        println!(
            "tick {tick}: {} queries -> {} solver runs across {} k-levels; \
             batched {batched:.1?} (first answer: query #{fi} value {fv:.6} after {ft:.1?}), \
             sequential loop {sequential:.1?}",
            stats.total_queries, stats.solver_runs, stats.k_levels
        );
    }

    println!(
        "\n3 ticks: batched {batched_total:.3}s vs sequential {sequential_total:.3}s \
         ({:.1}x); {} peel arenas constructed for {} workers",
        sequential_total / batched_total,
        engine.arenas_created(),
        engine.threads()
    );

    // Progressive sessions: one query, communities in rank order as the
    // peel produces them. The first answer lands well before a full
    // batch would; dropping the stream cancels the rest.
    let q = Query::new(spec.k_grid[0], 20, ic_core::Aggregation::Min);
    engine.clear_result_cache();
    let t = Instant::now();
    let mut stream = engine.submit(q).expect("valid streamed query");
    if let Some(first) = stream.next() {
        println!(
            "\nstreamed {q:?}: first community (value {:.6}, {} members) after {:.1?}",
            first.value,
            first.len(),
            t.elapsed()
        );
    }
    let rest = stream.count(); // drain to show the prefix keeps coming
    println!("stream delivered {} more communities in rank order", rest);
}
