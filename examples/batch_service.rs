//! A query service on the ic-serve front end: mixed multi-user traffic
//! over real TCP sockets against one shared engine.
//!
//! ```text
//! cargo run -p ic-bench --release --example batch_service
//! ```
//!
//! Simulates three ticks of a query service: each tick, four clients
//! pipeline Zipf-popular mixed queries (min/max/sum families,
//! approximate sum, size-constrained avg) over their own connections.
//! Server-side **admission batching** coalesces the concurrent arrivals
//! into a handful of `Engine::run_batch_pinned` calls, so the engine
//! still gets the batch-wide planning — dedup, min/max r-family
//! merging, k-grouping — that a one-query-per-request front end would
//! forfeit. The sequential loop a caller would write without any of
//! this runs after each tick for comparison.
//!
//! The shutdown path is checked: every in-flight reply must be flushed
//! and accounted for before the server acks the drain.

use ic_bench::batch::{solve_sequential, to_engine_query};
use ic_engine::{Engine, Query};
use ic_gen::datasets::{by_name, Profile};
use ic_gen::workload::{mixed_query_traffic, TrafficProfile};
use ic_gen::GraphSeed;
use ic_serve::{Client, Outcome, Response, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 4;
const QUERIES_PER_TICK: usize = 64;

fn main() {
    let spec = by_name(Profile::Quick, "email").unwrap();
    let wg = spec.generate_weighted();
    println!(
        "serving {} ({} vertices, {} edges)",
        spec.name,
        wg.num_vertices(),
        wg.num_edges()
    );

    let engine = Arc::new(Engine::new(wg.clone()));
    let server = Server::bind(engine.clone(), "127.0.0.1:0", ServeConfig::default())
        .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    println!("ic-serve listening on {addr} ({CLIENTS} clients per tick)\n");

    let profile = TrafficProfile::paper_defaults(spec.k_grid);

    let mut sequential_total = 0.0;
    let mut served_total = 0.0;
    let mut expected_replies = 0u64;
    for tick in 0..3u64 {
        let batch: Vec<Query> =
            mixed_query_traffic(QUERIES_PER_TICK, &profile, GraphSeed(1000 + tick))
                .iter()
                .map(to_engine_query)
                .collect();
        expected_replies += batch.len() as u64;

        // Four clients, each pipelining its slice of the tick over its
        // own connection; the server coalesces across all of them.
        let t = Instant::now();
        let per_client = batch.len() / CLIENTS;
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let slice: Vec<Query> = batch[c * per_client..(c + 1) * per_client].to_vec();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for (i, q) in slice.iter().enumerate() {
                        let id = (c * per_client + i) as u64;
                        client.send(id, q).expect("send query");
                    }
                    let t0 = Instant::now();
                    let mut first = None;
                    let mut complete = 0usize;
                    let mut other = 0usize;
                    for _ in 0..slice.len() {
                        match client.recv().expect("receive reply") {
                            Response::Reply {
                                id,
                                outcome: Outcome::Complete(communities),
                                ..
                            } => {
                                complete += 1;
                                if first.is_none() {
                                    let top = communities.first().map_or(f64::NAN, |c| c.value);
                                    first = Some((id, top, t0.elapsed()));
                                }
                            }
                            _ => other += 1,
                        }
                    }
                    (first, complete, other)
                })
            })
            .collect();
        let mut complete = 0usize;
        let mut other = 0usize;
        let mut first = None;
        for w in workers {
            let (f, c, o) = w.join().expect("client thread");
            complete += c;
            other += o;
            if first.is_none() {
                first = f;
            }
        }
        let served = t.elapsed();
        served_total += served.as_secs_f64();

        // The loop a caller would write without the serving layer.
        let t = Instant::now();
        for q in &batch {
            let _ = solve_sequential(&wg, q);
        }
        let sequential = t.elapsed();
        sequential_total += sequential.as_secs_f64();

        let (fi, fv, ft) = first.expect("at least one complete reply");
        println!(
            "tick {tick}: {} queries over {CLIENTS} connections -> {complete} complete, \
             {other} degraded/error; served {served:.1?} \
             (first reply: query #{fi} value {fv:.6} after {ft:.1?}), \
             sequential loop {sequential:.1?}",
            batch.len(),
        );
    }

    let stats = server.stats();
    println!(
        "\n3 ticks: served {served_total:.3}s vs sequential {sequential_total:.3}s \
         ({:.1}x); {} queries admitted in {} engine batches (largest {})",
        sequential_total / served_total,
        stats.admitted,
        stats.batches,
        stats.largest_batch
    );
    assert_eq!(
        stats.admitted, expected_replies,
        "every query of every tick was admitted (none shed)"
    );

    // Checked final flush: park one last burst in the admission window,
    // then drain. The contract is flush-then-ack — all replies must
    // come back before the ShutdownAck, none dropped.
    let mut closer = Client::connect(addr).expect("connect");
    let finale: Vec<Query> = mixed_query_traffic(8, &profile, GraphSeed(4242))
        .iter()
        .map(to_engine_query)
        .collect();
    for (i, q) in finale.iter().enumerate() {
        closer.send(i as u64, q).expect("send final burst");
    }
    let tail = closer.shutdown_and_drain().expect("drain must ack");
    let flushed = tail
        .iter()
        .filter(|r| matches!(r, Response::Reply { .. }))
        .count();
    assert_eq!(
        flushed,
        finale.len(),
        "drain flushed every in-flight reply before acking"
    );
    server.join();
    println!(
        "drain: {} in-flight replies flushed before the ack; server joined clean",
        flushed
    );

    // Progressive sessions: one query, communities in rank order as the
    // peel produces them. The first answer lands well before a full
    // batch would; dropping the stream cancels the rest.
    let q = Query::new(spec.k_grid[0], 20, ic_core::Aggregation::Min);
    engine.clear_result_cache();
    let t = Instant::now();
    let mut stream = engine.submit(q).expect("valid streamed query");
    if let Some(first) = stream.next() {
        println!(
            "\nstreamed {q:?}: first community (value {:.6}, {} members) after {:.1?}",
            first.value,
            first.len(),
            t.elapsed()
        );
    }
    let rest = stream.count(); // drain to show the prefix keeps coming
    println!("stream delivered {} more communities in rank order", rest);
}
